// Chaos recovery: run a job on a lossy network, crash a host AND the
// bank mid-run, and watch the failure detector migrate the work while
// the bank replays its write-ahead log back to the exact ledger.
//
//   $ ./chaos_recovery
//
// Demonstrates the fault-tolerance surface: a 10%-loss network (every
// RPC retries with exponential backoff, every server dedups retries so
// effects apply exactly once), scheduler health probes, job migration
// with the crashed host's escrow refunded to the job, and durable
// storage: the bank process is killed mid-experiment and restarted from
// its journal with a hash-identical ledger. Telemetry rides along: the
// job's TraceId links every lifecycle span (submit -> fund-verify -> bid
// -> stage-in -> execute -> stage-out -> refund) across both crashes,
// the timeline is printed at the end, and the full registry + trace ring
// is dumped to telemetry.jsonl. Exits 0 only if the job finishes, the
// dead host is reported DEAD, the recovered ledger matches, every
// micro-dollar is accounted for, and the trace chain is complete.
//
// Honors GM_LOG_LEVEL (try GM_LOG_LEVEL=info); log lines carry simulated
// timestamps via the logger prefix hook.
#include <cstdio>
#include <filesystem>
#include <string>

#include "common/log.hpp"
#include "core/grid_market.hpp"

int main() {
  using namespace gm;

  // 6 dual-CPU hosts behind a network that silently drops 10% of all
  // messages (probes, bids, transfers alike). Durable storage journals
  // the ledger, host directory and price histories.
  const std::string storage_dir =
      (std::filesystem::temp_directory_path() / "gm_chaos_recovery").string();
  std::filesystem::remove_all(storage_dir);
  GridMarket::Config config;
  config.hosts = 6;
  config.network = net::LatencyModel::Lossy(0.10);
  config.storage.durable = true;
  config.storage.dir = storage_dir;
  config.telemetry.enabled = true;
  config.telemetry.trace_capacity = 1 << 16;  // hold a full 24 h of instants
  GridMarket grid(config);

  // GM_LOG_LEVEL=info shows migrations and recovery as they happen, each
  // line stamped with the simulated clock.
  Logger::Instance().ApplyEnvLevel();
  Logger::Instance().set_prefix_hook(
      [&grid] { return "[t=" + sim::FormatTime(grid.now()) + "] "; });

  if (!grid.RegisterUser("alice", Money::Dollars(1000)).ok()) return 1;

  // Failure detector: ping every host each 10 s (3 attempts per round);
  // 2 failed rounds -> SUSPECT, 3 -> DEAD and jobs migrate.
  grid::HealthOptions health;
  health.probe_period = sim::Seconds(10);
  health.probe_timeout = sim::Seconds(2);
  health.probe_attempts = 3;
  health.suspect_after = 2;
  health.dead_after = 3;
  if (!grid.EnableHealthProbes(health).ok()) return 1;

  grid::JobDescription job;
  job.executable = "/usr/bin/blast-scan";
  job.job_name = "chaos-scan";
  job.count = 2;
  job.chunks = 8;
  job.cpu_time_minutes = 30.0;
  job.wall_time_minutes = 12.0 * 60.0;
  job.input_files = {{"sequences.fasta", 40.0}};

  const auto job_id = grid.SubmitJob("alice", job, Money::Dollars(25));
  if (!job_id.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 job_id.status().ToString().c_str());
    return 1;
  }

  // Let the first chunks start, then kill one of the hosts the job is
  // actually running on: its VMs freeze and its RPC endpoint vanishes.
  grid.RunFor(sim::Minutes(10));
  const grid::JobRecord* record = *grid.Job(*job_id);
  if (record->hosts_used.empty()) {
    std::fprintf(stderr, "job never started\n");
    return 1;
  }
  const std::string victim = record->hosts_used.front();
  std::size_t victim_index = grid.host_count();
  for (std::size_t i = 0; i < grid.host_count(); ++i) {
    if (grid.auctioneer(i).physical_host().id() == victim) victim_index = i;
  }
  if (!grid.CrashHost(victim_index).ok()) return 1;
  std::printf("t=%s  crashed %s (running %d/%d chunks done)\n",
              sim::FormatTime(grid.now()).c_str(), victim.c_str(),
              record->CompletedChunks(), job.TotalChunks());

  // While the host is down, the bank crashes too: its in-memory ledger
  // is wiped and every transfer fails Unavailable until it restarts.
  grid.RunFor(sim::Minutes(5));
  const std::string ledger_before = grid.bank().LedgerHash();
  if (!grid.CrashBank().ok()) return 1;
  std::printf("t=%s  crashed the bank (ledger %.12s...)\n",
              sim::FormatTime(grid.now()).c_str(), ledger_before.c_str());
  if (grid.PayBroker("alice", Money::Dollars(1)).ok()) return 1;  // bank is down

  grid.RunFor(sim::Minutes(5));
  if (!grid.RestartBank().ok()) return 1;
  const bool ledger_recovered = grid.bank().LedgerHash() == ledger_before;
  std::printf("t=%s  restarted the bank: ledger %s\n",
              sim::FormatTime(grid.now()).c_str(),
              ledger_recovered ? "recovered bit-identical" : "MISMATCH");

  // The probes need ~3 failed rounds to declare the host dead; after
  // that the scheduler re-bids on survivors and re-runs the lost chunks.
  grid.RunUntil(sim::Hours(24));

  record = *grid.Job(*job_id);
  std::printf("job state:  %s, %d/%d chunks, %.2f h turnaround\n",
              grid::JobStateName(record->state), record->CompletedChunks(),
              job.TotalChunks(), record->TurnaroundHours());
  std::printf("spent:      %s of %s (rest refunded)\n\n",
              FormatMoney(record->spent).c_str(),
              FormatMoney(record->budget).c_str());
  std::printf("%s\n", grid.NetMonitor().c_str());
  std::printf("%s", grid.StorageMonitor().c_str());

  // One-job causal timeline: every buffered event carrying this job's
  // TraceId, in start order. Auction-tick instants are folded into a
  // count; everything else (lifecycle spans, crashes, the migration) is
  // printed with its simulated timestamp.
  const auto events = grid.JobTrace(*job_id);
  if (!events.ok()) {
    std::fprintf(stderr, "trace lookup failed: %s\n",
                 events.status().ToString().c_str());
    return 1;
  }
  std::printf("\ntrace %016llx timeline (job %llu):\n",
              static_cast<unsigned long long>(record->trace),
              static_cast<unsigned long long>(*job_id));
  int ticks = 0;
  for (const auto& event : *events) {
    if (event.name == "auction-tick") {
      ++ticks;
      continue;
    }
    if (event.instant) {
      std::printf("  %10s  *  %-11s %s\n",
                  sim::FormatTime(event.start).c_str(), event.name.c_str(),
                  event.detail.c_str());
    } else {
      std::printf("  %10s  |  %-11s %s  (%s after %s, %u attempt%s)\n",
                  sim::FormatTime(event.start).c_str(), event.name.c_str(),
                  event.detail.c_str(),
                  telemetry::SpanStatusName(event.status),
                  sim::FormatTime(event.Duration()).c_str(), event.attempts,
                  event.attempts == 1 ? "" : "s");
    }
  }
  std::printf("  (+ %d auction-tick instants while the job was live)\n",
              ticks);

  // The chain must be complete and clean: each lifecycle phase exactly
  // one span, closed ok, with both crashes and the migration on record.
  bool trace_complete = true;
  for (const char* name : {"submit", "fund-verify", "bid", "stage-in",
                           "execute", "stage-out", "refund"}) {
    int spans = 0;
    bool closed_ok = false;
    for (const auto& event : *events) {
      if (event.instant || event.name != name) continue;
      ++spans;
      closed_ok = event.status == telemetry::SpanStatus::kOk;
    }
    if (spans != 1 || !closed_ok) {
      std::fprintf(stderr, "trace chain broken at '%s': %d span(s)\n", name,
                   spans);
      trace_complete = false;
    }
  }
  for (const char* name :
       {"host-crash", "bank-crash", "bank-restart", "migrate"}) {
    bool seen = false;
    for (const auto& event : *events) seen |= event.instant && event.name == name;
    if (!seen) {
      std::fprintf(stderr, "trace chain missing instant '%s'\n", name);
      trace_complete = false;
    }
  }

  // Full registry snapshot + trace ring, one JSON object per line, for
  // offline tooling (scripts/ci.sh parses this).
  const Status exported = grid.WriteTelemetryJsonl("telemetry.jsonl");
  if (!exported.ok()) {
    std::fprintf(stderr, "telemetry export failed: %s\n",
                 exported.ToString().c_str());
    return 1;
  }
  std::printf("telemetry.jsonl written\n");

  // Verdict: job done, dead host detected, money conserved. Unused
  // funds (including the crashed host's reclaimed deposit) sit in the
  // job's broker sub-account: its balance must be budget - spent.
  bool victim_dead = false;
  for (const auto& host : grid.HostHealthReport())
    victim_dead |= host.host_id == victim &&
                   host.state == grid::HostHealthState::kDead;
  const Money escrow = *grid.bank().Balance(record->account);
  std::printf("\njob escrow: %s (expected budget - spent = %s)\n",
              FormatMoney(escrow).c_str(),
              FormatMoney(record->budget - record->spent).c_str());
  const bool ok = record->state == grid::JobState::kFinished && victim_dead &&
                  ledger_recovered &&
                  escrow == record->budget - record->spent &&
                  grid.CheckInvariants().ok() &&
                  grid.bus().stats().Reconciles() && trace_complete;
  std::printf("%s\n", ok ? "RECOVERED: ledger replayed, money conserved, "
                           "job complete, trace chain intact"
                         : "FAILED");
  return ok ? 0 : 2;
}
