// Quickstart: stand up a Grid market, submit one job, watch it finish.
//
//   $ ./quickstart
//
// Walks through the whole public API surface in ~50 lines: build a
// cluster, register a user (bank account + Grid certificate), describe a
// job in XRSL, pay with a transfer token, run the simulation, inspect the
// outcome and the money trail.
#include <cstdio>

#include "core/grid_market.hpp"

int main() {
  using namespace gm;

  // A small market: 8 dual-CPU 3 GHz hosts.
  GridMarket::Config config;
  config.hosts = 8;
  GridMarket grid(config);

  // Alice gets a bank account with $1000 and a CA-signed certificate.
  if (!grid.RegisterUser("alice", Money::Dollars(1000)).ok()) return 1;

  // The job: 16 CPU-bound chunks of 30 minutes each, on up to 4 VMs,
  // with a 6 hour target. Runtime environment "blast" is yum-installed
  // into each VM before execution.
  grid::JobDescription job;
  job.executable = "/usr/bin/blast-scan";
  job.job_name = "quickstart-scan";
  job.count = 4;
  job.chunks = 16;
  job.cpu_time_minutes = 30.0;
  job.wall_time_minutes = 6.0 * 60.0;
  job.runtime_environments = {"blast"};
  job.input_files = {{"sequences.fasta", 80.0}};
  job.output_files = {{"hits.out", 4.0}};

  // Submission pays the broker $25 via a signed transfer token; the
  // broker verifies the token and schedules with Best Response.
  const auto job_id = grid.SubmitJob("alice", job, Money::Dollars(25));
  if (!job_id.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 job_id.status().ToString().c_str());
    return 1;
  }

  // Let the simulated grid run for a day (the job finishes much sooner).
  grid.RunUntil(sim::Hours(24));

  const auto record = grid.Job(*job_id);
  if (!record.ok()) return 1;
  std::printf("job state:      %s\n", grid::JobStateName((*record)->state));
  std::printf("chunks:         %d/%d\n", (*record)->CompletedChunks(),
              (*record)->description.TotalChunks());
  std::printf("turnaround:     %.2f h\n", (*record)->TurnaroundHours());
  std::printf("chunk latency:  %.1f min\n",
              (*record)->MeanChunkLatencyMinutes());
  std::printf("spent:          %s (of %s budget; unused money refunded)\n",
              FormatMoney((*record)->spent).c_str(),
              FormatMoney((*record)->budget).c_str());
  std::printf("alice balance:  $%.2f\n\n",
              grid.UserBankBalance("alice").value_or(Money::Zero()).dollars());
  std::printf("%s\n", grid.Monitor().c_str());

  // Every micro-dollar is accounted for.
  if (!grid.CheckInvariants().ok()) {
    std::fprintf(stderr, "money conservation violated!\n");
    return 1;
  }
  return (*record)->state == grid::JobState::kFinished ? 0 : 2;
}
