// The security model, attack by attack (paper Section 3.1).
//
//   $ ./token_security
//
// Demonstrates the capability-based authorization flow — bank transfer,
// signed (receipt || DN) mapping, broker-side verification — and shows
// each defense firing: forged receipts, inflated amounts, middleman DN
// swaps, double spends, payments to the wrong broker, and unknown
// identities. No access control lists appear anywhere.
#include <cstdio>

#include "bank/bank.hpp"
#include "crypto/identity.hpp"
#include "grid/auth.hpp"
#include "sim/time.hpp"

namespace {

using namespace gm;

int checks_passed = 0;
int checks_failed = 0;

void Expect(bool condition, const char* what) {
  std::printf("  [%s] %s\n", condition ? "ok" : "FAIL", what);
  (condition ? checks_passed : checks_failed) += 1;
}

}  // namespace

int main() {
  Rng rng(2006);
  const crypto::SchnorrGroup& group = crypto::TestGroup();

  std::printf("== setup: bank, CA, broker, two users ==\n");
  bank::Bank bank(group, rng.Next());
  crypto::CertificateAuthority ca(
      {"SE", "SweGrid", "CA", "SweGrid Root"}, group, rng);

  const auto alice_keys = crypto::KeyPair::Generate(group, rng);
  const auto mallory_keys = crypto::KeyPair::Generate(group, rng);
  const crypto::DistinguishedName alice_dn{"SE", "KTH", "PDC", "alice"};
  const crypto::DistinguishedName mallory_dn{"SE", "KTH", "PDC", "mallory"};

  (void)bank.CreateAccount("alice", alice_keys.public_key());
  (void)bank.CreateAccount("mallory", mallory_keys.public_key());
  (void)bank.CreateAccount("broker", {});
  (void)bank.Mint("alice", Money::Dollars(1000), 0);
  (void)bank.Mint("mallory", Money::Dollars(10), 0);

  grid::TokenAuthorizer authorizer(bank, "broker");
  (void)authorizer.RegisterIdentity(
      ca.Issue(alice_dn, alice_keys.public_key(), 0, sim::kDay * 365, rng),
      ca, 0);
  (void)authorizer.RegisterIdentity(
      ca.Issue(mallory_dn, mallory_keys.public_key(), 0, sim::kDay * 365,
               rng),
      ca, 0);
  std::printf("  broker trusts DNs: %s, %s\n\n", alice_dn.ToString().c_str(),
              mallory_dn.ToString().c_str());

  // Alice pays $200 to the broker and binds the receipt to her DN.
  const auto pay = [&](Money amount) -> crypto::TransferToken {
    const auto nonce = bank.TransferNonce("alice");
    const auto auth = alice_keys.Sign(
        bank::TransferAuthPayload("alice", "broker", amount, *nonce), rng);
    const auto receipt = bank.Transfer("alice", "broker", amount, auth, 0);
    return crypto::MintToken(*receipt, alice_dn.ToString(), alice_keys, rng);
  };

  std::printf("== the honest flow ==\n");
  const crypto::TransferToken token = pay(Money::Dollars(200));
  const auto funds = authorizer.Authorize(token, 0);
  Expect(funds.ok(), "valid token accepted");
  if (funds.ok()) {
    std::printf("  funds: %s in sub-account %s for %s\n",
                FormatMoney(funds->amount).c_str(),
                funds->sub_account.c_str(), funds->grid_dn.c_str());
  }

  std::printf("\n== attacks ==\n");

  // 1. Replay (double spend).
  Expect(authorizer.Authorize(token, 1).status().code() ==
             StatusCode::kAlreadyClaimed,
         "double spend rejected (token registry)");

  // 2. Middleman swaps the DN to route the capability to mallory.
  crypto::TransferToken swapped = pay(Money::Dollars(50));
  swapped.grid_dn = mallory_dn.ToString();
  Expect(!authorizer.Authorize(swapped, 2).ok(),
         "DN swap rejected (payer signature no longer matches)");

  // 3. ... even when mallory re-signs the mapping with her own key.
  swapped.owner_signature = mallory_keys.Sign(swapped.MappingPayload(), rng);
  Expect(!authorizer.Authorize(swapped, 3).ok(),
         "re-signed DN swap rejected (wrong key for paying account)");

  // 4. Inflated amount, re-signed by the owner: bank ledger disagrees.
  crypto::TransferToken inflated = pay(Money::Dollars(10));
  inflated.receipt.amount = Money::Dollars(100000);
  inflated.owner_signature =
      alice_keys.Sign(inflated.MappingPayload(), rng);
  Expect(!authorizer.Authorize(inflated, 4).ok(),
         "inflated receipt rejected (bank signature + ledger)");

  // 5. Fully fabricated receipt signed by mallory as 'the bank'.
  crypto::TransferReceipt fake;
  fake.receipt_id = "rcpt-999999-cafebabe0000";
  fake.from_account = "alice";
  fake.to_account = "broker";
  fake.amount = Money::Dollars(5000);
  fake.bank_signature = mallory_keys.Sign(fake.SigningPayload(), rng);
  const auto forged =
      crypto::MintToken(fake, alice_dn.ToString(), alice_keys, rng);
  Expect(!authorizer.Authorize(forged, 5).ok(),
         "forged bank receipt rejected");

  // 6. Payment into a different account presented to this broker.
  (void)bank.CreateAccount("other-broker", {});
  const auto nonce = bank.TransferNonce("alice");
  const auto auth = alice_keys.Sign(
      bank::TransferAuthPayload("alice", "other-broker",
                                Money::Dollars(10), *nonce),
      rng);
  const auto misdirected = bank.Transfer("alice", "other-broker",
                                         Money::Dollars(10), auth, 0);
  const auto misdirected_token = crypto::MintToken(
      *misdirected, alice_dn.ToString(), alice_keys, rng);
  Expect(authorizer.Authorize(misdirected_token, 6).status().code() ==
             StatusCode::kPermissionDenied,
         "payment to a different broker rejected");

  // 7. Stranger without a registered certificate.
  crypto::TransferToken stranger = pay(Money::Dollars(10));
  stranger.grid_dn = "/C=XX/O=Nowhere/CN=stranger";
  Expect(authorizer.Authorize(stranger, 7).status().code() ==
             StatusCode::kUnauthenticated,
         "unregistered Grid identity rejected");

  // Conservation after all that: nothing minted or destroyed.
  Expect(bank.CheckInvariants().ok(), "bank conservation holds");

  std::printf("\n%d checks passed, %d failed\n", checks_passed,
              checks_failed);
  return checks_failed == 0 ? 0 : 2;
}
