// Accounting and billing: follow the money through a Grid job.
//
//   $ ./grid_accounting
//
// Runs one funded job to completion, then prints the bank statements the
// paper's "accounting and billing happen automatically" claim implies:
// the user's account, the job's broker sub-account (funding out, refunds
// back), and the operator's aggregate flow between job sub-accounts and
// host accounts.
#include <cstdio>

#include "bank/billing.hpp"
#include "core/grid_market.hpp"

int main() {
  using namespace gm;
  GridMarket::Config config;
  config.hosts = 6;
  GridMarket grid(config);
  if (!grid.RegisterUser("alice", Money::Dollars(500)).ok()) return 1;

  grid::JobDescription job;
  job.executable = "/usr/bin/scan";
  job.job_name = "billing-demo";
  job.count = 3;
  job.chunks = 9;
  job.cpu_time_minutes = 20.0;
  job.wall_time_minutes = 4.0 * 60.0;
  job.input_files = {{"db.fasta", 40.0}};
  job.output_files = {{"out.dat", 4.0}};

  const auto job_id = grid.SubmitJob("alice", job, Money::Dollars(30));
  if (!job_id.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 job_id.status().ToString().c_str());
    return 1;
  }
  grid.RunUntil(sim::Hours(20));
  const auto record = grid.Job(*job_id);
  if (!record.ok() || (*record)->state != grid::JobState::kFinished) {
    std::fprintf(stderr, "job did not finish\n");
    return 2;
  }

  std::printf("job finished in %.2f h; spent %s, refunded %s\n\n",
              (*record)->TurnaroundHours(),
              FormatMoney((*record)->spent).c_str(),
              FormatMoney((*record)->refunded).c_str());

  // The user's statement: funding out, nothing back (refunds sit in the
  // job sub-account until the user sweeps them).
  const auto user_statement =
      bank::BuildStatement(grid.bank(), "alice", 0, grid.now() + 1);
  if (user_statement.ok())
    std::printf("%s\n", bank::RenderStatement(*user_statement).c_str());

  // The job sub-account: broker funding in, host deposits out, refunds in.
  const auto job_statement = bank::BuildStatement(
      grid.bank(), (*record)->account, 0, grid.now() + 1);
  if (job_statement.ok())
    std::printf("%s\n", bank::RenderStatement(*job_statement).c_str());

  // Operator views.
  const Money to_hosts = bank::TotalFlow(grid.bank(), "broker/",
                                         "auctioneer:", 0, grid.now() + 1);
  const Money refunds = bank::TotalFlow(grid.bank(), "auctioneer:",
                                        "broker/", 0, grid.now() + 1);
  std::printf("operator: %s deposited with hosts, %s refunded, %s earned\n",
              FormatMoney(to_hosts).c_str(), FormatMoney(refunds).c_str(),
              FormatMoney(to_hosts - refunds).c_str());

  // The earned amount must equal what the job was charged.
  if (to_hosts - refunds != (*record)->spent) {
    std::fprintf(stderr, "accounting mismatch!\n");
    return 3;
  }
  return grid.CheckInvariants().ok() ? 0 : 4;
}
