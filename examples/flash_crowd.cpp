// Flash crowd: survive a 10x demand spike plus a full adversary wave.
//
//   $ ./flash_crowd
//
// Drives the full-fidelity GridMarket through the scenario engine: an
// open-loop population with heavy-tailed job sizes ramps along its
// diurnal curve, a flash crowd multiplies the arrival rate 10x for two
// minutes, and all three adversary archetypes attack simultaneously —
// bid snipers churning the auctions, flooders swarming the broker with
// tiny-budget jobs, replayers re-presenting spent settlement ids and
// transfer tokens. The SLO checker then proves the market stayed live:
// bounded queues, no honest-job starvation, every replay refused, and
// money conserved to the exact micro-dollar (reconciler-verified).
#include <cstdio>

#include "common/log.hpp"
#include "scenario/engine.hpp"
#include "scenario/grid_backend.hpp"

int main() {
  using namespace gm;

  // An overloaded market WARNs once per shed job; under a flash crowd
  // that is thousands of lines. Shedding is the expected behavior here —
  // keep the console for the telemetry the SLO verdict is based on.
  Logger::Instance().set_level(LogLevel::kError);

  // Six 2-minute epochs of open-loop traffic over a 1000-user
  // population; the flash crowd hits at minute 4 and lasts 2 minutes.
  scenario::ScenarioConfig config;
  config.seed = 20060619;  // HPDC'06
  config.epochs = 6;
  config.epoch_duration = 2 * sim::kMinute;
  config.traffic.users = 1000;
  config.traffic.base_arrivals_per_sec = 0.5;
  config.traffic.flash_start = 4 * sim::kMinute;
  config.traffic.flash_duration = 2 * sim::kMinute;
  config.traffic.flash_multiplier = 10.0;

  // The adversary wave: snipers, flooders and replayers, all on.
  config.adversary.snipers = 8;
  config.adversary.snipe_rate_per_sec = 0.5;
  config.adversary.flood_rate_per_sec = 0.5;
  config.adversary.replay_rate_per_sec = 0.3;

  // Wall-clock settlement latency is reported but not enforced, so the
  // verdict is identical on any machine.
  config.slo.enforce_settle_p99 = false;
  config.slo.max_queue_depth = 10'000;

  // Full fidelity: every arrival pays the broker with a signed token and
  // is scheduled by Best Response; a 6-host market with a 4-shard bank
  // federation behind it.
  scenario::GridScenarioBackend::Options options;
  options.grid.hosts = 6;
  options.grid.bank_shards = 4;
  options.identities = 8;

  scenario::GridScenarioBackend backend(config, options);
  const scenario::ScenarioResult result =
      scenario::ScenarioEngine(config).Run(backend);

  std::printf("scenario digest: %s\n", result.digest.c_str());
  std::printf("arrivals: %llu (sustained %.0f/wall-sec)\n",
              static_cast<unsigned long long>(result.total_arrivals),
              result.ArrivalsPerWallSec());
  for (const scenario::EpochTelemetry& telem : result.epochs) {
    std::printf(
        "epoch %d: %4llu honest + %3llu hostile arrivals, %4llu done, "
        "queue<=%-4zu replays %llu/%llu refused, conserved=%s\n",
        telem.epoch, static_cast<unsigned long long>(telem.arrivals),
        static_cast<unsigned long long>(telem.hostile_arrivals),
        static_cast<unsigned long long>(telem.completions),
        telem.max_queue_depth,
        static_cast<unsigned long long>(telem.replays_rejected),
        static_cast<unsigned long long>(telem.replay_attempts),
        telem.reconciler_clean ? "yes" : "NO");
  }
  if (result.flash_recovery >= 0)
    std::printf("flash recovery: %.0f sim-seconds after the spike ended\n",
                sim::ToSeconds(result.flash_recovery));

  std::printf("SLO: %s\n", result.slo.Summary().c_str());
  return result.slo.passed ? 0 : 1;
}
