// The paper's pilot application end to end: scan the human proteome with
// a sliding-window similarity search on a Tycoon grid (paper Section 5.1).
//
//   $ ./bioinformatics_grid [chunks=48] [nodes=12] [budget=150]
//
// Partitions a calibrated proteome model into chunks, builds the
// bag-of-tasks XRSL job, submits it against background market load, and
// prints periodic Grid-monitor snapshots plus the final economics.
#include <cstdio>

#include "common/config.hpp"
#include "core/grid_market.hpp"
#include "workload/bag_of_tasks.hpp"

int main(int argc, char** argv) {
  using namespace gm;
  const auto options = Config::FromArgs(argc - 1, argv + 1);
  if (!options.ok()) {
    std::fprintf(stderr, "usage: bioinformatics_grid [key=value...]: %s\n",
                 options.status().ToString().c_str());
    return 1;
  }
  const int chunks = static_cast<int>(options->GetInt("chunks", 48));
  const int nodes = static_cast<int>(options->GetInt("nodes", 12));
  const double budget = options->GetDouble("budget", 150.0);

  GridMarket::Config config;
  config.hosts = 20;
  config.heterogeneity = 0.2;  // mixed machine generations
  GridMarket grid(config);
  if (!grid.RegisterUser("biotech-lab", Money::Dollars(1e5)).ok()) return 1;

  // The proteome model, calibrated to the paper's observation that one
  // chunk of ~95 takes 212 minutes on a 3 GHz node.
  const workload::ProteomeModel proteome =
      workload::ProteomeModel::Calibrated(95, 212.0, GHz(3.0));
  std::printf("proteome: %lld proteins, %lld residues; full scan = %.1f\n"
              "CPU-weeks on one 3 GHz node\n\n",
              static_cast<long long>(proteome.proteins),
              static_cast<long long>(proteome.total_residues),
              proteome.TotalCycles() / GHz(3.0) / 3600.0 / 24.0 / 7.0);

  const auto partition = workload::PartitionProteome(proteome, chunks);
  if (!partition.ok()) {
    std::fprintf(stderr, "partition failed: %s\n",
                 partition.status().ToString().c_str());
    return 1;
  }

  workload::ScanJobParams params;
  params.nodes = nodes;
  params.wall_time_minutes = 16.0 * 60.0;
  const auto job = workload::BuildScanJob(params, *partition, GHz(3.0));
  if (!job.ok()) {
    std::fprintf(stderr, "job build failed: %s\n",
                 job.status().ToString().c_str());
    return 1;
  }
  std::printf("job: %d chunks of %.0f CPU-minutes on up to %d nodes, "
              "budget $%.0f\n\n",
              job->TotalChunks(), job->cpu_time_minutes, job->count, budget);

  const auto job_id = grid.SubmitJob("biotech-lab", *job, Money::Dollars(budget));
  if (!job_id.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 job_id.status().ToString().c_str());
    return 1;
  }

  // Progress snapshots every 4 simulated hours.
  for (int snapshot = 1; snapshot <= 10; ++snapshot) {
    grid.RunFor(sim::Hours(4));
    const auto record = grid.Job(*job_id);
    if (!record.ok()) return 1;
    std::printf("t=%s  state=%-11s  chunks=%3d/%-3d  spent=%s\n",
                sim::FormatTime(grid.now()).c_str(),
                grid::JobStateName((*record)->state),
                (*record)->CompletedChunks(),
                (*record)->description.TotalChunks(),
                FormatMoney((*record)->spent).c_str());
    if (grid::IsTerminal((*record)->state)) break;
  }

  const auto record = grid.Job(*job_id);
  if (!record.ok()) return 1;
  std::printf("\nfinal: %s in %.2f h, %.1f min/chunk, cost %.2f $/h, "
              "refunded %s\n",
              grid::JobStateName((*record)->state),
              (*record)->TurnaroundHours(),
              (*record)->MeanChunkLatencyMinutes(),
              (*record)->CostPerHour(),
              FormatMoney((*record)->refunded).c_str());
  std::printf("\n%s", grid.Monitor().c_str());
  return (*record)->state == grid::JobState::kFinished ? 0 : 2;
}
