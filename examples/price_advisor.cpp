// The price/performance advisor: the user-facing side of the paper's
// prediction suite (Section 4). Answers the question its users actually
// asked: "how much money does my job need?"
//
//   $ ./price_advisor
//
// Runs a market under load for two simulated days, then consults all
// three predictors:
//   1. the stateless normal model — budget for a target capacity or
//      deadline at 80/90/99% guarantees (Eq. 6),
//   2. the AR(6)+spline forecaster — where prices head in the next hour,
//   3. Markowitz portfolios — how to split money across hosts at minimum
//      risk.
#include <cstdio>

#include "core/grid_market.hpp"
#include "math/distributions.hpp"
#include "math/stats.hpp"
#include "predict/ar_forecaster.hpp"
#include "predict/normal_model.hpp"
#include "predict/empirical_model.hpp"
#include "predict/portfolio.hpp"
#include "predict/sla.hpp"

namespace {

using namespace gm;

void GenerateLoad(GridMarket& grid, Rng& rng, sim::SimDuration duration) {
  for (int u = 0; u < 10; ++u) {
    GM_ASSERT(grid.RegisterUser("tenant" + std::to_string(u), Money::Dollars(1e7)).ok(),
              "register failed");
  }
  for (sim::SimTime t = 0; t < duration; t += sim::Minutes(30)) {
    grid.RunUntil(t);
    grid::JobDescription job;
    job.executable = "/bin/service";
    job.job_name = "tenant-load";
    job.count = 2;
    job.chunks = 4;
    job.cpu_time_minutes = 20.0 + rng.Uniform(0.0, 40.0);
    job.wall_time_minutes = 90.0;
    (void)grid.SubmitJob("tenant" + std::to_string(rng.NextBelow(10)), job,
                         Money::Dollars(10.0 + rng.Uniform(0.0, 40.0)));
  }
  grid.RunUntil(duration);
}

}  // namespace

int main() {
  GridMarket::Config config;
  config.hosts = 6;
  GridMarket grid(config);
  Rng rng(8);
  GenerateLoad(grid, rng, sim::Hours(48));

  // ---- 1. Stateless normal model --------------------------------------
  const auto stats = grid.HostPriceStats("day");
  GM_ASSERT(stats.ok(), "no price stats");
  std::printf("=== Normal-model budget advice (day window) ===\n");
  std::printf("%-6s %10s %12s %12s %14s\n", "host", "cap(GHz)",
              "mu($/h)", "sigma($/h)", "knee($/day)");
  for (const auto& host : *stats) {
    predict::NormalPricePredictor predictor(host);
    std::printf("%-6s %10.2f %12.4f %12.4f %14.2f\n", host.host_id.c_str(),
                host.capacity / 1e9, host.mean_price * 3600,
                host.stddev_price * 3600,
                predictor.RecommendedBudget(0.9) * 86400);
  }

  // A job needing 2e13 cycles within 2 hours:
  const Cycles work = 2e13;
  const double deadline_s = 2.0 * 3600.0;
  std::printf("\njob of %.0e cycles due in 2 h needs, per guarantee:\n",
              work);
  for (const double p : {0.80, 0.90, 0.99}) {
    const auto budget = predict::BudgetForDeadline(*stats, work, deadline_s, p);
    if (budget.ok()) {
      std::printf("  %2.0f%% guarantee: spend rate $%.4f/h  (total ~$%.3f)\n",
                  p * 100, *budget * 3600, *budget * deadline_s);
    } else {
      std::printf("  %2.0f%% guarantee: %s\n", p * 100,
                  budget.status().ToString().c_str());
    }
  }

  // ---- 2. AR forecaster -----------------------------------------------
  const auto& history = grid.auctioneer(0).history();
  std::vector<double> series;
  for (std::size_t i = history.size() > 4320 ? history.size() - 4320 : 0;
       i < history.size(); ++i) {
    series.push_back(history.at(i).price * 1e9);
  }
  const auto forecaster = predict::ArPriceForecaster::Fit(series, {6, 100.0});
  std::printf("\n=== AR(6) one-hour forecast for host h00 ===\n");
  if (forecaster.ok()) {
    const double now_price = series.back();
    const double mean_price = math::Mean(series);
    const double in_1h = forecaster->ForecastAt(series, 360);
    std::printf("current price:    %.6f $/h/GHz\n", now_price * 3600);
    std::printf("12 h mean price:  %.6f $/h/GHz\n", mean_price * 3600);
    std::printf("forecast (+1 h):  %.6f $/h/GHz\n", in_1h * 3600);
    std::printf("(the forecast mean-reverts toward the recent average on a"
                " spiky market)\n");
  } else {
    std::printf("fit failed: %s\n", forecaster.status().ToString().c_str());
  }

  // ---- 2b. Distribution-free (empirical) model ------------------------
  // Quantiles straight from the auctioneer's slot table: no normality
  // assumption (the paper's "arbitrary distributions" future work).
  std::printf("\n=== Empirical vs normal 90%%-quantile price, per host ===\n");
  std::printf("%-6s %16s %16s\n", "host", "empirical($/h)", "normal($/h)");
  for (std::size_t h = 0; h < grid.host_count(); ++h) {
    const auto table = grid.auctioneer(h).Distribution("day");
    if (!table.ok()) continue;
    const auto& host_stats = (*stats)[h];
    const double host_scale =
        grid.auctioneer(h).physical_host().TotalCapacity();
    const auto empirical = predict::EmpiricalPricePredictor::FromSlotTable(
        host_stats.host_id, host_stats.capacity, host_scale, **table);
    if (!empirical.ok()) continue;
    predict::NormalPricePredictor normal(host_stats);
    std::printf("%-6s %16.4f %16.4f\n", host_stats.host_id.c_str(),
                empirical->PriceQuantile(0.9) * 3600,
                normal.PriceQuantile(0.9) * 3600);
  }

  // ---- 2c. SLA quote ----------------------------------------------------
  predict::SlaQuoter quoter(*stats, /*markup=*/0.15, /*penalty_factor=*/1.0);
  predict::SlaTerms terms;
  terms.capacity = 4e9;
  terms.duration_seconds = 4 * 3600.0;
  std::printf("\n=== SLA quotes: hold 4 GHz for 4 h ===\n");
  std::printf("%10s %14s %12s %14s\n", "guarantee", "procure($)", "fee($)",
              "penalty($)");
  for (const double p : {0.80, 0.90, 0.99}) {
    terms.guarantee = p;
    const auto quote = quoter.Quote(terms);
    if (quote.ok()) {
      std::printf("%9.0f%% %14.4f %12.4f %14.4f\n", p * 100,
                  quote->procurement_cost, quote->fee,
                  quote->penalty_payout);
    } else {
      std::printf("%9.0f%% %s\n", p * 100,
                  quote.status().ToString().c_str());
    }
  }

  // ---- 3. Portfolio selection ------------------------------------------
  // Returns = capacity per dollar, sampled from each host's recent history.
  // Work in $/h per GHz and floor free intervals at one cent so the
  // inverse-price returns stay well conditioned.
  std::vector<std::vector<double>> returns(grid.host_count());
  for (std::size_t h = 0; h < grid.host_count(); ++h) {
    const auto& host_history = grid.auctioneer(h).history();
    const auto prices = host_history.LastPrices(2000);
    for (const double price : prices) {
      const double per_ghz_hour = price * 1e9 * 3600.0;
      returns[h].push_back(predict::ReturnFromPrice(per_ghz_hour, 0.01));
    }
  }
  const auto optimizer = predict::PortfolioOptimizer::FromReturnSeries(
      returns, /*ridge=*/1e-3);
  std::printf("\n=== Minimum-risk portfolio across hosts ===\n");
  if (optimizer.ok()) {
    const auto min_var = optimizer->MinimumVariance();
    if (min_var.ok()) {
      const auto weights = predict::ClampLongOnly(min_var->weights);
      for (std::size_t h = 0; h < weights.size(); ++h)
        std::printf("  h%02zu: %5.1f%%\n", h, weights[h] * 100.0);
    }
  } else {
    std::printf("estimation failed: %s\n",
                optimizer.status().ToString().c_str());
  }
  return 0;
}
