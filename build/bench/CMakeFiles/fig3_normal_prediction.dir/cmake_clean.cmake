file(REMOVE_RECURSE
  "CMakeFiles/fig3_normal_prediction.dir/fig3_normal_prediction.cpp.o"
  "CMakeFiles/fig3_normal_prediction.dir/fig3_normal_prediction.cpp.o.d"
  "fig3_normal_prediction"
  "fig3_normal_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_normal_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
