# Empty compiler generated dependencies file for fig3_normal_prediction.
# This may be replaced when dependencies are built.
