file(REMOVE_RECURSE
  "CMakeFiles/fig7_window_approx.dir/fig7_window_approx.cpp.o"
  "CMakeFiles/fig7_window_approx.dir/fig7_window_approx.cpp.o.d"
  "fig7_window_approx"
  "fig7_window_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_window_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
