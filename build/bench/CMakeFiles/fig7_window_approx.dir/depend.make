# Empty dependencies file for fig7_window_approx.
# This may be replaced when dependencies are built.
