# Empty compiler generated dependencies file for table1_equal_funding.
# This may be replaced when dependencies are built.
