file(REMOVE_RECURSE
  "CMakeFiles/table1_equal_funding.dir/table1_equal_funding.cpp.o"
  "CMakeFiles/table1_equal_funding.dir/table1_equal_funding.cpp.o.d"
  "table1_equal_funding"
  "table1_equal_funding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_equal_funding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
