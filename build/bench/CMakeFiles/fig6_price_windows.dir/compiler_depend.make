# Empty compiler generated dependencies file for fig6_price_windows.
# This may be replaced when dependencies are built.
