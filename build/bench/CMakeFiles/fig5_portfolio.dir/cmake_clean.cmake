file(REMOVE_RECURSE
  "CMakeFiles/fig5_portfolio.dir/fig5_portfolio.cpp.o"
  "CMakeFiles/fig5_portfolio.dir/fig5_portfolio.cpp.o.d"
  "fig5_portfolio"
  "fig5_portfolio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_portfolio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
