# Empty dependencies file for fig5_portfolio.
# This may be replaced when dependencies are built.
