file(REMOVE_RECURSE
  "CMakeFiles/table2_two_point_funding.dir/table2_two_point_funding.cpp.o"
  "CMakeFiles/table2_two_point_funding.dir/table2_two_point_funding.cpp.o.d"
  "table2_two_point_funding"
  "table2_two_point_funding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_two_point_funding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
