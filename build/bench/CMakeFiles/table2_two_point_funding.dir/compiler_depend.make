# Empty compiler generated dependencies file for table2_two_point_funding.
# This may be replaced when dependencies are built.
