
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_ar_prediction.cpp" "bench/CMakeFiles/fig4_ar_prediction.dir/fig4_ar_prediction.cpp.o" "gcc" "bench/CMakeFiles/fig4_ar_prediction.dir/fig4_ar_prediction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/gm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/gm_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/gm_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/bestresponse/CMakeFiles/gm_bestresponse.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/gm_market.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/gm_math.dir/DependInfo.cmake"
  "/root/repo/build/src/bank/CMakeFiles/gm_bank.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/gm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/gm_host.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
