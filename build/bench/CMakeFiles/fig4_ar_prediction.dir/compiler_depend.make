# Empty compiler generated dependencies file for fig4_ar_prediction.
# This may be replaced when dependencies are built.
