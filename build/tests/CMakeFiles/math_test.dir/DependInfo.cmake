
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/math/ar_model_test.cpp" "tests/CMakeFiles/math_test.dir/math/ar_model_test.cpp.o" "gcc" "tests/CMakeFiles/math_test.dir/math/ar_model_test.cpp.o.d"
  "/root/repo/tests/math/autocorr_test.cpp" "tests/CMakeFiles/math_test.dir/math/autocorr_test.cpp.o" "gcc" "tests/CMakeFiles/math_test.dir/math/autocorr_test.cpp.o.d"
  "/root/repo/tests/math/distributions_test.cpp" "tests/CMakeFiles/math_test.dir/math/distributions_test.cpp.o" "gcc" "tests/CMakeFiles/math_test.dir/math/distributions_test.cpp.o.d"
  "/root/repo/tests/math/histogram_test.cpp" "tests/CMakeFiles/math_test.dir/math/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/math_test.dir/math/histogram_test.cpp.o.d"
  "/root/repo/tests/math/matrix_test.cpp" "tests/CMakeFiles/math_test.dir/math/matrix_test.cpp.o" "gcc" "tests/CMakeFiles/math_test.dir/math/matrix_test.cpp.o.d"
  "/root/repo/tests/math/normal_test.cpp" "tests/CMakeFiles/math_test.dir/math/normal_test.cpp.o" "gcc" "tests/CMakeFiles/math_test.dir/math/normal_test.cpp.o.d"
  "/root/repo/tests/math/spline_test.cpp" "tests/CMakeFiles/math_test.dir/math/spline_test.cpp.o" "gcc" "tests/CMakeFiles/math_test.dir/math/spline_test.cpp.o.d"
  "/root/repo/tests/math/stats_test.cpp" "tests/CMakeFiles/math_test.dir/math/stats_test.cpp.o" "gcc" "tests/CMakeFiles/math_test.dir/math/stats_test.cpp.o.d"
  "/root/repo/tests/math/tridiag_test.cpp" "tests/CMakeFiles/math_test.dir/math/tridiag_test.cpp.o" "gcc" "tests/CMakeFiles/math_test.dir/math/tridiag_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/gm_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
