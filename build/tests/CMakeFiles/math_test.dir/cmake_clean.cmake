file(REMOVE_RECURSE
  "CMakeFiles/math_test.dir/math/ar_model_test.cpp.o"
  "CMakeFiles/math_test.dir/math/ar_model_test.cpp.o.d"
  "CMakeFiles/math_test.dir/math/autocorr_test.cpp.o"
  "CMakeFiles/math_test.dir/math/autocorr_test.cpp.o.d"
  "CMakeFiles/math_test.dir/math/distributions_test.cpp.o"
  "CMakeFiles/math_test.dir/math/distributions_test.cpp.o.d"
  "CMakeFiles/math_test.dir/math/histogram_test.cpp.o"
  "CMakeFiles/math_test.dir/math/histogram_test.cpp.o.d"
  "CMakeFiles/math_test.dir/math/matrix_test.cpp.o"
  "CMakeFiles/math_test.dir/math/matrix_test.cpp.o.d"
  "CMakeFiles/math_test.dir/math/normal_test.cpp.o"
  "CMakeFiles/math_test.dir/math/normal_test.cpp.o.d"
  "CMakeFiles/math_test.dir/math/spline_test.cpp.o"
  "CMakeFiles/math_test.dir/math/spline_test.cpp.o.d"
  "CMakeFiles/math_test.dir/math/stats_test.cpp.o"
  "CMakeFiles/math_test.dir/math/stats_test.cpp.o.d"
  "CMakeFiles/math_test.dir/math/tridiag_test.cpp.o"
  "CMakeFiles/math_test.dir/math/tridiag_test.cpp.o.d"
  "math_test"
  "math_test.pdb"
  "math_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/math_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
