
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/market/auctioneer_service_test.cpp" "tests/CMakeFiles/market_test.dir/market/auctioneer_service_test.cpp.o" "gcc" "tests/CMakeFiles/market_test.dir/market/auctioneer_service_test.cpp.o.d"
  "/root/repo/tests/market/auctioneer_test.cpp" "tests/CMakeFiles/market_test.dir/market/auctioneer_test.cpp.o" "gcc" "tests/CMakeFiles/market_test.dir/market/auctioneer_test.cpp.o.d"
  "/root/repo/tests/market/price_history_test.cpp" "tests/CMakeFiles/market_test.dir/market/price_history_test.cpp.o" "gcc" "tests/CMakeFiles/market_test.dir/market/price_history_test.cpp.o.d"
  "/root/repo/tests/market/slot_table_test.cpp" "tests/CMakeFiles/market_test.dir/market/slot_table_test.cpp.o" "gcc" "tests/CMakeFiles/market_test.dir/market/slot_table_test.cpp.o.d"
  "/root/repo/tests/market/sls_test.cpp" "tests/CMakeFiles/market_test.dir/market/sls_test.cpp.o" "gcc" "tests/CMakeFiles/market_test.dir/market/sls_test.cpp.o.d"
  "/root/repo/tests/market/window_stats_test.cpp" "tests/CMakeFiles/market_test.dir/market/window_stats_test.cpp.o" "gcc" "tests/CMakeFiles/market_test.dir/market/window_stats_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/market/CMakeFiles/gm_market.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/gm_host.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/gm_math.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
