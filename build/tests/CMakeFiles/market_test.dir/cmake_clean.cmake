file(REMOVE_RECURSE
  "CMakeFiles/market_test.dir/market/auctioneer_service_test.cpp.o"
  "CMakeFiles/market_test.dir/market/auctioneer_service_test.cpp.o.d"
  "CMakeFiles/market_test.dir/market/auctioneer_test.cpp.o"
  "CMakeFiles/market_test.dir/market/auctioneer_test.cpp.o.d"
  "CMakeFiles/market_test.dir/market/price_history_test.cpp.o"
  "CMakeFiles/market_test.dir/market/price_history_test.cpp.o.d"
  "CMakeFiles/market_test.dir/market/slot_table_test.cpp.o"
  "CMakeFiles/market_test.dir/market/slot_table_test.cpp.o.d"
  "CMakeFiles/market_test.dir/market/sls_test.cpp.o"
  "CMakeFiles/market_test.dir/market/sls_test.cpp.o.d"
  "CMakeFiles/market_test.dir/market/window_stats_test.cpp.o"
  "CMakeFiles/market_test.dir/market/window_stats_test.cpp.o.d"
  "market_test"
  "market_test.pdb"
  "market_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
