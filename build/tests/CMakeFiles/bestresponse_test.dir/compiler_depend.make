# Empty compiler generated dependencies file for bestresponse_test.
# This may be replaced when dependencies are built.
