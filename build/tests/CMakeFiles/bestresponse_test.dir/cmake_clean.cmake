file(REMOVE_RECURSE
  "CMakeFiles/bestresponse_test.dir/bestresponse/best_response_test.cpp.o"
  "CMakeFiles/bestresponse_test.dir/bestresponse/best_response_test.cpp.o.d"
  "CMakeFiles/bestresponse_test.dir/bestresponse/equilibrium_test.cpp.o"
  "CMakeFiles/bestresponse_test.dir/bestresponse/equilibrium_test.cpp.o.d"
  "bestresponse_test"
  "bestresponse_test.pdb"
  "bestresponse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bestresponse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
