# Empty compiler generated dependencies file for agent_behavior_test.
# This may be replaced when dependencies are built.
