file(REMOVE_RECURSE
  "CMakeFiles/agent_behavior_test.dir/grid/agent_behavior_test.cpp.o"
  "CMakeFiles/agent_behavior_test.dir/grid/agent_behavior_test.cpp.o.d"
  "agent_behavior_test"
  "agent_behavior_test.pdb"
  "agent_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agent_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
