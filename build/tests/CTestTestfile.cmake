# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/math_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/bank_test[1]_include.cmake")
include("/root/repo/build/tests/host_test[1]_include.cmake")
include("/root/repo/build/tests/market_test[1]_include.cmake")
include("/root/repo/build/tests/bestresponse_test[1]_include.cmake")
include("/root/repo/build/tests/predict_test[1]_include.cmake")
include("/root/repo/build/tests/grid_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/agent_behavior_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
