file(REMOVE_RECURSE
  "CMakeFiles/gm_crypto.dir/identity.cpp.o"
  "CMakeFiles/gm_crypto.dir/identity.cpp.o.d"
  "CMakeFiles/gm_crypto.dir/modmath.cpp.o"
  "CMakeFiles/gm_crypto.dir/modmath.cpp.o.d"
  "CMakeFiles/gm_crypto.dir/prime.cpp.o"
  "CMakeFiles/gm_crypto.dir/prime.cpp.o.d"
  "CMakeFiles/gm_crypto.dir/schnorr.cpp.o"
  "CMakeFiles/gm_crypto.dir/schnorr.cpp.o.d"
  "CMakeFiles/gm_crypto.dir/sha256.cpp.o"
  "CMakeFiles/gm_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/gm_crypto.dir/token.cpp.o"
  "CMakeFiles/gm_crypto.dir/token.cpp.o.d"
  "libgm_crypto.a"
  "libgm_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gm_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
