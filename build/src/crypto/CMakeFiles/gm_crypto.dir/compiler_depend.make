# Empty compiler generated dependencies file for gm_crypto.
# This may be replaced when dependencies are built.
