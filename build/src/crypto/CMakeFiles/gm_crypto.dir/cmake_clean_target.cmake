file(REMOVE_RECURSE
  "libgm_crypto.a"
)
