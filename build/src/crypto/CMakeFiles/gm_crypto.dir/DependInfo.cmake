
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/identity.cpp" "src/crypto/CMakeFiles/gm_crypto.dir/identity.cpp.o" "gcc" "src/crypto/CMakeFiles/gm_crypto.dir/identity.cpp.o.d"
  "/root/repo/src/crypto/modmath.cpp" "src/crypto/CMakeFiles/gm_crypto.dir/modmath.cpp.o" "gcc" "src/crypto/CMakeFiles/gm_crypto.dir/modmath.cpp.o.d"
  "/root/repo/src/crypto/prime.cpp" "src/crypto/CMakeFiles/gm_crypto.dir/prime.cpp.o" "gcc" "src/crypto/CMakeFiles/gm_crypto.dir/prime.cpp.o.d"
  "/root/repo/src/crypto/schnorr.cpp" "src/crypto/CMakeFiles/gm_crypto.dir/schnorr.cpp.o" "gcc" "src/crypto/CMakeFiles/gm_crypto.dir/schnorr.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/gm_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/gm_crypto.dir/sha256.cpp.o.d"
  "/root/repo/src/crypto/token.cpp" "src/crypto/CMakeFiles/gm_crypto.dir/token.cpp.o" "gcc" "src/crypto/CMakeFiles/gm_crypto.dir/token.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
