file(REMOVE_RECURSE
  "CMakeFiles/gm_net.dir/bus.cpp.o"
  "CMakeFiles/gm_net.dir/bus.cpp.o.d"
  "CMakeFiles/gm_net.dir/message.cpp.o"
  "CMakeFiles/gm_net.dir/message.cpp.o.d"
  "CMakeFiles/gm_net.dir/rpc.cpp.o"
  "CMakeFiles/gm_net.dir/rpc.cpp.o.d"
  "CMakeFiles/gm_net.dir/serialize.cpp.o"
  "CMakeFiles/gm_net.dir/serialize.cpp.o.d"
  "libgm_net.a"
  "libgm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
