# Empty compiler generated dependencies file for gm_net.
# This may be replaced when dependencies are built.
