# Empty dependencies file for gm_predict.
# This may be replaced when dependencies are built.
