file(REMOVE_RECURSE
  "CMakeFiles/gm_predict.dir/ar_forecaster.cpp.o"
  "CMakeFiles/gm_predict.dir/ar_forecaster.cpp.o.d"
  "CMakeFiles/gm_predict.dir/empirical_model.cpp.o"
  "CMakeFiles/gm_predict.dir/empirical_model.cpp.o.d"
  "CMakeFiles/gm_predict.dir/normal_model.cpp.o"
  "CMakeFiles/gm_predict.dir/normal_model.cpp.o.d"
  "CMakeFiles/gm_predict.dir/portfolio.cpp.o"
  "CMakeFiles/gm_predict.dir/portfolio.cpp.o.d"
  "CMakeFiles/gm_predict.dir/sla.cpp.o"
  "CMakeFiles/gm_predict.dir/sla.cpp.o.d"
  "libgm_predict.a"
  "libgm_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gm_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
