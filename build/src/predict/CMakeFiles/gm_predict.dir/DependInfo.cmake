
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predict/ar_forecaster.cpp" "src/predict/CMakeFiles/gm_predict.dir/ar_forecaster.cpp.o" "gcc" "src/predict/CMakeFiles/gm_predict.dir/ar_forecaster.cpp.o.d"
  "/root/repo/src/predict/empirical_model.cpp" "src/predict/CMakeFiles/gm_predict.dir/empirical_model.cpp.o" "gcc" "src/predict/CMakeFiles/gm_predict.dir/empirical_model.cpp.o.d"
  "/root/repo/src/predict/normal_model.cpp" "src/predict/CMakeFiles/gm_predict.dir/normal_model.cpp.o" "gcc" "src/predict/CMakeFiles/gm_predict.dir/normal_model.cpp.o.d"
  "/root/repo/src/predict/portfolio.cpp" "src/predict/CMakeFiles/gm_predict.dir/portfolio.cpp.o" "gcc" "src/predict/CMakeFiles/gm_predict.dir/portfolio.cpp.o.d"
  "/root/repo/src/predict/sla.cpp" "src/predict/CMakeFiles/gm_predict.dir/sla.cpp.o" "gcc" "src/predict/CMakeFiles/gm_predict.dir/sla.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/gm_math.dir/DependInfo.cmake"
  "/root/repo/build/src/bestresponse/CMakeFiles/gm_bestresponse.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/gm_market.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/gm_host.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
