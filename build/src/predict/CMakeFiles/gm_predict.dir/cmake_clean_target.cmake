file(REMOVE_RECURSE
  "libgm_predict.a"
)
