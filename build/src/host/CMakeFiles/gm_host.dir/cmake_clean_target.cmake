file(REMOVE_RECURSE
  "libgm_host.a"
)
