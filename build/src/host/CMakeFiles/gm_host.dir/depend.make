# Empty dependencies file for gm_host.
# This may be replaced when dependencies are built.
