file(REMOVE_RECURSE
  "CMakeFiles/gm_host.dir/host.cpp.o"
  "CMakeFiles/gm_host.dir/host.cpp.o.d"
  "CMakeFiles/gm_host.dir/provision.cpp.o"
  "CMakeFiles/gm_host.dir/provision.cpp.o.d"
  "CMakeFiles/gm_host.dir/vm.cpp.o"
  "CMakeFiles/gm_host.dir/vm.cpp.o.d"
  "libgm_host.a"
  "libgm_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gm_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
