
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/host.cpp" "src/host/CMakeFiles/gm_host.dir/host.cpp.o" "gcc" "src/host/CMakeFiles/gm_host.dir/host.cpp.o.d"
  "/root/repo/src/host/provision.cpp" "src/host/CMakeFiles/gm_host.dir/provision.cpp.o" "gcc" "src/host/CMakeFiles/gm_host.dir/provision.cpp.o.d"
  "/root/repo/src/host/vm.cpp" "src/host/CMakeFiles/gm_host.dir/vm.cpp.o" "gcc" "src/host/CMakeFiles/gm_host.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
