# Empty dependencies file for gm_core.
# This may be replaced when dependencies are built.
