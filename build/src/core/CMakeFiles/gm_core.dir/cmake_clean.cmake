file(REMOVE_RECURSE
  "CMakeFiles/gm_core.dir/grid_market.cpp.o"
  "CMakeFiles/gm_core.dir/grid_market.cpp.o.d"
  "libgm_core.a"
  "libgm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
