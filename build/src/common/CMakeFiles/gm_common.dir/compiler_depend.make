# Empty compiler generated dependencies file for gm_common.
# This may be replaced when dependencies are built.
