file(REMOVE_RECURSE
  "CMakeFiles/gm_common.dir/bytes.cpp.o"
  "CMakeFiles/gm_common.dir/bytes.cpp.o.d"
  "CMakeFiles/gm_common.dir/config.cpp.o"
  "CMakeFiles/gm_common.dir/config.cpp.o.d"
  "CMakeFiles/gm_common.dir/log.cpp.o"
  "CMakeFiles/gm_common.dir/log.cpp.o.d"
  "CMakeFiles/gm_common.dir/rng.cpp.o"
  "CMakeFiles/gm_common.dir/rng.cpp.o.d"
  "CMakeFiles/gm_common.dir/status.cpp.o"
  "CMakeFiles/gm_common.dir/status.cpp.o.d"
  "CMakeFiles/gm_common.dir/strings.cpp.o"
  "CMakeFiles/gm_common.dir/strings.cpp.o.d"
  "CMakeFiles/gm_common.dir/units.cpp.o"
  "CMakeFiles/gm_common.dir/units.cpp.o.d"
  "libgm_common.a"
  "libgm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
