file(REMOVE_RECURSE
  "libgm_common.a"
)
