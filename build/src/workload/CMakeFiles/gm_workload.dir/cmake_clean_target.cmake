file(REMOVE_RECURSE
  "libgm_workload.a"
)
