file(REMOVE_RECURSE
  "CMakeFiles/gm_workload.dir/bag_of_tasks.cpp.o"
  "CMakeFiles/gm_workload.dir/bag_of_tasks.cpp.o.d"
  "CMakeFiles/gm_workload.dir/experiment.cpp.o"
  "CMakeFiles/gm_workload.dir/experiment.cpp.o.d"
  "CMakeFiles/gm_workload.dir/proteome.cpp.o"
  "CMakeFiles/gm_workload.dir/proteome.cpp.o.d"
  "libgm_workload.a"
  "libgm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
