
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/market/auctioneer.cpp" "src/market/CMakeFiles/gm_market.dir/auctioneer.cpp.o" "gcc" "src/market/CMakeFiles/gm_market.dir/auctioneer.cpp.o.d"
  "/root/repo/src/market/auctioneer_service.cpp" "src/market/CMakeFiles/gm_market.dir/auctioneer_service.cpp.o" "gcc" "src/market/CMakeFiles/gm_market.dir/auctioneer_service.cpp.o.d"
  "/root/repo/src/market/price_history.cpp" "src/market/CMakeFiles/gm_market.dir/price_history.cpp.o" "gcc" "src/market/CMakeFiles/gm_market.dir/price_history.cpp.o.d"
  "/root/repo/src/market/slot_table.cpp" "src/market/CMakeFiles/gm_market.dir/slot_table.cpp.o" "gcc" "src/market/CMakeFiles/gm_market.dir/slot_table.cpp.o.d"
  "/root/repo/src/market/sls.cpp" "src/market/CMakeFiles/gm_market.dir/sls.cpp.o" "gcc" "src/market/CMakeFiles/gm_market.dir/sls.cpp.o.d"
  "/root/repo/src/market/window_stats.cpp" "src/market/CMakeFiles/gm_market.dir/window_stats.cpp.o" "gcc" "src/market/CMakeFiles/gm_market.dir/window_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/gm_host.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/gm_math.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gm_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
