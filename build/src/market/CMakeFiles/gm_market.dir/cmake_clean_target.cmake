file(REMOVE_RECURSE
  "libgm_market.a"
)
