file(REMOVE_RECURSE
  "CMakeFiles/gm_market.dir/auctioneer.cpp.o"
  "CMakeFiles/gm_market.dir/auctioneer.cpp.o.d"
  "CMakeFiles/gm_market.dir/auctioneer_service.cpp.o"
  "CMakeFiles/gm_market.dir/auctioneer_service.cpp.o.d"
  "CMakeFiles/gm_market.dir/price_history.cpp.o"
  "CMakeFiles/gm_market.dir/price_history.cpp.o.d"
  "CMakeFiles/gm_market.dir/slot_table.cpp.o"
  "CMakeFiles/gm_market.dir/slot_table.cpp.o.d"
  "CMakeFiles/gm_market.dir/sls.cpp.o"
  "CMakeFiles/gm_market.dir/sls.cpp.o.d"
  "CMakeFiles/gm_market.dir/window_stats.cpp.o"
  "CMakeFiles/gm_market.dir/window_stats.cpp.o.d"
  "libgm_market.a"
  "libgm_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gm_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
