# Empty dependencies file for gm_market.
# This may be replaced when dependencies are built.
