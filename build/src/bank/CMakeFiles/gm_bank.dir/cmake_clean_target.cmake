file(REMOVE_RECURSE
  "libgm_bank.a"
)
