file(REMOVE_RECURSE
  "CMakeFiles/gm_bank.dir/bank.cpp.o"
  "CMakeFiles/gm_bank.dir/bank.cpp.o.d"
  "CMakeFiles/gm_bank.dir/billing.cpp.o"
  "CMakeFiles/gm_bank.dir/billing.cpp.o.d"
  "CMakeFiles/gm_bank.dir/service.cpp.o"
  "CMakeFiles/gm_bank.dir/service.cpp.o.d"
  "libgm_bank.a"
  "libgm_bank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gm_bank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
