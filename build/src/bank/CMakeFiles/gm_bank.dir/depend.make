# Empty dependencies file for gm_bank.
# This may be replaced when dependencies are built.
