
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bank/bank.cpp" "src/bank/CMakeFiles/gm_bank.dir/bank.cpp.o" "gcc" "src/bank/CMakeFiles/gm_bank.dir/bank.cpp.o.d"
  "/root/repo/src/bank/billing.cpp" "src/bank/CMakeFiles/gm_bank.dir/billing.cpp.o" "gcc" "src/bank/CMakeFiles/gm_bank.dir/billing.cpp.o.d"
  "/root/repo/src/bank/service.cpp" "src/bank/CMakeFiles/gm_bank.dir/service.cpp.o" "gcc" "src/bank/CMakeFiles/gm_bank.dir/service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/gm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
