file(REMOVE_RECURSE
  "libgm_sim.a"
)
