# Empty dependencies file for gm_sim.
# This may be replaced when dependencies are built.
