file(REMOVE_RECURSE
  "CMakeFiles/gm_sim.dir/kernel.cpp.o"
  "CMakeFiles/gm_sim.dir/kernel.cpp.o.d"
  "libgm_sim.a"
  "libgm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
