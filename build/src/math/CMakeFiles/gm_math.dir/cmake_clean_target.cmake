file(REMOVE_RECURSE
  "libgm_math.a"
)
