file(REMOVE_RECURSE
  "CMakeFiles/gm_math.dir/ar_model.cpp.o"
  "CMakeFiles/gm_math.dir/ar_model.cpp.o.d"
  "CMakeFiles/gm_math.dir/autocorr.cpp.o"
  "CMakeFiles/gm_math.dir/autocorr.cpp.o.d"
  "CMakeFiles/gm_math.dir/distributions.cpp.o"
  "CMakeFiles/gm_math.dir/distributions.cpp.o.d"
  "CMakeFiles/gm_math.dir/histogram.cpp.o"
  "CMakeFiles/gm_math.dir/histogram.cpp.o.d"
  "CMakeFiles/gm_math.dir/matrix.cpp.o"
  "CMakeFiles/gm_math.dir/matrix.cpp.o.d"
  "CMakeFiles/gm_math.dir/normal.cpp.o"
  "CMakeFiles/gm_math.dir/normal.cpp.o.d"
  "CMakeFiles/gm_math.dir/spline.cpp.o"
  "CMakeFiles/gm_math.dir/spline.cpp.o.d"
  "CMakeFiles/gm_math.dir/stats.cpp.o"
  "CMakeFiles/gm_math.dir/stats.cpp.o.d"
  "CMakeFiles/gm_math.dir/tridiag.cpp.o"
  "CMakeFiles/gm_math.dir/tridiag.cpp.o.d"
  "libgm_math.a"
  "libgm_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gm_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
