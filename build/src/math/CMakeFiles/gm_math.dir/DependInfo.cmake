
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/ar_model.cpp" "src/math/CMakeFiles/gm_math.dir/ar_model.cpp.o" "gcc" "src/math/CMakeFiles/gm_math.dir/ar_model.cpp.o.d"
  "/root/repo/src/math/autocorr.cpp" "src/math/CMakeFiles/gm_math.dir/autocorr.cpp.o" "gcc" "src/math/CMakeFiles/gm_math.dir/autocorr.cpp.o.d"
  "/root/repo/src/math/distributions.cpp" "src/math/CMakeFiles/gm_math.dir/distributions.cpp.o" "gcc" "src/math/CMakeFiles/gm_math.dir/distributions.cpp.o.d"
  "/root/repo/src/math/histogram.cpp" "src/math/CMakeFiles/gm_math.dir/histogram.cpp.o" "gcc" "src/math/CMakeFiles/gm_math.dir/histogram.cpp.o.d"
  "/root/repo/src/math/matrix.cpp" "src/math/CMakeFiles/gm_math.dir/matrix.cpp.o" "gcc" "src/math/CMakeFiles/gm_math.dir/matrix.cpp.o.d"
  "/root/repo/src/math/normal.cpp" "src/math/CMakeFiles/gm_math.dir/normal.cpp.o" "gcc" "src/math/CMakeFiles/gm_math.dir/normal.cpp.o.d"
  "/root/repo/src/math/spline.cpp" "src/math/CMakeFiles/gm_math.dir/spline.cpp.o" "gcc" "src/math/CMakeFiles/gm_math.dir/spline.cpp.o.d"
  "/root/repo/src/math/stats.cpp" "src/math/CMakeFiles/gm_math.dir/stats.cpp.o" "gcc" "src/math/CMakeFiles/gm_math.dir/stats.cpp.o.d"
  "/root/repo/src/math/tridiag.cpp" "src/math/CMakeFiles/gm_math.dir/tridiag.cpp.o" "gcc" "src/math/CMakeFiles/gm_math.dir/tridiag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
