# Empty compiler generated dependencies file for gm_math.
# This may be replaced when dependencies are built.
