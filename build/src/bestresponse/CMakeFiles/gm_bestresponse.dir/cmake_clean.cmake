file(REMOVE_RECURSE
  "CMakeFiles/gm_bestresponse.dir/best_response.cpp.o"
  "CMakeFiles/gm_bestresponse.dir/best_response.cpp.o.d"
  "libgm_bestresponse.a"
  "libgm_bestresponse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gm_bestresponse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
