file(REMOVE_RECURSE
  "libgm_bestresponse.a"
)
