# Empty compiler generated dependencies file for gm_bestresponse.
# This may be replaced when dependencies are built.
