
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/auth.cpp" "src/grid/CMakeFiles/gm_grid.dir/auth.cpp.o" "gcc" "src/grid/CMakeFiles/gm_grid.dir/auth.cpp.o.d"
  "/root/repo/src/grid/broker.cpp" "src/grid/CMakeFiles/gm_grid.dir/broker.cpp.o" "gcc" "src/grid/CMakeFiles/gm_grid.dir/broker.cpp.o.d"
  "/root/repo/src/grid/job.cpp" "src/grid/CMakeFiles/gm_grid.dir/job.cpp.o" "gcc" "src/grid/CMakeFiles/gm_grid.dir/job.cpp.o.d"
  "/root/repo/src/grid/monitor.cpp" "src/grid/CMakeFiles/gm_grid.dir/monitor.cpp.o" "gcc" "src/grid/CMakeFiles/gm_grid.dir/monitor.cpp.o.d"
  "/root/repo/src/grid/plugin.cpp" "src/grid/CMakeFiles/gm_grid.dir/plugin.cpp.o" "gcc" "src/grid/CMakeFiles/gm_grid.dir/plugin.cpp.o.d"
  "/root/repo/src/grid/xrsl.cpp" "src/grid/CMakeFiles/gm_grid.dir/xrsl.cpp.o" "gcc" "src/grid/CMakeFiles/gm_grid.dir/xrsl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/gm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/bank/CMakeFiles/gm_bank.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/gm_host.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/gm_market.dir/DependInfo.cmake"
  "/root/repo/build/src/bestresponse/CMakeFiles/gm_bestresponse.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/gm_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
