file(REMOVE_RECURSE
  "libgm_grid.a"
)
