# Empty dependencies file for gm_grid.
# This may be replaced when dependencies are built.
