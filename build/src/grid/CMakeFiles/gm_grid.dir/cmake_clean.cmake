file(REMOVE_RECURSE
  "CMakeFiles/gm_grid.dir/auth.cpp.o"
  "CMakeFiles/gm_grid.dir/auth.cpp.o.d"
  "CMakeFiles/gm_grid.dir/broker.cpp.o"
  "CMakeFiles/gm_grid.dir/broker.cpp.o.d"
  "CMakeFiles/gm_grid.dir/job.cpp.o"
  "CMakeFiles/gm_grid.dir/job.cpp.o.d"
  "CMakeFiles/gm_grid.dir/monitor.cpp.o"
  "CMakeFiles/gm_grid.dir/monitor.cpp.o.d"
  "CMakeFiles/gm_grid.dir/plugin.cpp.o"
  "CMakeFiles/gm_grid.dir/plugin.cpp.o.d"
  "CMakeFiles/gm_grid.dir/xrsl.cpp.o"
  "CMakeFiles/gm_grid.dir/xrsl.cpp.o.d"
  "libgm_grid.a"
  "libgm_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gm_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
