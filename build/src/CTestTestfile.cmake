# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("math")
subdirs("crypto")
subdirs("net")
subdirs("bank")
subdirs("host")
subdirs("market")
subdirs("bestresponse")
subdirs("predict")
subdirs("grid")
subdirs("core")
subdirs("workload")
