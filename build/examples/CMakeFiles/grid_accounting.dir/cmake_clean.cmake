file(REMOVE_RECURSE
  "CMakeFiles/grid_accounting.dir/grid_accounting.cpp.o"
  "CMakeFiles/grid_accounting.dir/grid_accounting.cpp.o.d"
  "grid_accounting"
  "grid_accounting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
