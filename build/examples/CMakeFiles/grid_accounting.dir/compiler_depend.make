# Empty compiler generated dependencies file for grid_accounting.
# This may be replaced when dependencies are built.
