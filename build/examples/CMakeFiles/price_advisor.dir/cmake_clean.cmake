file(REMOVE_RECURSE
  "CMakeFiles/price_advisor.dir/price_advisor.cpp.o"
  "CMakeFiles/price_advisor.dir/price_advisor.cpp.o.d"
  "price_advisor"
  "price_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/price_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
