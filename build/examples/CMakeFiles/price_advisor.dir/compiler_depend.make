# Empty compiler generated dependencies file for price_advisor.
# This may be replaced when dependencies are built.
