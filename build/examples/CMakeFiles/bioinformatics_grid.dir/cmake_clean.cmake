file(REMOVE_RECURSE
  "CMakeFiles/bioinformatics_grid.dir/bioinformatics_grid.cpp.o"
  "CMakeFiles/bioinformatics_grid.dir/bioinformatics_grid.cpp.o.d"
  "bioinformatics_grid"
  "bioinformatics_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bioinformatics_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
