# Empty compiler generated dependencies file for bioinformatics_grid.
# This may be replaced when dependencies are built.
