# Empty compiler generated dependencies file for token_security.
# This may be replaced when dependencies are built.
