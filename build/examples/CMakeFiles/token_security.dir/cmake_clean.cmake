file(REMOVE_RECURSE
  "CMakeFiles/token_security.dir/token_security.cpp.o"
  "CMakeFiles/token_security.dir/token_security.cpp.o.d"
  "token_security"
  "token_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/token_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
