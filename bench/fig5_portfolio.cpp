// Figure 5 reproduction: risk-free portfolio vs equal-share portfolio.
//
// Ten hosts with randomly drawn mean performance, performance variance,
// and variance-of-variances (all normal, per the paper's simulation).
// The minimum-variance ("risk free") portfolio computed from a training
// window is compared with equal shares on fresh data: the aggregate
// performance over time should show reduced downside risk.
#include <algorithm>
#include <cstdio>

#include "common/rng.hpp"
#include "math/distributions.hpp"
#include "math/stats.hpp"
#include "predict/portfolio.hpp"

int main() {
  using namespace gm;
  Rng rng(2006);
  const std::size_t hosts = 10;

  // Per-host return models: mean ~ N(5, 1); each host's sigma itself drawn
  // with a randomly drawn spread (the paper's "variance of performance
  // variances").
  math::NormalSampler mean_gen(5.0, 1.0);
  math::NormalSampler sigma_spread_gen(0.6, 0.25);
  std::vector<math::NormalSampler> host_returns;
  for (std::size_t h = 0; h < hosts; ++h) {
    const double sigma = std::max(0.05, sigma_spread_gen.Sample(rng));
    host_returns.emplace_back(mean_gen.Sample(rng), sigma);
  }

  // Training window.
  std::vector<std::vector<double>> history(hosts);
  for (int t = 0; t < 800; ++t)
    for (std::size_t h = 0; h < hosts; ++h)
      history[h].push_back(host_returns[h].Sample(rng));
  const auto optimizer = predict::PortfolioOptimizer::FromReturnSeries(history);
  GM_ASSERT(optimizer.ok(), "portfolio estimation failed");
  const auto min_var = optimizer->MinimumVariance();
  GM_ASSERT(min_var.ok(), "minimum variance failed");
  const std::vector<double> risk_free =
      predict::ClampLongOnly(min_var->weights);
  const std::vector<double> equal(hosts, 1.0 / hosts);

  std::printf("=== Figure 5: Risk-free vs equal-share portfolio ===\n");
  std::printf("risk-free weights:");
  for (const double w : risk_free) std::printf(" %.3f", w);
  std::printf("\n\n%6s %12s %12s\n", "time", "risk-free", "equal-share");

  // Fresh evaluation period; print one point per 10 steps like the
  // paper's time series.
  math::RunningMoments rf_stats, eq_stats;
  std::vector<double> rf_series, eq_series;
  for (int t = 0; t < 1000; ++t) {
    double rf = 0.0, eq = 0.0;
    for (std::size_t h = 0; h < hosts; ++h) {
      const double r = host_returns[h].Sample(rng);
      rf += risk_free[h] * r;
      eq += equal[h] * r;
    }
    rf_stats.Add(rf);
    eq_stats.Add(eq);
    rf_series.push_back(rf);
    eq_series.push_back(eq);
    if (t % 100 == 0) std::printf("%6d %12.3f %12.3f\n", t, rf, eq);
  }

  const double rf_p5 = math::Quantile(rf_series, 0.05);
  const double eq_p5 = math::Quantile(eq_series, 0.05);
  std::printf("\n%-22s %12s %12s\n", "aggregate performance", "risk-free",
              "equal-share");
  std::printf("%-22s %12.3f %12.3f\n", "mean", rf_stats.mean(),
              eq_stats.mean());
  std::printf("%-22s %12.3f %12.3f\n", "stddev", rf_stats.stddev(),
              eq_stats.stddev());
  std::printf("%-22s %12.3f %12.3f\n", "5th-percentile (down)", rf_p5,
              eq_p5);
  std::printf("%-22s %12.3f %12.3f\n", "worst observation", rf_stats.min(),
              eq_stats.min());
  std::printf("\n(paper: the risk-free portfolio improves downside risk)\n");
  // Success criterion: lower spread and a better worst case.
  return (rf_stats.stddev() < eq_stats.stddev() && rf_p5 >= eq_p5) ? 0 : 2;
}
