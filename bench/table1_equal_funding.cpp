// Table 1 reproduction: equal distribution of funds.
//
// Five users fund the same proteome-scan job equally. The paper observes
// that the first users to submit (cheap, idle market) spread across the
// full 15 nodes, while later users face higher prices: Best Response funds
// fewer hosts and their sub-jobs run slower.
//
// Paper's measured rows (HPDC'06, Table 1):
//   Users 1-2:  Time 7.16 h  Cost 4.19 $/h  Latency 28.66 min/job  Nodes 15
//   Users 3-5:  Time 6.36 h  Cost 4.28 $/h  Latency 45.49 min/job  Nodes 8.7
// The reproduction target is the *shape*: later users see fewer nodes and
// higher per-chunk latency at comparable cost.
#include <cstdio>

#include "experiment_common.hpp"

int main(int argc, char** argv) {
  using namespace gm;
  // Optional key=value overrides for parameter exploration, e.g.
  //   table1_equal_funding wall_hours=16 loaded=0.8 bg_max=20
  const auto overrides = Config::FromArgs(argc - 1, argv + 1);
  if (!overrides.ok()) {
    std::fprintf(stderr, "bad arguments: %s\n",
                 overrides.status().ToString().c_str());
    return 1;
  }
  const Money budget = Money::Dollars(overrides->GetDouble("budget", 100.0));
  auto config = bench::PaperTestbed(
      /*budgets=*/{budget, budget, budget, budget, budget},
      /*wall_minutes=*/overrides->GetDouble("wall_hours", 8.0) * 60.0);
  config.background.loaded_host_fraction =
      overrides->GetDouble("loaded", config.background.loaded_host_fraction);
  config.background.min_rate_per_hour =
      overrides->GetDouble("bg_min", config.background.min_rate_per_hour);
  config.background.max_rate_per_hour =
      overrides->GetDouble("bg_max", config.background.max_rate_per_hour);
  config.grid.seed =
      static_cast<std::uint64_t>(overrides->GetInt("seed", 20060619));
  config.stagger =
      sim::Minutes(overrides->GetDouble("stagger_min",
                                        sim::ToMinutes(config.stagger)));
  workload::BestResponseExperiment experiment(std::move(config));
  const auto outcomes = experiment.Run();
  if (!outcomes.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 outcomes.status().ToString().c_str());
    return 1;
  }

  std::printf("=== Table 1: Equal Distribution of Funds ===\n");
  std::printf("(paper: users 1-2 -> 15 nodes, users 3-5 -> 8.7 nodes at\n"
              " higher latency; our adaptive equilibrium agents reproduce\n"
              " the node concentration and completion-time ordering, but\n"
              " later users concentrate onto better hosts, so their chunk\n"
              " latency is not degraded — see EXPERIMENTS.md)\n\n");
  bench::PrintOutcomes(*outcomes);
  std::printf("\n");
  const std::vector<workload::GroupSummary> groups{
      workload::BestResponseExperiment::Summarize(*outcomes, 0, 1, "1-2"),
      workload::BestResponseExperiment::Summarize(*outcomes, 2, 4, "3-5"),
  };
  std::printf("%s", workload::BestResponseExperiment::RenderTable(groups).c_str());
  return 0;
}
