// Microbenchmarks of the hot paths: bid optimization, auction ticks,
// crypto primitives, prediction fits, the simulation kernel and the
// durable-store journal.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "bestresponse/best_response.hpp"
#include "common/rng.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"
#include "market/auctioneer.hpp"
#include "market/price_history.hpp"
#include "market/slot_table.hpp"
#include "market/window_stats.hpp"
#include "math/ar_model.hpp"
#include "math/matrix.hpp"
#include "math/spline.hpp"
#include "sim/kernel.hpp"
#include "store/store.hpp"

namespace gm {
namespace {

void BM_BestResponseSolve(benchmark::State& state) {
  const std::size_t hosts = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<br::HostBidInput> inputs;
  for (std::size_t j = 0; j < hosts; ++j) {
    inputs.push_back({"h" + std::to_string(j), rng.Uniform(1e9, 4e9),
                      Rate::DollarsPerSec(rng.Uniform(1e-5, 1e-2))});
  }
  br::BestResponseSolver solver;
  for (auto _ : state) {
    auto result = solver.Solve(inputs, Rate::DollarsPerSec(0.01));
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * hosts);
}
BENCHMARK(BM_BestResponseSolve)->Arg(15)->Arg(100)->Arg(600);

void BM_AuctioneerTick(benchmark::State& state) {
  const int users = static_cast<int>(state.range(0));
  sim::Kernel kernel;
  host::HostSpec spec;
  spec.id = "bench";
  spec.cpus = 2;
  spec.cycles_per_cpu = GHz(3.0);
  spec.vm_boot_time = 0;
  spec.max_vms = users;
  host::PhysicalHost host(spec);
  market::Auctioneer auctioneer(host, kernel);
  for (int u = 0; u < users; ++u) {
    const std::string user = "u" + std::to_string(u);
    (void)auctioneer.OpenAccount(user);
    (void)auctioneer.Fund(user, Money::Dollars(1e9));
    (void)auctioneer.SetBid(user, Rate::MicrosPerSec(1000 + u),
                            sim::Hours(1e6));
    auto vm = auctioneer.AcquireVm(user);
    (*vm)->Enqueue({1, 1e18, nullptr});
  }
  for (auto _ : state) {
    auctioneer.Tick();
    benchmark::DoNotOptimize(auctioneer.SpotPriceRate());
  }
}
BENCHMARK(BM_AuctioneerTick)->Arg(2)->Arg(15);

void BM_Sha256(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  const std::string payload(size, 'x');
  for (auto _ : state) {
    auto digest = crypto::Sha256::Hash(payload);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096);

void BM_SchnorrSign(benchmark::State& state) {
  Rng rng(2);
  const auto keys = crypto::KeyPair::Generate(crypto::TestGroup(), rng);
  for (auto _ : state) {
    auto signature = keys.Sign("transfer token payload", rng);
    benchmark::DoNotOptimize(signature);
  }
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  Rng rng(3);
  const auto keys = crypto::KeyPair::Generate(crypto::TestGroup(), rng);
  const auto signature = keys.Sign("transfer token payload", rng);
  for (auto _ : state) {
    bool ok = keys.public_key().Verify("transfer token payload", signature);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_SchnorrVerify);

void BM_ArFit(benchmark::State& state) {
  Rng rng(4);
  std::vector<double> series;
  double level = 1.0;
  for (int i = 0; i < 2000; ++i) {
    level = 0.9 * level + rng.Uniform(0.0, 0.2);
    series.push_back(level);
  }
  for (auto _ : state) {
    auto model = math::ArModel::Fit(series, 6);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_ArFit);

void BM_SmoothingSplineFit(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<double>(i);
    y[i] = rng.NextDouble();
  }
  for (auto _ : state) {
    auto fit = math::SmoothingSpline::Fit(x, y, 50.0);
    benchmark::DoNotOptimize(fit);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SmoothingSplineFit)->Arg(500)->Arg(5000);

void BM_WindowMomentsAdd(benchmark::State& state) {
  market::WindowMoments moments(8640);
  Rng rng(6);
  for (auto _ : state) {
    moments.Add(rng.NextDouble());
    benchmark::DoNotOptimize(moments.mean());
  }
}
BENCHMARK(BM_WindowMomentsAdd);

void BM_SlotTableAdd(benchmark::State& state) {
  market::SlotTable table(8640, 20, 1.0);
  Rng rng(7);
  for (auto _ : state) {
    table.Add(rng.NextDouble());
  }
  benchmark::DoNotOptimize(table.Proportions());
}
BENCHMARK(BM_SlotTableAdd);

void BM_KernelEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Kernel kernel;
    for (int i = 0; i < 1000; ++i) {
      kernel.ScheduleAt(i, [] {});
    }
    benchmark::DoNotOptimize(kernel.Run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_KernelEventThroughput);

void BM_LuSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  math::Matrix a(n, n);
  math::Vector b(n);
  for (std::size_t r = 0; r < n; ++r) {
    b[r] = rng.Uniform(-1.0, 1.0);
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.Uniform(-1.0, 1.0);
    a(r, r) += static_cast<double>(n);
  }
  for (auto _ : state) {
    auto x = math::SolveLinear(a, b);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_LuSolve)->Arg(10)->Arg(50);

std::filesystem::path BenchStoreDir(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  return dir;
}

void BM_WalAppend(benchmark::State& state) {
  const std::size_t payload_size = static_cast<std::size_t>(state.range(0));
  const auto dir = BenchStoreDir("gm_bench_wal_append");
  auto wal = store::WriteAheadLog::Open(dir.string());
  const Bytes payload(payload_size, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize((*wal)->Append(payload));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload_size));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_WalAppend)->Arg(64)->Arg(1024);

void BM_WalReplay(benchmark::State& state) {
  const std::int64_t records = state.range(0);
  const auto dir = BenchStoreDir("gm_bench_wal_replay");
  {
    auto wal = store::WriteAheadLog::Open(dir.string());
    const Bytes payload(128, 0xCD);
    for (std::int64_t i = 0; i < records; ++i) (void)(*wal)->Append(payload);
  }
  auto wal = store::WriteAheadLog::Open(dir.string());
  for (auto _ : state) {
    auto stats = (*wal)->Replay(
        0, [](std::uint64_t, const Bytes&) { return Status::Ok(); });
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(state.iterations() * records);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_WalReplay)->Arg(1000)->Arg(10000);

void BM_SnapshotLoad(benchmark::State& state) {
  const std::int64_t points = state.range(0);
  const auto dir = BenchStoreDir("gm_bench_snapshot");
  auto store = store::DurableStore::Open(dir.string());
  {
    market::PriceHistory history(1 << 20);
    history.AttachStore(store->get());
    Rng rng(9);
    for (std::int64_t i = 0; i < points; ++i)
      history.Record(sim::Seconds(10 * i), rng.NextDouble());
    (void)(*store)->WriteSnapshot(history);
  }
  for (auto _ : state) {
    market::PriceHistory recovered(1 << 20);
    auto stats = (*store)->Recover(recovered);
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(state.iterations() * points);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_SnapshotLoad)->Arg(1000)->Arg(50000);

}  // namespace
}  // namespace gm

BENCHMARK_MAIN();
