// Figure 6 reproduction: price distribution within three time windows.
//
// A market runs for just over a simulated week with a regime change in
// load (a quiet week, then a busy final day, then a calm last hour), and
// we print the auctioneer's slot-table price distribution for the hour,
// day and week windows. The paper reads its version of this figure as:
// different windows can disagree strongly — e.g. recent prices cluster in
// low brackets while the day/week mass sits in expensive brackets — which
// is what tells a user which prediction model applies.
#include <cstdio>

#include "core/grid_market.hpp"
#include "math/distributions.hpp"

int main() {
  using namespace gm;
  GridMarket::Config config;
  config.hosts = 2;
  config.seed = 99;
  GridMarket grid(config);
  Rng rng(31);
  for (int u = 0; u < 6; ++u) {
    GM_ASSERT(grid.RegisterUser("u" + std::to_string(u), Money::Dollars(1e9)).ok(),
              "register failed");
  }

  auto submit_load = [&](double budget, double cpu_minutes) {
    const std::string user = "u" + std::to_string(rng.NextBelow(6));
    grid::JobDescription job;
    job.executable = "/bin/batch";
    job.job_name = "load";
    job.count = 2;
    job.chunks = 2;
    job.cpu_time_minutes = cpu_minutes;
    job.wall_time_minutes = 8 * 60.0;
    (void)grid.SubmitJob(user, job, Money::Dollars(budget));
  };

  // A busy week: frequent contending jobs keep prices in the upper
  // brackets (the paper's trace shows the week/day mass in the most
  // expensive bracket)...
  for (sim::SimTime t = 0; t < 7 * sim::kDay - sim::Hours(3);
       t += sim::Minutes(40 + static_cast<long>(rng.NextBelow(40)))) {
    grid.RunUntil(t);
    submit_load(20.0 + rng.Uniform(0.0, 80.0), 30.0 + rng.Uniform(0.0, 40.0));
  }
  // ...followed by a calm final stretch: submissions stop, jobs drain,
  // and the most recent window collapses into the lowest price bracket.
  grid.RunUntil(7 * sim::kDay);

  std::printf("=== Figure 6: price distribution in three windows ===\n");
  std::printf("host h00, %zu price snapshots\n\n",
              grid.auctioneer(0).history().size());
  const char* windows[] = {"hour", "day", "week"};
  std::printf("%-22s %10s %10s %10s\n", "price bracket ($/h/GHz)",
              "last hour", "last day", "last week");
  const auto hour = grid.auctioneer(0).Distribution("hour");
  const auto day = grid.auctioneer(0).Distribution("day");
  const auto week = grid.auctioneer(0).Distribution("week");
  GM_ASSERT(hour.ok() && day.ok() && week.ok(), "distributions missing");
  (void)windows;
  const auto hp = (*hour)->Proportions();
  const auto dp = (*day)->Proportions();
  const auto wp = (*week)->Proportions();
  // All tables share slot geometry policy but may have expanded
  // differently; print each against its own brackets, normalized to the
  // widest (week) table for comparability.
  const std::size_t slots = (*week)->slot_count();
  for (std::size_t j = 0; j < slots; ++j) {
    const double lo = (*week)->slot_lower(j) * 1e9 * 3600.0;
    const double hi = lo + (*week)->slot_width() * 1e9 * 3600.0;
    // Re-bucket hour/day proportions into the week geometry.
    auto rebucket = [&](const market::SlotTable& table,
                        const std::vector<double>& proportions) {
      double mass = 0.0;
      for (std::size_t k = 0; k < table.slot_count(); ++k) {
        const double center = (table.slot_lower(k) +
                               0.5 * table.slot_width()) * 1e9 * 3600.0;
        if (center >= lo && center < hi) mass += proportions[k];
      }
      return mass;
    };
    std::printf("[%8.5f, %8.5f)  %9.3f %10.3f %10.3f\n", lo, hi,
                rebucket(**hour, hp), rebucket(**day, dp),
                rebucket(**week, wp));
  }
  std::printf("\nwindow moments (mean / sigma / skew / kurtosis):\n");
  for (const char* window : {"hour", "day", "week"}) {
    const auto moments = grid.auctioneer(0).Moments(window);
    GM_ASSERT(moments.ok(), "moments missing");
    std::printf("  %-5s %10.5f %10.5f %8.2f %8.2f\n", window,
                (*moments)->mean() * 1e9 * 3600.0,
                (*moments)->stddev() * 1e9 * 3600.0,
                (*moments)->skewness(), (*moments)->kurtosis());
  }
  return 0;
}
