// Market hot-path microbenchmark: ns per SetBid and ns per allocation
// tick for the incremental (delta-maintained spot price, SoA bid table,
// arena-backed tick) auctioneer, against a faithful replica of the
// pre-change tick — std::map<std::string, Account> book, std::map
// weights rebuilt every tick, per-slice GetVm/accounts.find string
// lookups, and a full O(accounts) re-sum for every price read.
//
// Emits BENCH_market.json. The `speedup_tick_1k` row is the acceptance
// number: incremental must be >= 3x the legacy tick at 1k bidders.
//
// Usage: market_hot_path [--smoke]   (--smoke: 100 bidders only, quick)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "experiment_common.hpp"
#include "host/host.hpp"
#include "market/auctioneer.hpp"
#include "market/price_history.hpp"
#include "market/slot_table.hpp"
#include "market/window_stats.hpp"
#include "sim/kernel.hpp"

namespace gm::bench {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedNs(Clock::time_point start) {
  return std::chrono::duration<double, std::nano>(Clock::now() - start)
      .count();
}

host::HostSpec BenchHost(int max_vms) {
  host::HostSpec spec;
  spec.id = "h1";
  spec.cpus = 2;
  spec.cycles_per_cpu = GHz(3.0);
  spec.virtualization_overhead = 0.0;
  spec.vm_boot_time = 0;  // VMs busy from the first tick
  spec.max_vms = max_vms;
  return spec;
}

std::string UserName(int i) { return "u" + std::to_string(i); }

// ---------------------------------------------------------------------
// Replica of the pre-change auctioneer tick (see git history of
// src/market/auctioneer.cpp): ordered-map book, weights map rebuilt per
// tick, string lookups per charged slice, full re-sum spot price, and
// the same per-tick price recording the real auctioneer performs.
struct LegacyAccount {
  std::string user;
  Money balance;
  Money spent;
  Rate rate;
  sim::SimTime deadline = 0;
};

class LegacyMarket {
 public:
  explicit LegacyMarket(int bidders)
      : host_(BenchHost(bidders)) {
    for (const auto& [name, n] :
         std::vector<std::pair<std::string, std::size_t>>{
             {"hour", 360}, {"day", 8640}, {"week", 60480}}) {
      moments_.emplace_back(name, market::WindowMoments(n));
      distributions_.emplace_back(name, market::SlotTable(n, 20, 1e-15));
    }
    for (int i = 0; i < bidders; ++i) {
      const std::string user = UserName(i);
      LegacyAccount account;
      account.user = user;
      account.balance = Money::Dollars(1e6);
      account.rate = Rate::MicrosPerSec(100 + i % 900);
      account.deadline = sim::Seconds(1'000'000'000);
      accounts_.emplace(user, account);
      auto vm = host_.CreateVm(VmId(user), user, 0);
      if (vm.ok()) (*vm)->Enqueue({static_cast<std::uint64_t>(i), 1e18, {}});
    }
  }

  bool Active(const LegacyAccount& account, sim::SimTime t) const {
    return account.rate.is_positive() && account.balance.is_positive() &&
           t < account.deadline;
  }

  void Tick(sim::SimTime now, sim::SimDuration interval) {
    const sim::SimTime interval_start = now - interval;
    const double dt_seconds = sim::ToSeconds(interval);

    std::map<std::string, double> weights;
    for (const auto& [user, account] : accounts_) {
      if (Active(account, interval_start) || Active(account, now)) {
        weights[VmId(user)] =
            static_cast<double>(account.rate.micros_per_sec());
      }
    }

    const std::vector<host::AllocationSlice> slices =
        host_.AdvanceInterval(interval_start, interval, weights);

    for (const host::AllocationSlice& slice : slices) {
      host::VirtualMachine* vm = host_.GetVm(slice.vm_id).value_or(nullptr);
      if (vm == nullptr) continue;
      const auto it = accounts_.find(vm->owner());
      if (it == accounts_.end()) continue;
      LegacyAccount& account = it->second;
      const Money cost =
          Min(ChargeFor(account.rate, dt_seconds, slice.used_fraction),
              account.balance);
      account.balance -= cost;
      account.spent += cost;
      revenue_ += cost;
    }

    // Full O(accounts) re-sum, then the same recording the real tick does.
    Micros total = 0;
    for (const auto& [user, account] : accounts_) {
      if (Active(account, now)) total += account.rate.micros_per_sec();
    }
    const double price = MicrosToDollars(total) / host_.TotalCapacity();
    history_.Record(now, price);
    for (auto& [name, moments] : moments_) moments.Add(price);
    for (auto& [name, table] : distributions_) table.Add(price);
  }

  Money revenue() const { return revenue_; }

 private:
  std::string VmId(const std::string& user) const {
    return host_.id() + "/" + user;
  }

  host::PhysicalHost host_;
  std::map<std::string, LegacyAccount> accounts_;
  market::PriceHistory history_;
  std::vector<std::pair<std::string, market::WindowMoments>> moments_;
  std::vector<std::pair<std::string, market::SlotTable>> distributions_;
  Money revenue_;
};

// ---------------------------------------------------------------------
struct World {
  explicit World(int bidders) : host(BenchHost(bidders)), auctioneer(host, kernel) {
    for (int i = 0; i < bidders; ++i) {
      const std::string user = UserName(i);
      if (!auctioneer.OpenAccount(user).ok()) std::abort();
      if (!auctioneer.Fund(user, Money::Dollars(1e6)).ok()) std::abort();
      if (!auctioneer
               .SetBid(user, Rate::MicrosPerSec(100 + i % 900),
                       sim::Seconds(1'000'000'000))
               .ok())
        std::abort();
      auto vm = auctioneer.AcquireVm(user);
      if (!vm.ok()) std::abort();
      (*vm)->Enqueue({static_cast<std::uint64_t>(i), 1e18, {}});
    }
  }

  sim::Kernel kernel;
  host::PhysicalHost host;
  market::Auctioneer auctioneer;
};

double MeasureSetBidNs(World& world, int bidders, int ops) {
  // Re-bid existing accounts round-robin with alternating rates: the
  // steady-state hot path (index lookup + O(1) delta on the active sum).
  const sim::SimTime deadline = sim::Seconds(1'000'000'000);
  std::vector<std::string> users;
  users.reserve(static_cast<std::size_t>(bidders));
  for (int i = 0; i < bidders; ++i) users.push_back(UserName(i));
  const auto start = Clock::now();
  for (int i = 0; i < ops; ++i) {
    const std::string& user = users[static_cast<std::size_t>(i % bidders)];
    (void)world.auctioneer.SetBid(
        user, Rate::MicrosPerSec(100 + (i * 7) % 900), deadline);
  }
  return ElapsedNs(start) / ops;
}

double MeasureIncrementalTickNs(World& world, int ticks) {
  world.auctioneer.Start();
  world.kernel.RunUntil(2 * sim::Seconds(10));  // warm up allocations
  const sim::SimTime from = world.kernel.now();
  const auto start = Clock::now();
  world.kernel.RunUntil(from + ticks * sim::Seconds(10));
  const double ns = ElapsedNs(start) / ticks;
  world.auctioneer.Stop();
  return ns;
}

double MeasureLegacyTickNs(int bidders, int ticks) {
  LegacyMarket market(bidders);
  sim::SimTime now = 0;
  const sim::SimDuration interval = sim::Seconds(10);
  for (int warm = 0; warm < 2; ++warm) market.Tick(now += interval, interval);
  const auto start = Clock::now();
  for (int i = 0; i < ticks; ++i) market.Tick(now += interval, interval);
  const double ns = ElapsedNs(start) / ticks;
  if (!market.revenue().is_positive()) std::abort();  // sanity: charging ran
  return ns;
}

int Run(bool smoke) {
  BenchResultFile results("market");
  const std::vector<int> sizes =
      smoke ? std::vector<int>{100} : std::vector<int>{100, 1000, 10000};
  const int ticks = smoke ? 5 : 40;

  double incremental_1k = 0.0;
  double legacy_1k = 0.0;
  for (const int bidders : sizes) {
    const std::string label =
        bidders == 1000 ? "1k" : (bidders == 10000 ? "10k" : "100");
    const int bid_ops = smoke ? 20'000 : 200'000;

    World world(bidders);
    const double setbid_ns = MeasureSetBidNs(world, bidders, bid_ops);
    const double tick_ns = MeasureIncrementalTickNs(world, ticks);
    const double legacy_ns = MeasureLegacyTickNs(bidders, ticks);

    results.Add("setbid_ns_" + label, setbid_ns, "ns/bid");
    results.Add("tick_ns_" + label, tick_ns, "ns/tick");
    results.Add("legacy_tick_ns_" + label, legacy_ns, "ns/tick");
    std::printf("%5d bidders: %8.1f ns/bid  %10.0f ns/tick  (legacy %10.0f,"
                " %.2fx)\n",
                bidders, setbid_ns, tick_ns, legacy_ns, legacy_ns / tick_ns);
    if (bidders == 1000) {
      incremental_1k = tick_ns;
      legacy_1k = legacy_ns;
    }
  }
  if (incremental_1k > 0.0) {
    results.Add("speedup_tick_1k", legacy_1k / incremental_1k, "x");
  }
  return results.Write() ? 0 : 1;
}

}  // namespace
}  // namespace gm::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return gm::bench::Run(smoke);
}
