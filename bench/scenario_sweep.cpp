// Scenario sweep: open-loop heavy-traffic runs against the parallel
// scale backend — 100k- and 1M-user populations (smoke: 10k) with a 10x
// flash crowd mid-run and all three adversary archetypes (bid snipers,
// budget-exhaustion flooders, settlement replayers) active throughout.
//
// Per population scale the harness reports
//
//   - sustained arrivals per wall-clock second (engine loop throughput),
//   - SLO pass/fail over every epoch (bounded queues, no starvation,
//     exact conservation, all replays rejected),
//   - flash-crowd recovery time: sim-seconds from the end of the spike
//     until queue depth re-enters the pre-flash envelope,
//   - conservation (reconciler-verified, exact to the micro-dollar),
//   - serial vs 8-thread determinism: the scenario digest of a serial
//     run must be bit-identical to the threaded run at the same seed.
//
// Emits BENCH_scenario.json; rows without a scale prefix aggregate
// across scales (logical AND for pass/fail, minimum for throughput) so
// CI can validate one schema regardless of mode.
//
// Usage: scenario_sweep [--smoke]   (--smoke: one 10k-user scale)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/grid_market.hpp"
#include "experiment_common.hpp"
#include "scenario/engine.hpp"
#include "scenario/parallel_backend.hpp"
#include "sim/time.hpp"

namespace gm::bench {
namespace {

struct SweepParams {
  std::vector<std::uint64_t> populations = {100'000, 1'000'000};
  int epochs = 8;
  sim::SimDuration epoch_duration = 2 * sim::kMinute;
  double base_arrivals_per_sec = 8.0;
  // The flash must start after the flood adversary's backlog saturates
  // (hostile jobs live 5 sim-minutes, so the queue baseline climbs until
  // then): recovery is measured against the pre-flash envelope, which
  // has to be a steady state, not a still-rising ramp.
  sim::SimTime flash_start = 10 * sim::kMinute;
  sim::SimDuration flash_duration = sim::kMinute;
  int hosts = 16;
  int bank_shards = 8;
};

SweepParams SmokeParams() {
  SweepParams params;
  params.populations = {10'000};
  params.epochs = 8;
  params.epoch_duration = sim::kMinute;
  params.base_arrivals_per_sec = 2.0;
  params.flash_start = 6 * sim::kMinute;
  params.flash_duration = 30 * sim::kSecond;
  params.hosts = 4;
  params.bank_shards = 4;
  return params;
}

scenario::ScenarioConfig MakeScenario(const SweepParams& params,
                                      std::uint64_t users) {
  scenario::ScenarioConfig config;
  config.seed = 20060619;  // HPDC'06
  config.epochs = params.epochs;
  config.epoch_duration = params.epoch_duration;

  config.traffic.users = users;
  config.traffic.base_arrivals_per_sec = params.base_arrivals_per_sec;
  config.traffic.flash_start = params.flash_start;
  config.traffic.flash_duration = params.flash_duration;
  config.traffic.flash_multiplier = 10.0;

  config.adversary.snipers = 64;
  config.adversary.snipe_rate_per_sec = 1.0;
  config.adversary.flood_rate_per_sec = 2.0;
  config.adversary.replay_rate_per_sec = 0.5;

  // Wall-clock settlement latency is reported, never enforced here: the
  // sweep's pass/fail must be identical on every machine.
  config.slo.enforce_settle_p99 = false;
  config.slo.max_queue_depth = 100'000;
  return config;
}

GridMarket::Config MakeGrid(const SweepParams& params, std::uint64_t seed) {
  GridMarket::Config config;
  config.hosts = params.hosts;
  config.cpus_per_host = 2;
  config.bank_shards = params.bank_shards;
  config.seed = seed;
  // The settle-latency histogram behind the p99 row needs telemetry.
  config.telemetry.enabled = true;
  return config;
}

struct ScaleOutcome {
  double arrivals_per_sec = 0.0;
  bool slo_pass = false;
  bool conserved = false;
  bool bit_identical = false;
  double flash_recovery_s = -1.0;
  double settle_p99_ns = 0.0;
};

ScaleOutcome RunScale(const SweepParams& params, std::uint64_t users) {
  const scenario::ScenarioConfig config = MakeScenario(params, users);
  const scenario::ScenarioEngine engine(config);

  scenario::ParallelScenarioBackend::Options threaded;
  threaded.threads = 8;
  GridMarket parallel_grid(MakeGrid(params, config.seed));
  scenario::ParallelScenarioBackend parallel_backend(parallel_grid, config,
                                                     threaded);
  const scenario::ScenarioResult threaded_result =
      engine.Run(parallel_backend);

  scenario::ParallelScenarioBackend::Options serial;
  serial.serial = true;
  GridMarket serial_grid(MakeGrid(params, config.seed));
  scenario::ParallelScenarioBackend serial_backend(serial_grid, config,
                                                   serial);
  const scenario::ScenarioResult serial_result = engine.Run(serial_backend);

  ScaleOutcome outcome;
  outcome.arrivals_per_sec = threaded_result.ArrivalsPerWallSec();
  outcome.slo_pass = threaded_result.slo.passed && serial_result.slo.passed;
  outcome.bit_identical =
      threaded_result.digest == serial_result.digest &&
      parallel_backend.LedgerHash() == serial_backend.LedgerHash();
  outcome.conserved = true;
  for (const scenario::EpochTelemetry& telem : threaded_result.epochs) {
    outcome.conserved = outcome.conserved && telem.reconciler_clean &&
                        telem.total_balance == telem.expected_total &&
                        telem.replay_attempts == telem.replays_rejected;
    outcome.settle_p99_ns =
        outcome.settle_p99_ns > telem.settle_p99_ns ? outcome.settle_p99_ns
                                                    : telem.settle_p99_ns;
  }
  if (threaded_result.flash_recovery >= 0)
    outcome.flash_recovery_s = sim::ToSeconds(threaded_result.flash_recovery);

  std::printf(
      "users=%llu arrivals/s=%.0f slo=%s conserved=%s bitident=%s "
      "recovery=%.0fs p99=%.0fns\n",
      static_cast<unsigned long long>(users), outcome.arrivals_per_sec,
      outcome.slo_pass ? "PASS" : "FAIL", outcome.conserved ? "yes" : "NO",
      outcome.bit_identical ? "yes" : "NO", outcome.flash_recovery_s,
      outcome.settle_p99_ns);
  if (!threaded_result.slo.passed)
    std::printf("threaded SLO report:\n%s\n",
                threaded_result.slo.Summary().c_str());
  if (!serial_result.slo.passed)
    std::printf("serial SLO report:\n%s\n",
                serial_result.slo.Summary().c_str());
  return outcome;
}

std::string ScaleLabel(std::uint64_t users) {
  if (users % 1'000'000 == 0)
    return "users_" + std::to_string(users / 1'000'000) + "m";
  return "users_" + std::to_string(users / 1'000) + "k";
}

int Run(bool smoke) {
  const SweepParams params = smoke ? SmokeParams() : SweepParams();
  BenchResultFile results("scenario");

  double min_arrivals_per_sec = -1.0;
  bool all_slo = true;
  bool all_conserved = true;
  bool all_bitident = true;
  double worst_recovery_s = -1.0;

  for (const std::uint64_t users : params.populations) {
    const ScaleOutcome outcome = RunScale(params, users);
    const std::string label = ScaleLabel(users);
    results.Add(label + "_arrivals_per_sec", outcome.arrivals_per_sec,
                "arrivals/s");
    results.Add(label + "_slo_pass", outcome.slo_pass ? 1 : 0, "bool");
    results.Add(label + "_conserved", outcome.conserved ? 1 : 0, "bool");
    results.Add(label + "_serial_parallel_bitidentical",
                outcome.bit_identical ? 1 : 0, "bool");
    results.Add(label + "_flash_recovery_s", outcome.flash_recovery_s, "s");
    results.Add(label + "_settle_p99_ns", outcome.settle_p99_ns, "ns");

    min_arrivals_per_sec =
        min_arrivals_per_sec < 0.0
            ? outcome.arrivals_per_sec
            : std::min(min_arrivals_per_sec, outcome.arrivals_per_sec);
    all_slo = all_slo && outcome.slo_pass;
    all_conserved = all_conserved && outcome.conserved;
    all_bitident = all_bitident && outcome.bit_identical;
    worst_recovery_s = std::max(worst_recovery_s, outcome.flash_recovery_s);
  }

  // Aggregate rows: one stable schema for CI across smoke/full modes.
  results.Add("arrivals_per_sec", min_arrivals_per_sec, "arrivals/s");
  results.Add("slo_pass", all_slo ? 1 : 0, "bool");
  results.Add("conserved", all_conserved ? 1 : 0, "bool");
  results.Add("serial_parallel_bitidentical", all_bitident ? 1 : 0, "bool");
  results.Add("flash_recovery_s", worst_recovery_s, "s");

  if (!results.Write()) return 1;
  return (all_slo && all_conserved && all_bitident) ? 0 : 1;
}

}  // namespace
}  // namespace gm::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  return gm::bench::Run(smoke);
}
