// Shared configuration for the Table 1 / Table 2 reproduction harnesses:
// the paper's testbed (Section 5.2) — 30 dual-processor hosts from a
// heterogeneous pool, five users running the proteome scan on up to 15
// nodes each, one VM per user per host, staggered submissions.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "workload/experiment.hpp"

namespace gm::bench {

/// Collects benchmark metrics and writes them as a BENCH_<name>.json
/// result file:
///   {"benchmark": "<name>", "results": [{"name": ..., "value": ...,
///    "unit": ...}, ...]}
/// so harness outputs are diffable across runs and machines.
class BenchResultFile {
 public:
  explicit BenchResultFile(std::string benchmark)
      : benchmark_(std::move(benchmark)) {}

  void Add(const std::string& name, double value, const std::string& unit) {
    rows_.push_back({name, value, unit});
  }

  /// Write BENCH_<benchmark>.json into `dir` (default: current directory).
  bool Write(const std::string& dir = ".") const {
    const std::string path = dir + "/BENCH_" + benchmark_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"benchmark\": \"%s\",\n  \"results\": [\n",
                 benchmark_.c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"value\": %.6g, \"unit\": "
                   "\"%s\"}%s\n",
                   rows_[i].name.c_str(), rows_[i].value,
                   rows_[i].unit.c_str(), i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  struct Row {
    std::string name;
    double value;
    std::string unit;
  };
  std::string benchmark_;
  std::vector<Row> rows_;
};

inline workload::BestResponseExperimentConfig PaperTestbed(
    std::vector<Money> budgets, double wall_minutes) {
  workload::BestResponseExperimentConfig config;
  config.grid.hosts = 30;
  config.grid.cpus_per_host = 2;
  config.grid.cycles_per_cpu = GHz(3.0);
  config.grid.heterogeneity = 0.3;  // mixed HP/Intel/SICS machines
  config.grid.virtualization_overhead = 0.03;
  config.grid.vm_boot_time = sim::Seconds(30);
  config.grid.max_vms_per_host = 15;
  config.grid.seed = 20060619;  // HPDC'06
  config.budgets = std::move(budgets);
  config.job.nodes = 15;
  config.job.chunks = 30;
  config.job.chunk_cpu_minutes = 212.0;
  config.job.wall_time_minutes = wall_minutes;
  config.job.job_name = "proteome-scan";
  config.stagger = sim::Minutes(15);  // sequential launch delay
  config.horizon = sim::Hours(48);
  // The testbed is a live shared cluster: other tenants' standing bids
  // keep prices heterogeneous, as in the real deployment.
  config.background.loaded_host_fraction = 0.8;
  config.background.min_rate_per_hour = 0.5;
  config.background.max_rate_per_hour = 25.0;
  config.background.seed = 7;
  return config;
}

inline void PrintOutcomes(const std::vector<workload::UserOutcome>& outcomes) {
  std::printf("%-8s %10s %9s %10s %18s %6s %9s %10s\n", "User",
              "Budget($)", "Time(h)", "Cost($/h)", "Latency(min/job)",
              "Nodes", "Spent($)", "State");
  for (const workload::UserOutcome& outcome : outcomes) {
    std::printf("%-8s %10.0f %9.2f %10.2f %18.2f %6d %9.2f %10s\n",
                outcome.user.c_str(), outcome.budget_dollars,
                outcome.time_hours, outcome.cost_per_hour,
                outcome.latency_minutes, outcome.nodes,
                outcome.spent_dollars, grid::JobStateName(outcome.state));
  }
}

}  // namespace gm::bench
