// Figure 7 reproduction: window approximation of Normal, Exponential and
// Beta distributions.
//
// Each distribution is sampled through the dual-array slot table with a
// time lag of half the window (the point of maximum noise from
// out-of-window data, per the paper): the first half-window carries
// uniform noise, the measured window carries the target distribution.
// We print approximated vs measured slot proportions and the total
// variation distance; the approximation should track the measured
// distribution closely.
#include <algorithm>
#include <cstdio>
#include <functional>

#include "common/rng.hpp"
#include "math/distributions.hpp"
#include "math/histogram.hpp"
#include "market/slot_table.hpp"

namespace {

using namespace gm;

struct Case {
  const char* name;
  std::function<double(Rng&)> sample;
};

double RunCase(const Case& test_case, std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t window = 400;
  const std::size_t slots = 20;
  market::SlotTable table(window, slots, 1.0);
  math::Histogram measured(0.0, 1.0, slots);

  // Lag of half a window filled with uniform noise (out-of-window data).
  for (std::size_t i = 0; i < window / 2; ++i) table.Add(rng.NextDouble());
  // One full window of the target distribution; the measured histogram
  // sees exactly these samples.
  for (std::size_t i = 0; i < window; ++i) {
    const double x = std::clamp(test_case.sample(rng), 0.0, 0.999999);
    table.Add(x);
    measured.Add(x);
  }

  const auto approx = table.Proportions();
  std::printf("\n--- %s ---\n", test_case.name);
  std::printf("%-16s %12s %12s\n", "bracket", "approx", "measured");
  double tv = 0.0;
  for (std::size_t j = 0; j < slots; ++j) {
    // Table may have expanded if a sample hit exactly the top; with the
    // clamp above it keeps the [0,1) geometry.
    const double measured_p = measured.Proportion(j);
    std::printf("[%4.2f, %4.2f)     %12.4f %12.4f\n",
                table.slot_lower(j), table.slot_lower(j) + table.slot_width(),
                approx[j], measured_p);
    tv += std::abs(approx[j] - measured_p);
  }
  tv *= 0.5;
  std::printf("total variation distance: %.4f\n", tv);
  return tv;
}

}  // namespace

int main() {
  std::printf("=== Figure 7: window approximation of distributions ===\n");
  std::printf("window n=400 snapshots, lag n/2 of uniform noise\n");

  math::NormalSampler normal(0.5, 0.15);
  math::ExponentialSampler exponential(2.0);
  math::BetaSampler beta(5.0, 1.0);
  const Case cases[] = {
      {"Normal(0.5, 0.15)", [&](Rng& rng) { return normal.Sample(rng); }},
      {"Exponential(2)", [&](Rng& rng) { return exponential.Sample(rng); }},
      {"Beta(5, 1)", [&](Rng& rng) { return beta.Sample(rng); }},
  };
  bool all_close = true;
  std::uint64_t seed = 100;
  for (const Case& test_case : cases) {
    const double tv = RunCase(test_case, seed++);
    // The paper: "in general the approximations followed the actual
    // distributions closely".
    if (tv > 0.25) all_close = false;
  }
  std::printf("\n(paper: approximations follow the actual distributions"
              " closely; small-sigma normals may shift slightly)\n");
  return all_close ? 0 : 2;
}
