// Ablation benchmark for the design choices DESIGN.md calls out.
//
// Runs the same three-user contended workload under four scheduler
// variants and prints turnaround/cost/completion so the contribution of
// each mechanism is visible:
//   baseline     — utility-ranked selection, speculation, adaptive rebid,
//                  work-conserving hosts (the shipped configuration)
//   bid-ranked   — hosts selected by bid size (the intuitive-but-wrong
//                  policy: drops nearly-free idle hosts)
//   no-spec      — no speculative straggler re-execution
//   static-bids  — no adaptive re-bidding (budget/deadline rates stand)
//   no-workcons  — hosts waste capacity freed by vCPU caps
#include <cstdio>

#include "workload/experiment.hpp"

namespace {

using namespace gm;

struct VariantResult {
  std::string name;
  double mean_time_hours = 0.0;
  double mean_cost_per_hour = 0.0;
  double mean_latency_min = 0.0;
  int finished = 0;
};

VariantResult RunVariant(const std::string& name,
                         const workload::BestResponseExperimentConfig& base) {
  workload::BestResponseExperiment experiment(base);
  const auto outcomes = experiment.Run();
  VariantResult result;
  result.name = name;
  if (!outcomes.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", name.c_str(),
                 outcomes.status().ToString().c_str());
    return result;
  }
  for (const workload::UserOutcome& outcome : *outcomes) {
    result.mean_time_hours += outcome.time_hours / outcomes->size();
    result.mean_cost_per_hour += outcome.cost_per_hour / outcomes->size();
    result.mean_latency_min += outcome.latency_minutes / outcomes->size();
    if (outcome.state == grid::JobState::kFinished) ++result.finished;
  }
  return result;
}

}  // namespace

int main() {
  workload::BestResponseExperimentConfig base;
  base.grid.hosts = 12;
  base.grid.cpus_per_host = 2;
  base.grid.heterogeneity = 0.3;
  base.grid.seed = 5;
  base.budgets = {Money::Dollars(60), Money::Dollars(60),
                  Money::Dollars(60)};
  base.job.nodes = 6;
  base.job.chunks = 18;
  base.job.chunk_cpu_minutes = 60.0;
  base.job.wall_time_minutes = 6.0 * 60.0;
  base.stagger = sim::Minutes(5);
  base.horizon = sim::Hours(36);
  base.background.loaded_host_fraction = 0.5;
  base.background.min_rate_per_hour = 0.5;
  base.background.max_rate_per_hour = 10.0;

  std::vector<VariantResult> results;
  results.push_back(RunVariant("baseline", base));

  {
    auto variant = base;
    variant.grid.plugin.host_selection =
        grid::PluginConfig::HostSelection::kBidSize;
    results.push_back(RunVariant("bid-ranked", variant));
  }
  {
    auto variant = base;
    variant.grid.plugin.speculative_execution = false;
    results.push_back(RunVariant("no-spec", variant));
  }
  {
    auto variant = base;
    variant.grid.plugin.rebid_period = 0;
    results.push_back(RunVariant("static-bids", variant));
  }
  {
    auto variant = base;
    variant.grid.work_conserving = false;
    results.push_back(RunVariant("no-workcons", variant));
  }

  std::printf("=== Scheduler design ablation (3 users, 12 hosts, shared"
              " market) ===\n\n");
  std::printf("%-12s %10s %12s %14s %10s\n", "variant", "time(h)",
              "cost($/h)", "latency(min)", "finished");
  for (const VariantResult& result : results) {
    std::printf("%-12s %10.2f %12.2f %14.1f %7d/3\n", result.name.c_str(),
                result.mean_time_hours, result.mean_cost_per_hour,
                result.mean_latency_min, result.finished);
  }
  std::printf(
      "\nreading: 'bid-ranked' chases contested hosts (higher cost and/or\n"
      "latency); 'no-spec' strands chunks on swamped hosts; 'static-bids'\n"
      "overspends; 'no-workcons' wastes capped capacity (slower).\n");
  return 0;
}
