// Figure 3 reproduction: normal-distribution price prediction with
// different guarantee levels.
//
// A host's spot market runs for a simulated day under randomized load
// (background jobs with normally distributed budgets, as in the paper's
// prediction experiments). The auctioneer's day-window moments then feed
// the stateless normal model; we print guaranteed CPU capacity versus
// budget ($/day) at the paper's 80%/90%/99% guarantee levels, plus the
// recommended budget where each curve flattens out.
//
// Paper example reading: "a user who wants 90% guarantee that the CPU
// performance will be greater than 1.6GHz should spend $22/day"; spending
// beyond roughly $60/day buys almost nothing more.
#include <cstdio>

#include "core/grid_market.hpp"
#include "math/distributions.hpp"
#include "predict/empirical_model.hpp"

namespace {

using namespace gm;

// One day of randomized background load against a small cluster.
void GenerateBackgroundLoad(GridMarket& grid, Rng& rng) {
  for (int u = 0; u < 12; ++u) {
    const std::string name = "bg" + std::to_string(u);
    GM_ASSERT(grid.RegisterUser(name, Money::Dollars(1e7)).ok(), "register failed");
  }
  math::NormalSampler budget_sampler(60.0, 20.0);
  for (sim::SimTime t = 0; t < sim::Hours(24); t += sim::Minutes(20)) {
    grid.RunUntil(t);
    const std::string user = "bg" + std::to_string(rng.NextBelow(12));
    grid::JobDescription job;
    job.executable = "/bin/background";
    job.job_name = "bg-load";
    job.count = 2;
    job.chunks = 4;
    job.cpu_time_minutes = 15.0 + rng.Uniform(0.0, 30.0);
    job.wall_time_minutes = 120.0;
    const double budget = std::max(5.0, budget_sampler.Sample(rng));
    (void)grid.SubmitJob(user, job, Money::Dollars(budget));
  }
  grid.RunUntil(sim::Hours(25));
}

}  // namespace

int main() {
  GridMarket::Config config;
  config.hosts = 4;
  config.heterogeneity = 0.0;
  config.seed = 3;
  GridMarket grid(config);
  Rng rng(17);
  GenerateBackgroundLoad(grid, rng);

  const auto stats = grid.HostPriceStats("day");
  GM_ASSERT(stats.ok(), "host stats unavailable");
  const predict::HostPriceStats& host = stats->front();
  std::printf("=== Figure 3: Normal distribution prediction ===\n");
  std::printf("host %s: capacity %.0f MHz, day-window price mu=%.6f $/h, "
              "sigma=%.6f $/h\n\n",
              host.host_id.c_str(), host.capacity / 1e6,
              host.mean_price * 3600, host.stddev_price * 3600);

  predict::NormalPricePredictor predictor(host);
  const double guarantees[] = {0.80, 0.90, 0.99};
  std::printf("%14s", "Budget($/day)");
  for (const double p : guarantees)
    std::printf("  %12s%2.0f%%", "CPU(MHz)@", p * 100);
  std::printf("\n");
  const auto curves = {predictor.GuaranteeCurve(0.80, 100.0, 21),
                       predictor.GuaranteeCurve(0.90, 100.0, 21),
                       predictor.GuaranteeCurve(0.99, 100.0, 21)};
  for (std::size_t i = 0; i < 21; ++i) {
    bool first = true;
    for (const auto& curve : curves) {
      if (first) std::printf("%14.1f", curve[i].budget_per_day);
      first = false;
      std::printf("  %15.1f", curve[i].capacity / 1e6);
    }
    std::printf("\n");
  }

  std::printf("\nRecommended budget (5%% marginal-capacity knee):\n");
  for (const double p : guarantees) {
    const double knee_rate = predictor.RecommendedBudget(p);
    std::printf("  %2.0f%% guarantee: $%.2f/day  -> %.1f MHz\n", p * 100,
                knee_rate * 86400.0,
                predictor.CapacityAtBudget(knee_rate, p) / 1e6);
  }
  // Extension (paper Section 7 future work): the same 90% curve from the
  // distribution-free empirical model, straight from the slot table.
  const auto table = grid.auctioneer(0).Distribution("day");
  if (table.ok()) {
    const auto empirical = predict::EmpiricalPricePredictor::FromSlotTable(
        host.host_id, host.capacity,
        grid.auctioneer(0).physical_host().TotalCapacity(), **table);
    if (empirical.ok()) {
      std::printf("\nempirical (distribution-free) 90%% curve vs normal:\n");
      std::printf("%14s %16s %16s\n", "Budget($/day)", "empirical(MHz)",
                  "normal(MHz)");
      for (double budget_per_day = 10.0; budget_per_day <= 100.0;
           budget_per_day += 30.0) {
        const double rate = budget_per_day / 86400.0;
        std::printf("%14.1f %16.1f %16.1f\n", budget_per_day,
                    empirical->CapacityAtBudget(rate, 0.9) / 1e6,
                    predictor.CapacityAtBudget(rate, 0.9) / 1e6);
      }
    }
  }

  // The paper's inverse question: budget for 1.6 GHz at 90%.
  const auto budget_16 = predictor.BudgetForCapacity(1.6e9, 0.90);
  if (budget_16.ok()) {
    std::printf("\nBudget to hold 1.6 GHz with 90%% guarantee: $%.2f/day\n",
                *budget_16 * 86400.0);
  } else {
    std::printf("\n1.6 GHz exceeds this host's deliverable capacity (%s)\n",
                budget_16.status().ToString().c_str());
  }
  return 0;
}
