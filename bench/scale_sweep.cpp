// Federation scale sweep: a 10k-host grid charging a sharded bank
// holding 1M funded accounts (smoke: 100 hosts / 10k accounts), with
// per-shard durable WALs. Measures
//
//   - account funding throughput (journaled creates per second),
//   - allocation throughput: auction ticks per wall second with every
//     host charging the federation through the parallel merge,
//   - p99 job-submit latency: the user-pays-host settlement a submit
//     performs, sampled through a telemetry LatencyHistogram,
//
// then crashes one bank shard, replays its WAL, and requires the
// recovered federation ledger hash to be bit-identical and every minted
// micro-dollar conserved (rows crash_recover_bitidentical / conserved
// must be 1). Emits BENCH_scale.json.
//
// Usage: scale_sweep [--smoke]   (--smoke: 100 hosts, 10k accounts)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bank/federation/reconciler.hpp"
#include "bank/federation/router.hpp"
#include "bank/federation/shard.hpp"
#include "common/rng.hpp"
#include "crypto/prime.hpp"
#include "crypto/token.hpp"
#include "experiment_common.hpp"
#include "host/host.hpp"
#include "host/parallel_runner.hpp"
#include "market/auctioneer.hpp"
#include "sim/kernel.hpp"
#include "store/store.hpp"
#include "telemetry/metrics.hpp"

namespace gm::bench {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

struct SweepParams {
  std::size_t hosts = 10'000;
  std::size_t accounts = 1'000'000;
  std::size_t bank_shards = 16;
  int rounds = 3;
  int submit_samples = 20'000;
};

SweepParams SmokeParams() {
  SweepParams params;
  params.hosts = 100;
  params.accounts = 10'000;
  params.bank_shards = 4;
  params.rounds = 5;
  params.submit_samples = 2'000;
  return params;
}

double ElapsedSeconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string UserAccount(std::size_t i) {
  return "user:u" + std::to_string(i);
}
std::string HostAccount(std::size_t i) {
  return "host:h" + std::to_string(i);
}

int Run(bool smoke) {
  const SweepParams params = smoke ? SmokeParams() : SweepParams();
  const fs::path dir = fs::temp_directory_path() / "gm_scale_sweep";
  fs::remove_all(dir);

  BenchResultFile results("scale");
  results.Add("hosts", static_cast<double>(params.hosts), "hosts");
  results.Add("accounts", static_cast<double>(params.accounts), "accounts");
  results.Add("bank_shards", static_cast<double>(params.bank_shards),
              "shards");

  // ------------------------------------------------------------------
  // The sharded bank: per-shard durable WALs. Snapshots stay explicit
  // (snapshot_every_records = 0) — auto-checkpointing a million-account
  // ledger mid-run would serialize the whole map on the charge path.
  std::vector<std::unique_ptr<store::DurableStore>> stores;
  std::vector<std::unique_ptr<bank::federation::BankShard>> shards;
  for (std::size_t i = 0; i < params.bank_shards; ++i) {
    auto store = store::DurableStore::Open(
        (dir / ("shard" + std::to_string(i))).string());
    if (!store.ok()) {
      std::fprintf(stderr, "store open failed: %s\n",
                   store.status().message().c_str());
      return 1;
    }
    stores.push_back(std::move(*store));
    shards.push_back(std::make_unique<bank::federation::BankShard>(i));
    shards.back()->AttachStore(stores.back().get());
  }
  std::vector<bank::federation::BankShard*> shard_ptrs;
  for (const auto& shard : shards) shard_ptrs.push_back(shard.get());
  crypto::TokenRegistry registry;
  bank::federation::FederationRouter federation(shard_ptrs, &registry);

  // Fund the account population: one journaled create+fund each.
  const Money stake = Money::Dollars(10);
  const auto fund_start = Clock::now();
  for (std::size_t i = 0; i < params.accounts; ++i) {
    if (!federation.CreateAccount(UserAccount(i), stake).ok()) std::abort();
  }
  for (std::size_t i = 0; i < params.hosts; ++i) {
    if (!federation.CreateAccount(HostAccount(i)).ok()) std::abort();
  }
  const double fund_seconds = ElapsedSeconds(fund_start);
  results.Add("account_fund_per_sec",
              static_cast<double>(params.accounts) / fund_seconds,
              "accounts/s");
  std::printf("funded %zu accounts over %zu shards in %.2f s (%.0f/s)\n",
              params.accounts, params.bank_shards, fund_seconds,
              static_cast<double>(params.accounts) / fund_seconds);

  // ------------------------------------------------------------------
  // The grid: one auctioneer per host, hour-window stats only — the
  // day/week windows would cost ~0.5 MB per host, which at 10k hosts is
  // memory the sweep does not need to answer a throughput question.
  sim::Kernel kernel;
  market::AuctioneerConfig market_config;
  market_config.stat_windows = {{"hour", 360}};

  host::ParallelRunnerConfig runner_config;
  runner_config.threads = 8;
  runner_config.seed = 20260808;
  host::ParallelRunner runner(kernel, runner_config);

  std::vector<std::unique_ptr<host::PhysicalHost>> hosts;
  std::vector<std::unique_ptr<market::Auctioneer>> auctioneers;
  hosts.reserve(params.hosts);
  auctioneers.reserve(params.hosts);
  for (std::size_t i = 0; i < params.hosts; ++i) {
    host::HostSpec spec;
    spec.id = "h" + std::to_string(i);
    hosts.push_back(std::make_unique<host::PhysicalHost>(spec));
    auctioneers.push_back(std::make_unique<market::Auctioneer>(
        *hosts.back(), kernel, market_config));
    // Every host charges the federation: debtor striped by the funding
    // account, creditor by the host account.
    runner.AddShard(auctioneers.back().get(),
                    UserAccount(i % params.accounts), HostAccount(i));
  }
  runner.SetFederation(&federation);

  const auto tick_start = Clock::now();
  const auto report = runner.Run(params.rounds);
  const double tick_seconds = ElapsedSeconds(tick_start);
  if (!report.ok()) {
    std::fprintf(stderr, "runner failed: %s\n",
                 report.status().message().c_str());
    return 1;
  }
  const double ticks_per_sec =
      static_cast<double>(report->ticks) / tick_seconds;
  results.Add("ticks_per_sec", ticks_per_sec, "ticks/s");
  results.Add("fed_ops_applied",
              static_cast<double>(report->fed_ops_applied), "ops");
  std::printf("%zu hosts x %d rounds: %.0f ticks/s (%llu federation "
              "charges, %.2f s)\n",
              params.hosts, params.rounds, ticks_per_sec,
              static_cast<unsigned long long>(report->fed_ops_applied),
              tick_seconds);
  if (report->fed_ops_failed != 0) {
    std::fprintf(stderr, "unexpected failed federation ops: %llu\n",
                 static_cast<unsigned long long>(report->fed_ops_failed));
    return 1;
  }

  // ------------------------------------------------------------------
  // Job-submit latency: a submit's payment is one user->host settlement
  // through the router (intra- or cross-shard as the stripes fall).
  telemetry::MetricsRegistry metrics;
  telemetry::LatencyHistogram* latency =
      metrics.GetHistogram("scale.submit_latency_ns");
  Rng rng(7);
  for (int i = 0; i < params.submit_samples; ++i) {
    const std::string from = UserAccount(rng.Next() % params.accounts);
    const std::string to = HostAccount(rng.Next() % params.hosts);
    const Money payment = Money::FromMicros(
        1 + static_cast<Micros>(rng.Next() % 1000));
    const auto start = Clock::now();
    const Status status = federation.Transfer(from, to, payment, i);
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        Clock::now() - start)
                        .count();
    if (!status.ok() &&
        status.code() != StatusCode::kFailedPrecondition) {
      std::fprintf(stderr, "submit transfer failed: %s\n",
                   status.message().c_str());
      return 1;
    }
    latency->Record(static_cast<std::uint64_t>(ns));
  }
  const double p50_us =
      static_cast<double>(latency->Quantile(0.50)) / 1000.0;
  const double p99_us =
      static_cast<double>(latency->Quantile(0.99)) / 1000.0;
  results.Add("submit_p50_us", p50_us, "us");
  results.Add("submit_p99_us", p99_us, "us");
  std::printf("job-submit settlement latency: p50 %.1f us  p99 %.1f us "
              "(%d samples)\n",
              p50_us, p99_us, params.submit_samples);

  // ------------------------------------------------------------------
  // Chaos acceptance: crash one shard mid-fleet, replay its WAL, and
  // require a bit-identical federation ledger and exact conservation.
  const std::string hash_before = federation.LedgerHash();
  const std::size_t victim = params.bank_shards / 2;
  shards[victim]->SimulateCrash();
  const auto recover_start = Clock::now();
  if (!shards[victim]->Restart().ok()) {
    std::fprintf(stderr, "shard %zu restart failed\n", victim);
    return 1;
  }
  const double recover_seconds = ElapsedSeconds(recover_start);
  if (!federation.ResumeSettlements(0).ok()) return 1;
  const bool bit_identical = federation.LedgerHash() == hash_before;
  const Status conserved = federation.CheckConservation();
  bank::federation::Reconciler reconciler(&federation, crypto::TestGroup(),
                                          11);
  const auto sweep = reconciler.Sweep(0);
  results.Add("shard_recover_sec", recover_seconds, "s");
  results.Add("crash_recover_bitidentical", bit_identical ? 1.0 : 0.0,
              "bool");
  results.Add("conserved",
              conserved.ok() && sweep.conserved ? 1.0 : 0.0, "bool");
  std::printf("shard %zu crash+replay: %.2f s, bit-identical=%d, "
              "conserved=%d\n",
              victim, recover_seconds, bit_identical ? 1 : 0,
              conserved.ok() && sweep.conserved ? 1 : 0);

  fs::remove_all(dir);
  if (!bit_identical || !conserved.ok() || !sweep.conserved) {
    std::fprintf(stderr, "scale sweep FAILED acceptance: %s\n",
                 conserved.ok() ? sweep.detail.c_str()
                                : conserved.message().c_str());
    return 1;
  }
  return results.Write() ? 0 : 1;
}

}  // namespace
}  // namespace gm::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return gm::bench::Run(smoke);
}
