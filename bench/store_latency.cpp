// Durable-store latency harness: WAL append throughput, full-log replay
// latency and snapshot write/load latency at ledger-like record sizes.
// Emits BENCH_store.json for cross-run comparison.
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "experiment_common.hpp"
#include "common/rng.hpp"
#include "market/price_history.hpp"
#include "store/store.hpp"

namespace gm::bench {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double ElapsedUs(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

fs::path FreshDir(const char* name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  return dir;
}

int Run() {
  constexpr int kRecords = 20000;
  constexpr std::size_t kRecordBytes = 128;  // ~ a journaled bank transfer
  BenchResultFile results("store");

  // -- WAL append --
  const fs::path wal_dir = FreshDir("gm_store_latency_wal");
  {
    auto wal = store::WriteAheadLog::Open(wal_dir.string());
    if (!wal.ok()) return 1;
    const Bytes payload(kRecordBytes, 0x5A);
    const auto start = Clock::now();
    for (int i = 0; i < kRecords; ++i) {
      if (!(*wal)->Append(payload).ok()) return 1;
    }
    const double total_us = ElapsedUs(start);
    results.Add("wal_append_latency", total_us / kRecords, "us/record");
    results.Add("wal_append_throughput",
                kRecords * kRecordBytes / total_us, "MB/s");
  }

  // -- WAL replay (cold restart: open + full scan) --
  {
    const auto start = Clock::now();
    auto wal = store::WriteAheadLog::Open(wal_dir.string());
    if (!wal.ok()) return 1;
    std::uint64_t applied = 0;
    auto stats = (*wal)->Replay(0, [&](std::uint64_t, const Bytes&) {
      ++applied;
      return Status::Ok();
    });
    const double total_us = ElapsedUs(start);
    if (!stats.ok() || applied != kRecords) return 1;
    results.Add("wal_replay_latency", total_us / 1000.0, "ms/log");
    results.Add("wal_replay_rate", applied / (total_us / 1e6), "records/s");
  }
  fs::remove_all(wal_dir);

  // -- snapshot write + load over a realistic price window --
  const fs::path snap_dir = FreshDir("gm_store_latency_snap");
  {
    auto store = store::DurableStore::Open(snap_dir.string());
    if (!store.ok()) return 1;
    market::PriceHistory history(1 << 20);
    history.AttachStore(store->get());
    Rng rng(11);
    // A week of 10-second price samples: 60480 points.
    for (int i = 0; i < 60480; ++i)
      history.Record(sim::Seconds(10 * i), rng.NextDouble());

    auto start = Clock::now();
    if (!(*store)->WriteSnapshot(history).ok()) return 1;
    results.Add("snapshot_write_latency", ElapsedUs(start) / 1000.0,
                "ms/snapshot");

    start = Clock::now();
    market::PriceHistory recovered(1 << 20);
    auto stats = (*store)->Recover(recovered);
    if (!stats.ok() || recovered.size() != history.size()) return 1;
    results.Add("snapshot_load_latency", ElapsedUs(start) / 1000.0,
                "ms/snapshot");
  }
  fs::remove_all(snap_dir);

  return results.Write() ? 0 : 1;
}

}  // namespace
}  // namespace gm::bench

int main() { return gm::bench::Run(); }
