// Figure 4 reproduction: AR(6) prediction with one-hour forecast and
// smoothing.
//
// 40 hours of spot-price history are collected from a market running a
// batch workload (sharp price drops when batches complete, the pattern
// that motivated the smoothing spline). The first 20 h fit the model, the
// last 20 h validate walk-forward one-hour-ahead forecasts with the
// paper's error metric
//     epsilon = mean(sigma_i) / mu_d.
// Paper result: AR(6)+smoothing eps = 8.96% vs naive persistence 9.44% —
// the AR model wins by a modest margin. We print both epsilons and a
// down-sampled (predicted, measured) series.
#include <cstdio>

#include "core/grid_market.hpp"
#include "predict/ar_forecaster.hpp"

namespace {

using namespace gm;

std::vector<double> CollectPriceHistory() {
  GridMarket::Config config;
  config.hosts = 3;
  config.seed = 44;
  GridMarket grid(config);
  Rng rng(5);
  for (int u = 0; u < 8; ++u) {
    GM_ASSERT(grid.RegisterUser("u" + std::to_string(u), Money::Dollars(1e8)).ok(),
              "register failed");
  }
  // Batch arrivals: every 1-3 hours a user submits a multi-chunk batch
  // that runs ~1-2 hours and then completes (price drops sharply).
  sim::SimTime t = 0;
  while (t < sim::Hours(41)) {
    grid.RunUntil(t);
    const std::string user = "u" + std::to_string(rng.NextBelow(8));
    grid::JobDescription job;
    job.executable = "/bin/batch";
    job.job_name = "batch";
    job.count = 3;
    job.chunks = 6;
    job.cpu_time_minutes = 30.0 + rng.Uniform(0.0, 60.0);
    job.wall_time_minutes = 6.0 * 60.0;
    (void)grid.SubmitJob(user, job,
                         Money::Dollars(20.0 + rng.Uniform(0.0, 60.0)));
    t += sim::Minutes(60 + static_cast<long>(rng.NextBelow(120)));
  }
  grid.RunUntil(sim::Hours(41));

  // Per-minute price samples of host 0 over the last 40 hours.
  const market::PriceHistory& history = grid.auctioneer(0).history();
  std::vector<double> series;
  const sim::SimTime start = sim::Hours(1);
  for (sim::SimTime at = start; at < sim::Hours(41); at += sim::Minutes(1)) {
    const auto window = history.PricesBetween(at - sim::Minutes(1), at);
    if (!window.empty()) series.push_back(window.back() * 1e9);  // $/s/GHz
  }
  return series;
}

}  // namespace

int main() {
  const std::vector<double> series = CollectPriceHistory();
  GM_ASSERT(series.size() > 2000, "not enough price history");
  const std::size_t split = series.size() / 2;  // 20 h fit / 20 h validate
  const std::vector<double> train(series.begin(),
                                  series.begin() +
                                      static_cast<std::ptrdiff_t>(split));

  predict::ArForecasterConfig ar_config;
  ar_config.order = 6;
  ar_config.spline_lambda = 200.0;
  const auto forecaster = predict::ArPriceForecaster::Fit(train, ar_config);
  GM_ASSERT(forecaster.ok(), "AR fit failed");

  // Walk-forward with a one-hour (60-sample) horizon; evaluate every
  // 10 minutes to keep the harness quick.
  const int horizon = 60;
  std::vector<double> ar_predictions, naive_predictions, measurements;
  for (std::size_t t = split;
       t + static_cast<std::size_t>(horizon) < series.size(); t += 10) {
    // Recent context: the trailing 6 hours.
    const std::size_t lo = t > 360 ? t - 360 : 0;
    const std::vector<double> recent(
        series.begin() + static_cast<std::ptrdiff_t>(lo),
        series.begin() + static_cast<std::ptrdiff_t>(t));
    ar_predictions.push_back(forecaster->ForecastAt(recent, horizon));
    naive_predictions.push_back(recent.back());
    measurements.push_back(series[t + static_cast<std::size_t>(horizon) - 1]);
  }
  const auto ar_eps =
      predict::PredictionEpsilon(ar_predictions, measurements);
  const auto naive_eps =
      predict::PredictionEpsilon(naive_predictions, measurements);
  GM_ASSERT(ar_eps.ok() && naive_eps.ok(), "epsilon failed");

  std::printf("=== Figure 4: AR(6) one-hour-ahead price prediction ===\n");
  std::printf("training samples: %zu (20 h), validation points: %zu\n",
              train.size(), measurements.size());
  std::printf("\n%-36s %8s\n", "model", "epsilon");
  std::printf("%-36s %7.2f%%\n", "AR(6) + cubic smoothing spline",
              *ar_eps * 100.0);
  std::printf("%-36s %7.2f%%\n", "naive (price stays at current)",
              *naive_eps * 100.0);
  std::printf("(paper: 8.96%% vs 9.44%% — AR should be lower)\n");

  std::printf("\nvalidation series (every ~100 min): measured vs predicted"
              " ($/h per GHz)\n");
  std::printf("%6s %12s %12s\n", "point", "measured", "AR-predicted");
  for (std::size_t i = 0; i < measurements.size(); i += 10) {
    std::printf("%6zu %12.5f %12.5f\n", i, measurements[i] * 3600.0,
                ar_predictions[i] * 3600.0);
  }
  return *ar_eps < *naive_eps ? 0 : 2;
}
