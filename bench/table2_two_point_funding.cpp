// Table 2 reproduction: two-point distribution of funds.
//
// Users fund their jobs with 100, 100, 500, 500, 500 dollars under a
// 5.5-hour deadline. The highly funded jobs force the earlier, cheaper
// jobs to shrink: they finish faster and pay a higher $/h rate.
//
// Paper's measured rows (HPDC'06, Table 2):
//   Users 1-2 ($100): Time 7.07 h  Cost  5.10 $/h  Latency 29.31  Nodes 14.5
//   Users 3-5 ($500): Time 4.16 h  Cost 10.90 $/h  Latency 23.46  Nodes 11
// Reproduction target: the $500 group completes sooner with lower chunk
// latency while paying a substantially higher cost rate.
#include <cstdio>

#include "experiment_common.hpp"

int main() {
  using namespace gm;
  auto config = bench::PaperTestbed(
      /*budgets=*/{Money::Dollars(100), Money::Dollars(100),
                   Money::Dollars(500), Money::Dollars(500),
                   Money::Dollars(500)},
      /*wall_minutes=*/5.5 * 60.0);
  // The $100 jobs may legitimately outlive the 5.5 h deadline in this
  // contention regime; give the simulation room to observe it.
  config.horizon = sim::Hours(24);
  workload::BestResponseExperiment experiment(std::move(config));
  const auto outcomes = experiment.Run();
  if (!outcomes.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 outcomes.status().ToString().c_str());
    return 1;
  }

  std::printf("=== Table 2: Two-Point Distribution of Funds ===\n");
  std::printf("(paper: $500 users finish in 4.16 h at 10.9 $/h vs"
              " $100 users 7.07 h at 5.1 $/h)\n\n");
  bench::PrintOutcomes(*outcomes);
  std::printf("\n");
  const std::vector<workload::GroupSummary> groups{
      workload::BestResponseExperiment::Summarize(*outcomes, 0, 1,
                                                  "1-2($100)"),
      workload::BestResponseExperiment::Summarize(*outcomes, 2, 4,
                                                  "3-5($500)"),
  };
  std::printf("%s", workload::BestResponseExperiment::RenderTable(groups).c_str());
  return 0;
}
