// Telemetry overhead harness: the same hot loops (auction ticks, WAL
// appends) timed bare, with telemetry attached, and with telemetry
// detached again. Emits BENCH_telemetry.json. The contract is that an
// attached registry costs < 5% on the market's hottest path and that the
// disabled configuration (no pointer attached — exactly what
// Config.telemetry.enabled=false produces) costs nothing at all.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "experiment_common.hpp"
#include "market/auctioneer.hpp"
#include "store/store.hpp"
#include "telemetry/telemetry.hpp"

namespace gm::bench {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double ElapsedUs(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

struct TickFixture {
  sim::Kernel kernel;
  host::PhysicalHost host;
  market::Auctioneer auctioneer;

  explicit TickFixture(int users)
      : host(MakeSpec(users)), auctioneer(host, kernel) {
    for (int u = 0; u < users; ++u) {
      const std::string user = "u" + std::to_string(u);
      (void)auctioneer.OpenAccount(user);
      (void)auctioneer.Fund(user, Money::Dollars(1e9));
      (void)auctioneer.SetBid(user, Rate::MicrosPerSec(1000 + u),
                            sim::Hours(1e6));
      auto vm = auctioneer.AcquireVm(user);
      if (vm.ok()) (*vm)->Enqueue({1, 1e18, nullptr});
    }
  }

  static host::HostSpec MakeSpec(int users) {
    host::HostSpec spec;
    spec.id = "bench";
    spec.cpus = 2;
    spec.cycles_per_cpu = GHz(3.0);
    spec.vm_boot_time = 0;
    spec.max_vms = users;
    return spec;
  }
};

/// Best-of-3 timing of `ticks` auction ticks, in ns per tick. The kernel
/// clock does not advance between calls (dt = 0 charging), which isolates
/// the per-tick bookkeeping — price recording, window moments and the
/// telemetry branch — from the charging arithmetic.
double TimeTicks(market::Auctioneer& auctioneer, int ticks) {
  double best_us = 1e300;
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto start = Clock::now();
    for (int i = 0; i < ticks; ++i) auctioneer.Tick();
    best_us = std::min(best_us, ElapsedUs(start));
  }
  return best_us * 1000.0 / ticks;
}

/// One round of `records` appends into a fresh store, in µs.
/// Auto-checkpointing is pushed out of reach so the loop times nothing
/// but the journaled append (DurableStore::Append is the instrumented
/// path — the histogram wraps the WAL write — so time it rather than the
/// raw WAL).
double AppendRound(const char* dir_name, telemetry::Telemetry* telemetry,
                   const Bytes& payload, int records) {
  const fs::path dir = fs::temp_directory_path() / dir_name;
  fs::remove_all(dir);
  store::StoreOptions options;
  options.snapshot_every_records = 1ULL << 40;
  auto store = store::DurableStore::Open(dir.string(), options);
  if (!store.ok()) return -1.0;
  if (telemetry != nullptr) (*store)->AttachTelemetry(telemetry, "bench");
  const auto start = Clock::now();
  for (int i = 0; i < records; ++i) {
    if (!(*store)->Append(payload).ok()) return -1.0;
  }
  const double us = ElapsedUs(start);
  store->reset();
  fs::remove_all(dir);
  return us;
}

int Run() {
  constexpr int kUsers = 15;
  constexpr int kTicks = 20000;
  BenchResultFile results("telemetry");
  telemetry::Telemetry telemetry(1 << 16);

  // -- auction tick: bare vs attached vs detached-again --
  {
    TickFixture bare(kUsers);
    const double bare_ns = TimeTicks(bare.auctioneer, kTicks);

    TickFixture attached(kUsers);
    attached.auctioneer.AttachTelemetry(&telemetry);
    // A traced account exercises the per-account instant path too.
    const telemetry::TraceId trace = telemetry.tracer().NewTrace();
    (void)attached.auctioneer.SetAccountTrace("u0", trace);
    const double attached_ns = TimeTicks(attached.auctioneer, kTicks);

    TickFixture detached(kUsers);
    detached.auctioneer.AttachTelemetry(&telemetry);
    detached.auctioneer.AttachTelemetry(nullptr);
    const double detached_ns = TimeTicks(detached.auctioneer, kTicks);

    const double enabled_pct = 100.0 * (attached_ns - bare_ns) / bare_ns;
    const double disabled_pct = 100.0 * (detached_ns - bare_ns) / bare_ns;
    results.Add("auction_tick_bare", bare_ns, "ns/tick");
    results.Add("auction_tick_telemetry", attached_ns, "ns/tick");
    results.Add("auction_tick_detached", detached_ns, "ns/tick");
    results.Add("auction_tick_overhead_enabled", enabled_pct, "%");
    results.Add("auction_tick_overhead_disabled", disabled_pct, "%");
    std::printf("auction tick: bare %.1f ns, telemetry %.1f ns (%.2f%%), "
                "detached %.1f ns (%.2f%%)\n",
                bare_ns, attached_ns, enabled_pct, detached_ns, disabled_pct);
    std::printf("%s: enabled overhead %s 5%%\n",
                enabled_pct < 5.0 ? "PASS" : "WARN",
                enabled_pct < 5.0 ? "<" : ">=");
  }

  // -- WAL append: bare vs attached wall-clock histogram --
  {
    constexpr int kRecords = 20000;
    const Bytes payload(128, 0x5A);
    // Interleave bare/telemetry rounds and keep the best of each, so
    // filesystem drift (page-cache state, background writeback) hits
    // both sides alike instead of biasing whichever ran second.
    double bare_us = 1e300;
    double telem_us = 1e300;
    for (int repeat = 0; repeat < 5; ++repeat) {
      const double bare =
          AppendRound("gm_telem_wal_bare", nullptr, payload, kRecords);
      const double telem =
          AppendRound("gm_telem_wal_on", &telemetry, payload, kRecords);
      if (bare < 0 || telem < 0) return 1;
      bare_us = std::min(bare_us, bare);
      telem_us = std::min(telem_us, telem);
    }
    const double bare_ns = bare_us * 1000.0 / kRecords;
    const double telem_ns = telem_us * 1000.0 / kRecords;

    const double pct = 100.0 * (telem_ns - bare_ns) / bare_ns;
    results.Add("wal_append_bare", bare_ns, "ns/record");
    results.Add("wal_append_telemetry", telem_ns, "ns/record");
    results.Add("wal_append_overhead_enabled", pct, "%");
    std::printf("wal append: bare %.0f ns, telemetry %.0f ns (%.2f%%)\n",
                bare_ns, telem_ns, pct);
    std::printf("%s: enabled overhead %s 5%%\n", pct < 5.0 ? "PASS" : "WARN",
                pct < 5.0 ? "<" : ">=");
  }

  // -- raw registry primitives, for scale --
  {
    constexpr int kOps = 1000000;
    telemetry::LatencyHistogram* hist =
        telemetry.metrics().GetHistogram("bench.record_cost");
    auto start = Clock::now();
    for (int i = 0; i < kOps; ++i) hist->Record(static_cast<std::uint64_t>(i));
    results.Add("histogram_record", ElapsedUs(start) * 1000.0 / kOps, "ns/op");

    telemetry::Counter* counter =
        telemetry.metrics().GetCounter("bench.inc_cost");
    start = Clock::now();
    for (int i = 0; i < kOps; ++i) counter->Inc();
    results.Add("counter_inc", ElapsedUs(start) * 1000.0 / kOps, "ns/op");
  }

  return results.Write() ? 0 : 1;
}

}  // namespace
}  // namespace gm::bench

int main() { return gm::bench::Run(); }
