#include "net/fault.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/bus.hpp"

namespace gm::net {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  FaultTest() : bus_(kernel_, LatencyModel{1000, 0, 0.0}, 17) {}

  void RegisterCounter(const std::string& name, int* counter) {
    ASSERT_TRUE(bus_.RegisterEndpoint(name, [counter](const Envelope&) {
                     ++*counter;
                   }).ok());
  }

  void Send(const std::string& from, const std::string& to) {
    Envelope e;
    e.source = from;
    e.destination = to;
    e.payload = {1, 2, 3};
    bus_.Send(e);
  }

  sim::Kernel kernel_;
  MessageBus bus_;
};

TEST_F(FaultTest, PartitionBlocksBothDirections) {
  int a_received = 0;
  int b_received = 0;
  RegisterCounter("a", &a_received);
  RegisterCounter("b", &b_received);
  bus_.PartitionLink("a", "b");
  EXPECT_TRUE(bus_.LinkBlocked("a", "b"));
  EXPECT_TRUE(bus_.LinkBlocked("b", "a"));
  Send("a", "b");
  Send("b", "a");
  kernel_.Run();
  EXPECT_EQ(a_received, 0);
  EXPECT_EQ(b_received, 0);
  EXPECT_EQ(bus_.stats().dropped, 2u);
  EXPECT_GT(bus_.stats().bytes_dropped, 0u);
  EXPECT_EQ(bus_.stats().bytes_sent, 0u);  // nothing entered the wire
  EXPECT_TRUE(bus_.stats().Reconciles());
}

TEST_F(FaultTest, PartitionDoesNotAffectOtherLinks) {
  int b_received = 0;
  int c_received = 0;
  RegisterCounter("b", &b_received);
  RegisterCounter("c", &c_received);
  bus_.PartitionLink("a", "b");
  Send("a", "c");  // unrelated link stays up
  Send("c", "b");  // b is reachable from everyone except a
  kernel_.Run();
  EXPECT_EQ(c_received, 1);
  EXPECT_EQ(b_received, 1);
}

TEST_F(FaultTest, HealRestoresTraffic) {
  int received = 0;
  RegisterCounter("b", &received);
  bus_.PartitionLink("a", "b");
  Send("a", "b");
  bus_.HealLink("a", "b");
  EXPECT_FALSE(bus_.LinkBlocked("a", "b"));
  Send("a", "b");
  kernel_.Run();
  EXPECT_EQ(received, 1);  // only the post-heal message arrives
  EXPECT_TRUE(bus_.stats().Reconciles());
}

TEST_F(FaultTest, CrashedEndpointIsUnreachableUntilRestart) {
  int received = 0;
  RegisterCounter("svc", &received);
  Send("x", "svc");
  kernel_.Run();
  EXPECT_EQ(received, 1);

  ASSERT_TRUE(bus_.CrashEndpoint("svc").ok());
  EXPECT_TRUE(bus_.EndpointCrashed("svc"));
  EXPECT_FALSE(bus_.HasEndpoint("svc"));
  Send("x", "svc");
  kernel_.Run();
  EXPECT_EQ(received, 1);  // message lost to the crash
  EXPECT_EQ(bus_.stats().undeliverable, 1u);

  // The crashed name is reserved: nobody can squat on it.
  EXPECT_EQ(bus_.RegisterEndpoint("svc", [](const Envelope&) {}).code(),
            StatusCode::kAlreadyExists);

  ASSERT_TRUE(bus_.RestartEndpoint("svc").ok());
  EXPECT_FALSE(bus_.EndpointCrashed("svc"));
  Send("x", "svc");
  kernel_.Run();
  EXPECT_EQ(received, 2);  // the original handler is back
  EXPECT_TRUE(bus_.stats().Reconciles());
}

TEST_F(FaultTest, CrashUnknownEndpointFails) {
  EXPECT_EQ(bus_.CrashEndpoint("ghost").code(), StatusCode::kNotFound);
  EXPECT_EQ(bus_.RestartEndpoint("ghost").code(), StatusCode::kNotFound);
}

TEST_F(FaultTest, MessagesInFlightAtCrashAreLost) {
  int received = 0;
  RegisterCounter("svc", &received);
  Send("x", "svc");  // in flight: 1 ms latency
  kernel_.ScheduleAt(500, [this] { ASSERT_TRUE(bus_.CrashEndpoint("svc").ok()); });
  kernel_.Run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(bus_.stats().undeliverable, 1u);
  EXPECT_TRUE(bus_.stats().Reconciles());
}

TEST_F(FaultTest, BurstLossWindowElevatesDropProbability) {
  int received = 0;
  RegisterCounter("svc", &received);
  bus_.AddLossWindow({sim::Seconds(10), sim::Seconds(20), 1.0});
  // Before, inside, and after the window.
  kernel_.ScheduleAt(sim::Seconds(5), [this] { Send("x", "svc"); });
  kernel_.ScheduleAt(sim::Seconds(15), [this] { Send("x", "svc"); });
  kernel_.ScheduleAt(sim::Seconds(25), [this] { Send("x", "svc"); });
  kernel_.Run();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(bus_.stats().dropped, 1u);
  EXPECT_TRUE(bus_.stats().Reconciles());
}

TEST_F(FaultTest, LossWindowEndIsExclusive) {
  int received = 0;
  RegisterCounter("svc", &received);
  bus_.AddLossWindow({sim::Seconds(10), sim::Seconds(20), 1.0});
  kernel_.ScheduleAt(sim::Seconds(10), [this] { Send("x", "svc"); });  // in
  kernel_.ScheduleAt(sim::Seconds(20), [this] { Send("x", "svc"); });  // out
  kernel_.Run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(bus_.stats().dropped, 1u);
}

TEST_F(FaultTest, FaultPlanReplaysScriptedScenario) {
  int received = 0;
  RegisterCounter("svc", &received);
  FaultPlan plan;
  plan.PartitionAt(sim::Seconds(10), "x", "svc")
      .HealAt(sim::Seconds(20), "x", "svc")
      .CrashAt(sim::Seconds(30), "svc")
      .RestartAt(sim::Seconds(40), "svc");
  ApplyFaultPlan(bus_, plan);
  // One probe between each pair of fault boundaries.
  for (sim::SimTime t = sim::Seconds(5); t <= sim::Seconds(45);
       t += sim::Seconds(10)) {
    kernel_.ScheduleAt(t, [this] { Send("x", "svc"); });
  }
  kernel_.Run();
  // t=5 delivered; t=15 partitioned; t=25 delivered; t=35 crashed
  // (undeliverable); t=45 delivered after restart.
  EXPECT_EQ(received, 3);
  EXPECT_EQ(bus_.stats().dropped, 1u);
  EXPECT_EQ(bus_.stats().undeliverable, 1u);
  EXPECT_TRUE(bus_.stats().Reconciles());
}

TEST_F(FaultTest, FaultPlanActionsInThePastFireImmediately) {
  int received = 0;
  RegisterCounter("svc", &received);
  kernel_.ScheduleAt(sim::Seconds(10), [this] {
    FaultPlan plan;
    plan.PartitionAt(sim::Seconds(1), "x", "svc");  // already in the past
    ApplyFaultPlan(bus_, plan);
  });
  kernel_.ScheduleAt(sim::Seconds(20), [this] { Send("x", "svc"); });
  kernel_.Run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(bus_.stats().dropped, 1u);
}

TEST_F(FaultTest, StatsReconcileUnderMixedFaults) {
  MessageBus lossy(kernel_, LatencyModel{1000, 500, 0.3}, 23);
  int received = 0;
  ASSERT_TRUE(lossy.RegisterEndpoint("svc", [&](const Envelope&) {
                   ++received;
                 }).ok());
  lossy.AddLossWindow({sim::Seconds(1), sim::Seconds(2), 0.9});
  for (int i = 0; i < 200; ++i) {
    kernel_.ScheduleAt(i * 20 * sim::kMillisecond, [&lossy] {
      Envelope e;
      e.source = "x";
      e.destination = "svc";
      e.payload = {9};
      lossy.Send(e);
    });
  }
  kernel_.ScheduleAt(sim::Seconds(3), [&lossy] {
    (void)lossy.CrashEndpoint("svc");
  });
  kernel_.Run();
  const BusStats& stats = lossy.stats();
  EXPECT_EQ(stats.sent, 200u);
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_GT(stats.delivered, 0u);
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_GT(stats.undeliverable, 0u);
  EXPECT_TRUE(stats.Reconciles());
  EXPECT_EQ(static_cast<std::uint64_t>(received), stats.delivered);
}

}  // namespace
}  // namespace gm::net
