#include "net/serialize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace gm::net {
namespace {

TEST(SerializeTest, FixedWidthRoundTrip) {
  Writer w;
  w.WriteU8(0xab);
  w.WriteU16(0x1234);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(0x0123456789abcdefULL);
  Reader r(w.data());
  EXPECT_EQ(r.ReadU8().value(), 0xab);
  EXPECT_EQ(r.ReadU16().value(), 0x1234);
  EXPECT_EQ(r.ReadU32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadU64().value(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, VarintSmallValuesAreOneByte) {
  Writer w;
  w.WriteVarint(0);
  w.WriteVarint(127);
  EXPECT_EQ(w.data().size(), 2u);
}

TEST(SerializeTest, VarintRoundTripBoundaries) {
  Writer w;
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  std::uint64_t{1} << 32,
                                  std::numeric_limits<std::uint64_t>::max()};
  for (auto v : values) w.WriteVarint(v);
  Reader r(w.data());
  for (auto v : values) EXPECT_EQ(r.ReadVarint().value(), v);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, VarintOverflowRejected) {
  // 11 bytes of continuation = more than 64 bits.
  Bytes bad(11, 0xff);
  Reader r(bad);
  EXPECT_FALSE(r.ReadVarint().ok());
}

TEST(SerializeTest, ZigzagI64RoundTrip) {
  Writer w;
  const std::int64_t values[] = {0, -1, 1, -2, 63, -64,
                                 std::numeric_limits<std::int64_t>::max(),
                                 std::numeric_limits<std::int64_t>::min()};
  for (auto v : values) w.WriteI64(v);
  Reader r(w.data());
  for (auto v : values) EXPECT_EQ(r.ReadI64().value(), v);
}

TEST(SerializeTest, ZigzagSmallNegativesAreCompact) {
  Writer w;
  w.WriteI64(-1);
  EXPECT_EQ(w.data().size(), 1u);
}

TEST(SerializeTest, DoubleRoundTripExact) {
  Writer w;
  const double values[] = {0.0, -0.0, 1.5, -3.14159e300, 5e-324,
                           std::numeric_limits<double>::infinity()};
  for (auto v : values) w.WriteDouble(v);
  w.WriteDouble(std::nan(""));
  Reader r(w.data());
  for (auto v : values) EXPECT_EQ(r.ReadDouble().value(), v);
  EXPECT_TRUE(std::isnan(r.ReadDouble().value()));
}

TEST(SerializeTest, BoolRoundTripAndValidation) {
  Writer w;
  w.WriteBool(true);
  w.WriteBool(false);
  w.WriteU8(7);  // invalid bool byte
  Reader r(w.data());
  EXPECT_TRUE(r.ReadBool().value());
  EXPECT_FALSE(r.ReadBool().value());
  EXPECT_FALSE(r.ReadBool().ok());
}

TEST(SerializeTest, StringRoundTrip) {
  Writer w;
  w.WriteString("");
  w.WriteString("hello grid");
  w.WriteString(std::string(1000, 'x'));
  Reader r(w.data());
  EXPECT_EQ(r.ReadString().value(), "");
  EXPECT_EQ(r.ReadString().value(), "hello grid");
  EXPECT_EQ(r.ReadString().value(), std::string(1000, 'x'));
}

TEST(SerializeTest, BytesRoundTrip) {
  Writer w;
  w.WriteBytes({0x00, 0xff, 0x7f});
  Reader r(w.data());
  EXPECT_EQ(r.ReadBytes().value(), (Bytes{0x00, 0xff, 0x7f}));
}

TEST(SerializeTest, TruncatedReadsFail) {
  Writer w;
  w.WriteU64(42);
  Bytes truncated(w.data().begin(), w.data().begin() + 4);
  Reader r(truncated);
  EXPECT_FALSE(r.ReadU64().ok());
}

TEST(SerializeTest, StringLengthBeyondBufferFails) {
  Writer w;
  w.WriteVarint(1000);  // claims 1000 bytes follow
  w.WriteU8('x');
  Reader r(w.data());
  EXPECT_FALSE(r.ReadString().ok());
}

TEST(SerializeTest, MixedSequenceRemainingTracksPosition) {
  Writer w;
  w.WriteU32(1);
  w.WriteString("ab");
  Reader r(w.data());
  EXPECT_EQ(r.remaining(), w.data().size());
  ASSERT_TRUE(r.ReadU32().ok());
  EXPECT_EQ(r.remaining(), w.data().size() - 4);
  ASSERT_TRUE(r.ReadString().ok());
  EXPECT_TRUE(r.AtEnd());
}

}  // namespace
}  // namespace gm::net
