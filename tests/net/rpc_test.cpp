#include "net/rpc.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <optional>

namespace gm::net {
namespace {

class RpcTest : public ::testing::Test {
 protected:
  RpcTest() : bus_(kernel_, LatencyModel{1000, 0, 0.0}, 3) {}

  sim::Kernel kernel_;
  MessageBus bus_;
};

Bytes EchoPayload(const std::string& text) {
  Writer w;
  w.WriteString(text);
  return w.Take();
}

TEST_F(RpcTest, BasicCallResponse) {
  RpcServer server(bus_, "bank");
  server.RegisterMethod("echo", [](const Bytes& request) -> Result<Bytes> {
    return request;  // identity
  });
  RpcClient client(bus_, "user-1");

  std::optional<Result<Bytes>> response;
  client.Call("bank", "echo", EchoPayload("hi"), CallOptions{},
              [&](Result<Bytes> r) { response = std::move(r); });
  kernel_.Run();
  ASSERT_TRUE(response.has_value());
  ASSERT_TRUE(response->ok());
  Reader reader(response->value());
  EXPECT_EQ(reader.ReadString().value(), "hi");
  // One round trip at 1 ms each way; the timeout timer was cancelled, so
  // the clock stops at the response delivery.
  EXPECT_EQ(kernel_.now(), 2000);
}

TEST_F(RpcTest, ServerErrorPropagates) {
  RpcServer server(bus_, "bank");
  server.RegisterMethod("fail", [](const Bytes&) -> Result<Bytes> {
    return Status::PermissionDenied("no funds");
  });
  RpcClient client(bus_, "user-1");
  std::optional<Result<Bytes>> response;
  client.Call("bank", "fail", {}, CallOptions{},
              [&](Result<Bytes> r) { response = std::move(r); });
  kernel_.Run();
  ASSERT_TRUE(response.has_value());
  EXPECT_FALSE(response->ok());
  EXPECT_EQ(response->status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(response->status().message(), "no funds");
}

TEST_F(RpcTest, UnknownMethodReturnsNotFound) {
  RpcServer server(bus_, "bank");
  RpcClient client(bus_, "user-1");
  std::optional<Result<Bytes>> response;
  client.Call("bank", "nope", {}, CallOptions{},
              [&](Result<Bytes> r) { response = std::move(r); });
  kernel_.Run();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status().code(), StatusCode::kNotFound);
}

TEST_F(RpcTest, MissingServerTimesOut) {
  RpcClient client(bus_, "user-1");
  std::optional<Result<Bytes>> response;
  client.Call("ghost", "m", {}, CallOptions{sim::Seconds(1), 1},
              [&](Result<Bytes> r) { response = std::move(r); });
  kernel_.Run();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(client.timeouts(), 1u);
  EXPECT_EQ(kernel_.now(), sim::Seconds(1));
}

TEST_F(RpcTest, RetrySucceedsOnLossyNetwork) {
  // 60% drop: with 10 attempts at least one request+response pair should
  // get through (probability of total failure ~ (1-0.16)^10 ~ 17%; seed
  // chosen so the test passes deterministically).
  MessageBus lossy(kernel_, LatencyModel{1000, 0, 0.6}, 12345);
  RpcServer server(lossy, "bank");
  server.RegisterMethod("ping", [](const Bytes&) -> Result<Bytes> {
    return Bytes{1};
  });
  RpcClient client(lossy, "user-1");
  std::optional<Result<Bytes>> response;
  client.Call("bank", "ping", {}, CallOptions{sim::Seconds(1), 10},
              [&](Result<Bytes> r) { response = std::move(r); });
  kernel_.Run();
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->ok());
  EXPECT_GT(client.retries(), 0u);
}

TEST_F(RpcTest, AllRetriesExhaustedOnDeadNetwork) {
  MessageBus dead(kernel_, LatencyModel{1000, 0, 1.0}, 5);
  RpcServer server(dead, "bank");
  server.RegisterMethod("ping", [](const Bytes&) -> Result<Bytes> {
    return Bytes{1};
  });
  RpcClient client(dead, "user-1");
  std::optional<Result<Bytes>> response;
  client.Call("bank", "ping", {}, CallOptions{sim::Seconds(1), 3},
              [&](Result<Bytes> r) { response = std::move(r); });
  kernel_.Run();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(client.retries(), 2u);  // 3 attempts = 2 retries
  EXPECT_EQ(client.timeouts(), 3u);
}

TEST_F(RpcTest, ConcurrentCallsCorrelateCorrectly) {
  RpcServer server(bus_, "bank");
  server.RegisterMethod("double", [](const Bytes& request) -> Result<Bytes> {
    Reader reader(request);
    GM_ASSIGN_OR_RETURN(const std::uint64_t v, reader.ReadU64());
    Writer writer;
    writer.WriteU64(v * 2);
    return writer.Take();
  });
  RpcClient client(bus_, "user-1");
  std::vector<std::uint64_t> results(10, 0);
  for (std::uint64_t i = 0; i < 10; ++i) {
    Writer w;
    w.WriteU64(i);
    client.Call("bank", "double", w.Take(), CallOptions{},
                [&results, i](Result<Bytes> r) {
                  ASSERT_TRUE(r.ok());
                  Reader reader(*r);
                  results[i] = reader.ReadU64().value();
                });
  }
  kernel_.Run();
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(results[i], i * 2);
}

TEST_F(RpcTest, TwoClientsShareOneServer) {
  RpcServer server(bus_, "sls");
  server.RegisterMethod("whoami", [](const Bytes& request) -> Result<Bytes> {
    return request;
  });
  RpcClient alice(bus_, "alice");
  RpcClient bob(bus_, "bob");
  std::string alice_result, bob_result;
  alice.Call("sls", "whoami", EchoPayload("alice"), CallOptions{},
             [&](Result<Bytes> r) {
               Reader reader(*r);
               alice_result = reader.ReadString().value();
             });
  bob.Call("sls", "whoami", EchoPayload("bob"), CallOptions{},
           [&](Result<Bytes> r) {
             Reader reader(*r);
             bob_result = reader.ReadString().value();
           });
  kernel_.Run();
  EXPECT_EQ(alice_result, "alice");
  EXPECT_EQ(bob_result, "bob");
}

TEST_F(RpcTest, LateResponseAfterTimeoutIsIgnored) {
  // Server with artificial processing delay longer than the client timeout:
  // respond via a scheduled event.
  RpcClient client(bus_, "user-1");
  ASSERT_TRUE(bus_.RegisterEndpoint("slow", [&](const Envelope& e) {
                   kernel_.ScheduleAfter(sim::Seconds(5), [this, e] {
                     Envelope resp;
                     resp.source = "slow";
                     resp.destination = e.source;
                     resp.type = MessageType::kRpcResponse;
                     resp.correlation_id = e.correlation_id;
                     Writer w;
                     WriteStatus(w, Status::Ok());
                     w.WriteBytes({});
                     resp.payload = w.Take();
                     bus_.Send(resp);
                   });
                 }).ok());
  int callback_count = 0;
  std::optional<Status> status;
  client.Call("slow", "m", {}, CallOptions{sim::Seconds(1), 1},
              [&](Result<Bytes> r) {
                ++callback_count;
                status = r.status();
              });
  kernel_.Run();
  EXPECT_EQ(callback_count, 1);  // exactly once, despite the late response
  EXPECT_EQ(status->code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(client.stale_responses(), 1u);
}

// Regression: destroying a client with a call still in flight used to leave
// the timeout event armed; when it fired, HandleTimeout ran on the freed
// client (use-after-free). The destructor must cancel all pending timers.
TEST_F(RpcTest, DestroyClientWithInFlightCallIsSafe) {
  auto client = std::make_unique<RpcClient>(bus_, "doomed");
  int callback_count = 0;
  // No server: the only pending event is the 1 s attempt timeout.
  client->Call("ghost", "m", {}, CallOptions{sim::Seconds(1), 3},
               [&](Result<Bytes>) { ++callback_count; });
  client.reset();  // destroy with the call in flight
  kernel_.Run();   // would fire the stale timeout without the fix
  EXPECT_EQ(callback_count, 0);  // dropped, never invoked on a dead object
}

TEST_F(RpcTest, DestroyClientBeforeResponseArrivesIsSafe) {
  RpcServer server(bus_, "bank");
  server.RegisterMethod("echo", [](const Bytes& request) -> Result<Bytes> {
    return request;
  });
  auto client = std::make_unique<RpcClient>(bus_, "doomed");
  int callback_count = 0;
  client->Call("bank", "echo", EchoPayload("hi"), CallOptions{},
               [&](Result<Bytes>) { ++callback_count; });
  client.reset();  // endpoint unregisters; the response becomes undeliverable
  kernel_.Run();
  EXPECT_EQ(callback_count, 0);
  EXPECT_EQ(bus_.stats().undeliverable, 1u);
}

TEST_F(RpcTest, DuplicateRequestRepliedFromDedupCache) {
  // A retried request reaches a server that already executed the original:
  // the server must replay the cached response, not re-execute the method.
  int executions = 0;
  RpcServer server(bus_, "bank");
  server.RegisterMethod("inc", [&](const Bytes&) -> Result<Bytes> {
    ++executions;
    Writer w;
    w.WriteU64(static_cast<std::uint64_t>(executions));
    return w.Take();
  });
  std::vector<Bytes> responses;
  ASSERT_TRUE(bus_.RegisterEndpoint("manual-client", [&](const Envelope& e) {
                   responses.push_back(e.payload);
                 }).ok());
  Envelope request;
  request.source = "manual-client";
  request.destination = "bank";
  request.type = MessageType::kRpcRequest;
  request.correlation_id = 77;
  Writer w;
  w.WriteString("inc");
  w.WriteBytes({});
  request.payload = w.Take();
  bus_.Send(request);   // original
  request.attempt = 2;  // the retry carries the same correlation id
  bus_.Send(request);
  kernel_.Run();
  EXPECT_EQ(executions, 1);
  EXPECT_EQ(server.executions(), 1u);
  EXPECT_EQ(server.replays(), 1u);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0], responses[1]);  // byte-identical replay
}

TEST_F(RpcTest, RetriedCallExecutesExactlyOnceOnLossyNetwork) {
  // The at-least-once transport retries until a request/response pair gets
  // through; server-side dedup must keep the side effect exactly-once.
  MessageBus lossy(kernel_, LatencyModel{1000, 0, 0.5}, 99);
  int executions = 0;
  RpcServer server(lossy, "bank");
  server.RegisterMethod("apply", [&](const Bytes&) -> Result<Bytes> {
    ++executions;
    return Bytes{1};
  });
  RpcClient client(lossy, "user-1");
  std::optional<Result<Bytes>> response;
  client.Call("bank", "apply", {}, CallOptions{sim::Seconds(1), 16},
              [&](Result<Bytes> r) { response = std::move(r); });
  kernel_.Run();
  ASSERT_TRUE(response.has_value());
  ASSERT_TRUE(response->ok());
  EXPECT_GT(client.retries(), 0u);  // the network did lose traffic
  EXPECT_EQ(executions, 1);         // ...but the effect applied once
  EXPECT_EQ(server.executions(), 1u);
}

TEST_F(RpcTest, RetryBackoffGrowsExponentiallyWithJitter) {
  // Dead network, 3 attempts, 1 s timeout, 100 ms initial backoff doubling
  // per retry. Completion time = 3 timeouts + two jittered backoffs with
  // backoff_k in [delay_k/2, delay_k]:
  //   3 s + [50,100] ms + [100,200] ms  ->  [3.15 s, 3.30 s].
  MessageBus dead(kernel_, LatencyModel{1000, 0, 1.0}, 5);
  RpcClient client(dead, "user-1");
  CallOptions options;
  options.timeout = sim::Seconds(1);
  options.max_attempts = 3;
  options.initial_backoff = 100 * sim::kMillisecond;
  options.backoff_multiplier = 2.0;
  options.max_backoff = sim::Seconds(10);
  std::optional<Status> status;
  client.Call("bank", "ping", {}, options,
              [&](Result<Bytes> r) { status = r.status(); });
  kernel_.Run();
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(kernel_.now(), sim::Seconds(3) + 150 * sim::kMillisecond);
  EXPECT_LE(kernel_.now(), sim::Seconds(3) + 300 * sim::kMillisecond);
}

TEST_F(RpcTest, BackoffIsCappedAtMaxBackoff) {
  MessageBus dead(kernel_, LatencyModel{1000, 0, 1.0}, 6);
  RpcClient client(dead, "user-1");
  CallOptions options;
  options.timeout = sim::Seconds(1);
  options.max_attempts = 4;
  options.initial_backoff = sim::Seconds(1);
  options.backoff_multiplier = 100.0;  // would explode without the cap
  options.max_backoff = sim::Seconds(2);
  std::optional<Status> status;
  client.Call("bank", "ping", {}, options,
              [&](Result<Bytes> r) { status = r.status(); });
  kernel_.Run();
  ASSERT_TRUE(status.has_value());
  // 4 timeouts + 3 backoffs, each backoff capped to [1 s, 2 s].
  EXPECT_GE(kernel_.now(), sim::Seconds(4) + 3 * sim::Seconds(1) / 2);
  EXPECT_LE(kernel_.now(), sim::Seconds(4) + 3 * sim::Seconds(2));
}

TEST_F(RpcTest, DedupCacheEvictsOldestEntries) {
  RpcServerOptions server_options;
  server_options.dedup_capacity_per_client = 2;
  int executions = 0;
  RpcServer server(bus_, "bank", server_options);
  server.RegisterMethod("inc", [&](const Bytes&) -> Result<Bytes> {
    ++executions;
    return Bytes{};
  });
  ASSERT_TRUE(
      bus_.RegisterEndpoint("manual-client", [](const Envelope&) {}).ok());
  auto send = [&](std::uint64_t cid) {
    Envelope request;
    request.source = "manual-client";
    request.destination = "bank";
    request.type = MessageType::kRpcRequest;
    request.correlation_id = cid;
    Writer w;
    w.WriteString("inc");
    w.WriteBytes({});
    request.payload = w.Take();
    bus_.Send(request);
    kernel_.Run();
  };
  send(1);
  send(2);
  send(3);  // evicts cid 1 (capacity 2)
  send(1);  // re-executes: its cached response is gone
  EXPECT_EQ(executions, 4);
  EXPECT_EQ(server.replays(), 0u);
  send(3);  // still cached
  EXPECT_EQ(executions, 4);
  EXPECT_EQ(server.replays(), 1u);
}

TEST_F(RpcTest, StatusRoundTripOnWire) {
  Writer w;
  WriteStatus(w, Status::ResourceExhausted("cluster full"));
  Reader r(w.data());
  const Status status = ReadStatus(r);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(status.message(), "cluster full");
  // Truncated wire decodes to an error, not garbage.
  Bytes truncated{0x03};
  Reader bad(truncated);
  EXPECT_EQ(ReadStatus(bad).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace gm::net
