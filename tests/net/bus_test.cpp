#include "net/bus.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gm::net {
namespace {

TEST(EnvelopeTest, EncodeDecodeRoundTrip) {
  Envelope e;
  e.source = "client-1";
  e.destination = "bank";
  e.type = MessageType::kRpcRequest;
  e.correlation_id = 9876543210ULL;
  e.payload = {1, 2, 3, 0xff};
  const auto decoded = Envelope::Decode(e.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->source, e.source);
  EXPECT_EQ(decoded->destination, e.destination);
  EXPECT_EQ(decoded->type, e.type);
  EXPECT_EQ(decoded->correlation_id, e.correlation_id);
  EXPECT_EQ(decoded->payload, e.payload);
}

TEST(EnvelopeTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(Envelope::Decode({0xff, 0xff, 0xff}).ok());
  Envelope e;
  e.destination = "x";
  Bytes wire = e.Encode();
  wire.push_back(0x00);  // trailing byte
  EXPECT_FALSE(Envelope::Decode(wire).ok());
}

class BusTest : public ::testing::Test {
 protected:
  sim::Kernel kernel_;
};

TEST_F(BusTest, DeliversToRegisteredEndpoint) {
  MessageBus bus(kernel_, LatencyModel{1000, 0, 0.0}, 1);
  std::vector<Envelope> received;
  ASSERT_TRUE(bus.RegisterEndpoint("bank", [&](const Envelope& e) {
                   received.push_back(e);
                 }).ok());
  Envelope e;
  e.source = "user";
  e.destination = "bank";
  e.payload = {42};
  bus.Send(e);
  EXPECT_TRUE(received.empty());  // not yet delivered
  kernel_.Run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].payload, Bytes{42});
  EXPECT_EQ(kernel_.now(), 1000);  // base latency
}

TEST_F(BusTest, DuplicateEndpointRejected) {
  MessageBus bus(kernel_, LatencyModel{}, 1);
  ASSERT_TRUE(bus.RegisterEndpoint("a", [](const Envelope&) {}).ok());
  EXPECT_EQ(bus.RegisterEndpoint("a", [](const Envelope&) {}).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(BusTest, UnregisterStopsDelivery) {
  MessageBus bus(kernel_, LatencyModel{1000, 0, 0.0}, 1);
  int count = 0;
  ASSERT_TRUE(
      bus.RegisterEndpoint("svc", [&](const Envelope&) { ++count; }).ok());
  Envelope e;
  e.destination = "svc";
  bus.Send(e);
  ASSERT_TRUE(bus.UnregisterEndpoint("svc").ok());
  kernel_.Run();
  EXPECT_EQ(count, 0);
  EXPECT_EQ(bus.stats().undeliverable, 1u);
  EXPECT_EQ(bus.UnregisterEndpoint("svc").code(), StatusCode::kNotFound);
}

TEST_F(BusTest, UnknownDestinationCountedNotFatal) {
  MessageBus bus(kernel_, LatencyModel{}, 1);
  Envelope e;
  e.destination = "nowhere";
  bus.Send(e);
  kernel_.Run();
  EXPECT_EQ(bus.stats().sent, 1u);
  EXPECT_EQ(bus.stats().delivered, 0u);
  EXPECT_EQ(bus.stats().undeliverable, 1u);
}

TEST_F(BusTest, JitterVariesDeliveryTimes) {
  MessageBus bus(kernel_, LatencyModel{1000, 500, 0.0}, 7);
  std::vector<sim::SimTime> times;
  ASSERT_TRUE(bus.RegisterEndpoint("t", [&](const Envelope&) {
                   times.push_back(kernel_.now());
                 }).ok());
  for (int i = 0; i < 50; ++i) {
    Envelope e;
    e.destination = "t";
    bus.Send(e);
  }
  kernel_.Run();
  ASSERT_EQ(times.size(), 50u);
  bool varied = false;
  for (auto t : times) {
    EXPECT_GE(t, 1000);
    EXPECT_LE(t, 1500);
    if (t != times[0]) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST_F(BusTest, DropProbabilityLosesMessages) {
  MessageBus bus(kernel_, LatencyModel{1000, 0, 0.5}, 11);
  int count = 0;
  ASSERT_TRUE(
      bus.RegisterEndpoint("lossy", [&](const Envelope&) { ++count; }).ok());
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    Envelope e;
    e.destination = "lossy";
    bus.Send(e);
  }
  kernel_.Run();
  EXPECT_EQ(bus.stats().sent, static_cast<std::uint64_t>(n));
  EXPECT_EQ(bus.stats().dropped + bus.stats().delivered,
            static_cast<std::uint64_t>(n));
  EXPECT_NEAR(static_cast<double>(count) / n, 0.5, 0.06);
}

TEST_F(BusTest, MessagesBetweenEndpointsInterleaveDeterministically) {
  MessageBus bus(kernel_, LatencyModel{1000, 0, 0.0}, 1);
  std::vector<std::string> log;
  ASSERT_TRUE(bus.RegisterEndpoint("a", [&](const Envelope& e) {
                   log.push_back("a<-" + e.source);
                 }).ok());
  ASSERT_TRUE(bus.RegisterEndpoint("b", [&](const Envelope& e) {
                   log.push_back("b<-" + e.source);
                 }).ok());
  Envelope to_a;
  to_a.source = "b";
  to_a.destination = "a";
  Envelope to_b;
  to_b.source = "a";
  to_b.destination = "b";
  bus.Send(to_a);
  bus.Send(to_b);
  kernel_.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "a<-b");  // same latency -> send order preserved
  EXPECT_EQ(log[1], "b<-a");
}

TEST_F(BusTest, BytesSentAccumulates) {
  MessageBus bus(kernel_, LatencyModel{}, 1);
  Envelope e;
  e.destination = "x";
  e.payload = Bytes(100, 0xaa);
  bus.Send(e);
  EXPECT_GT(bus.stats().bytes_sent, 100u);
}

TEST_F(BusTest, DroppedBytesCountedSeparatelyFromSentBytes) {
  MessageBus bus(kernel_, LatencyModel{1000, 0, 1.0}, 11);  // drops all
  Envelope e;
  e.destination = "x";
  e.payload = Bytes(100, 0xaa);
  bus.Send(e);
  EXPECT_EQ(bus.stats().dropped, 1u);
  EXPECT_GT(bus.stats().bytes_dropped, 100u);
  EXPECT_EQ(bus.stats().bytes_sent, 0u);  // never entered the wire
  EXPECT_TRUE(bus.stats().Reconciles());
}

TEST_F(BusTest, StatsReconcileAtEveryStage) {
  MessageBus bus(kernel_, LatencyModel{1000, 0, 0.0}, 1);
  ASSERT_TRUE(bus.RegisterEndpoint("svc", [](const Envelope&) {}).ok());
  Envelope e;
  e.destination = "svc";
  bus.Send(e);
  EXPECT_EQ(bus.stats().in_flight, 1u);  // enqueued, not yet delivered
  EXPECT_TRUE(bus.stats().Reconciles());
  kernel_.Run();
  EXPECT_EQ(bus.stats().in_flight, 0u);
  EXPECT_EQ(bus.stats().delivered, 1u);
  EXPECT_TRUE(bus.stats().Reconciles());
}

}  // namespace
}  // namespace gm::net
