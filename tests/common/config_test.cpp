#include "common/config.hpp"

#include <gtest/gtest.h>

namespace gm {
namespace {

TEST(ConfigTest, FromArgsParsesKeyValues) {
  const char* argv[] = {"hosts=30", "budget=12.5", "verbose=true"};
  const auto config = Config::FromArgs(3, argv);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->GetInt("hosts", 0), 30);
  EXPECT_DOUBLE_EQ(config->GetDouble("budget", 0.0), 12.5);
  EXPECT_TRUE(config->GetBool("verbose", false));
}

TEST(ConfigTest, FromArgsRejectsMalformed) {
  const char* argv[] = {"justakey"};
  EXPECT_FALSE(Config::FromArgs(1, argv).ok());
}

TEST(ConfigTest, FromTextHandlesCommentsAndBlankLines) {
  const auto config = Config::FromText(
      "# experiment parameters\n"
      "users = 5\n"
      "\n"
      "deadline_hours = 5.5  # paper value\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->GetInt("users", 0), 5);
  EXPECT_DOUBLE_EQ(config->GetDouble("deadline_hours", 0.0), 5.5);
}

TEST(ConfigTest, MissingKeysFallBack) {
  Config config;
  EXPECT_EQ(config.GetString("name", "fallback"), "fallback");
  EXPECT_EQ(config.GetInt("n", -1), -1);
  EXPECT_DOUBLE_EQ(config.GetDouble("d", 2.5), 2.5);
  EXPECT_TRUE(config.GetBool("b", true));
  EXPECT_FALSE(config.Has("name"));
}

TEST(ConfigTest, SetOverwrites) {
  Config config;
  config.Set("k", "1");
  config.Set("k", "2");
  EXPECT_EQ(config.GetInt("k", 0), 2);
}

TEST(ConfigTest, BoolSpellings) {
  const auto config = Config::FromText(
      "a=yes\nb=No\nc=ON\nd=off\ne=1\nf=0\ng=TRUE\nh=false\n");
  ASSERT_TRUE(config.ok());
  EXPECT_TRUE(config->GetBool("a", false));
  EXPECT_FALSE(config->GetBool("b", true));
  EXPECT_TRUE(config->GetBool("c", false));
  EXPECT_FALSE(config->GetBool("d", true));
  EXPECT_TRUE(config->GetBool("e", false));
  EXPECT_FALSE(config->GetBool("f", true));
  EXPECT_TRUE(config->GetBool("g", false));
  EXPECT_FALSE(config->GetBool("h", true));
}

}  // namespace
}  // namespace gm
