#include "common/units.hpp"

#include <gtest/gtest.h>

namespace gm {
namespace {

TEST(UnitsTest, DollarsToMicrosRoundTrips) {
  EXPECT_EQ(DollarsToMicros(1.0), 1'000'000);
  EXPECT_EQ(DollarsToMicros(0.000001), 1);
  EXPECT_EQ(DollarsToMicros(-2.5), -2'500'000);
  EXPECT_DOUBLE_EQ(MicrosToDollars(DollarsToMicros(123.456789)), 123.456789);
}

TEST(UnitsTest, DollarsToMicrosRoundsHalfAwayFromZero) {
  EXPECT_EQ(DollarsToMicros(0.0000005), 1);
  EXPECT_EQ(DollarsToMicros(-0.0000005), -1);
  EXPECT_EQ(DollarsToMicros(0.0000004), 0);
}

TEST(UnitsTest, FormatMoneyKeepsCents) {
  EXPECT_EQ(FormatMoney(DollarsToMicros(5.0)), "$5.00");
  EXPECT_EQ(FormatMoney(DollarsToMicros(10.90)), "$10.90");
}

TEST(UnitsTest, FormatMoneyShowsSubCentDigits) {
  EXPECT_EQ(FormatMoney(1), "$0.000001");
  EXPECT_EQ(FormatMoney(DollarsToMicros(0.123)), "$0.123");
}

TEST(UnitsTest, FormatMoneyNegative) {
  EXPECT_EQ(FormatMoney(DollarsToMicros(-4.19)), "-$4.19");
}

TEST(UnitsTest, FrequencyHelpers) {
  EXPECT_DOUBLE_EQ(GHz(3.0), 3e9);
  EXPECT_DOUBLE_EQ(MHz(1600), 1.6e9);
}

}  // namespace
}  // namespace gm
