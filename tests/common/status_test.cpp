#include "common/status.hpp"

#include <gtest/gtest.h>

namespace gm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("host h12");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "host h12");
  EXPECT_EQ(s.ToString(), "not_found: host h12");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::PermissionDenied("").code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unavailable("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unauthenticated("").code(), StatusCode::kUnauthenticated);
  EXPECT_EQ(Status::AlreadyClaimed("").code(), StatusCode::kAlreadyClaimed);
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyClaimed),
               "already_claimed");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Internal("boom"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status Chain(int x) {
  GM_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  GM_ASSIGN_OR_RETURN(const int half, Half(x));
  return Half(half);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

}  // namespace
}  // namespace gm
