#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace gm {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.Next() == b.Next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, NextBelowCoversRangeUniformly) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBelow(10)];
  for (int c : counts) {
    EXPECT_GT(c, n / 10 - 600);
    EXPECT_LT(c, n / 10 + 600);
  }
}

TEST(RngTest, UniformIntInclusiveEndpointsReachable) {
  Rng rng(19);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.count(-2));
  EXPECT_TRUE(seen.count(2));
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.Bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // Child stream should not mirror the parent stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (parent.Next() == child.Next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, SplitMix64KnownSequenceIsStable) {
  // Pin the seeding path so serialized experiment seeds stay reproducible
  // across refactors.
  std::uint64_t state = 0;
  const std::uint64_t first = SplitMix64(state);
  const std::uint64_t second = SplitMix64(state);
  EXPECT_NE(first, second);
  std::uint64_t replay_state = 0;
  EXPECT_EQ(SplitMix64(replay_state), first);
  EXPECT_EQ(SplitMix64(replay_state), second);
}

}  // namespace
}  // namespace gm
