#include "common/log.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

namespace gm {
namespace {

TEST(ParseLogLevelTest, AcceptsEveryLevelCaseInsensitively) {
  LogLevel level = LogLevel::kOff;
  EXPECT_TRUE(ParseLogLevel("trace", &level));
  EXPECT_EQ(level, LogLevel::kTrace);
  EXPECT_TRUE(ParseLogLevel("DEBUG", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("Info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("off", &level));
  EXPECT_EQ(level, LogLevel::kOff);
  EXPECT_TRUE(ParseLogLevel("none", &level));
  EXPECT_EQ(level, LogLevel::kOff);
}

TEST(ParseLogLevelTest, RejectsGarbageWithoutTouchingOutput) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("2", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
}

TEST(LoggerTest, ApplyEnvLevelReadsVariable) {
  Logger& logger = Logger::Instance();
  const LogLevel saved = logger.level();
  ::setenv("GM_LOG_LEVEL", "debug", 1);
  EXPECT_TRUE(logger.ApplyEnvLevel());
  EXPECT_EQ(logger.level(), LogLevel::kDebug);
  ::unsetenv("GM_LOG_LEVEL");
  EXPECT_FALSE(logger.ApplyEnvLevel());
  EXPECT_EQ(logger.level(), LogLevel::kDebug);  // unset leaves level alone
  logger.set_level(saved);
}

TEST(LoggerTest, PrefixHookPrependsToEveryLine) {
  Logger& logger = Logger::Instance();
  const LogLevel saved = logger.level();
  logger.set_level(LogLevel::kInfo);
  std::vector<std::string> lines;
  logger.set_sink(
      [&](LogLevel, const std::string& message) { lines.push_back(message); });
  logger.set_prefix_hook([] { return std::string("[t=42] "); });
  GM_LOG_INFO << "hello";
  logger.set_prefix_hook(nullptr);
  GM_LOG_INFO << "bare";
  logger.set_sink(nullptr);
  logger.set_level(saved);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "[t=42] hello");
  EXPECT_EQ(lines[1], "bare");
}

}  // namespace
}  // namespace gm
