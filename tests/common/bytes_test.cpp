#include "common/bytes.hpp"

#include <gtest/gtest.h>

namespace gm {
namespace {

TEST(BytesTest, HexEncodeEmpty) { EXPECT_EQ(HexEncode(Bytes{}), ""); }

TEST(BytesTest, HexEncodeKnown) {
  EXPECT_EQ(HexEncode(Bytes{0x00, 0x01, 0xab, 0xff}), "0001abff");
}

TEST(BytesTest, HexDecodeRoundTrip) {
  const Bytes original{0xde, 0xad, 0xbe, 0xef, 0x00, 0x7f};
  Bytes decoded;
  ASSERT_TRUE(HexDecode(HexEncode(original), decoded));
  EXPECT_EQ(decoded, original);
}

TEST(BytesTest, HexDecodeUppercase) {
  Bytes decoded;
  ASSERT_TRUE(HexDecode("DEADBEEF", decoded));
  EXPECT_EQ(decoded, (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(BytesTest, HexDecodeRejectsOddLength) {
  Bytes decoded;
  EXPECT_FALSE(HexDecode("abc", decoded));
}

TEST(BytesTest, HexDecodeRejectsNonHex) {
  Bytes decoded;
  EXPECT_FALSE(HexDecode("zz", decoded));
  EXPECT_FALSE(HexDecode("0g", decoded));
}

TEST(BytesTest, StringRoundTrip) {
  EXPECT_EQ(ToString(ToBytes("grid market")), "grid market");
  EXPECT_TRUE(ToBytes("").empty());
}

TEST(BytesTest, ConstantTimeEquals) {
  EXPECT_TRUE(ConstantTimeEquals(Bytes{1, 2, 3}, Bytes{1, 2, 3}));
  EXPECT_FALSE(ConstantTimeEquals(Bytes{1, 2, 3}, Bytes{1, 2, 4}));
  EXPECT_FALSE(ConstantTimeEquals(Bytes{1, 2}, Bytes{1, 2, 3}));
  EXPECT_TRUE(ConstantTimeEquals(Bytes{}, Bytes{}));
}

}  // namespace
}  // namespace gm
