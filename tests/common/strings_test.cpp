#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace gm {
namespace {

TEST(StringsTest, SplitBasic) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  const auto parts = Split(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[4], "");
}

TEST(StringsTest, SplitEmptyStringYieldsOneEmptyPiece) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("nospace"), "nospace");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("gridmarket", "grid"));
  EXPECT_FALSE(StartsWith("grid", "gridmarket"));
  EXPECT_TRUE(EndsWith("table1.txt", ".txt"));
  EXPECT_FALSE(EndsWith("txt", "table1.txt"));
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("CpuTime", "cputime"));
  EXPECT_FALSE(EqualsIgnoreCase("cpu", "cput"));
}

TEST(StringsTest, ToLower) { EXPECT_EQ(ToLower("WallTime"), "walltime"); }

TEST(StringsTest, ParseInt64) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("12x").has_value());
  EXPECT_FALSE(ParseInt64("4.5").has_value());
}

TEST(StringsTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_FALSE(ParseDouble("abc").has_value());
  EXPECT_FALSE(ParseDouble("1.5kg").has_value());
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("user%d pays %.2f", 3, 1.5), "user3 pays 1.50");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

}  // namespace
}  // namespace gm
