#include "common/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>

namespace gm {
namespace {

bool IsAligned(const void* p, std::size_t alignment) {
  return reinterpret_cast<std::uintptr_t>(p) % alignment == 0;
}

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena(256);
  std::set<char*> starts;
  for (std::size_t alignment : {1u, 2u, 4u, 8u, 16u, 64u}) {
    for (int i = 0; i < 10; ++i) {
      char* p = static_cast<char*>(arena.Allocate(24, alignment));
      ASSERT_NE(p, nullptr);
      EXPECT_TRUE(IsAligned(p, alignment));
      // Touch the full extent; ASan (tier-1 sanitize stage) would flag
      // overlap or out-of-chunk pointers.
      std::memset(p, 0xab, 24);
      EXPECT_TRUE(starts.insert(p).second) << "allocation reused before Reset";
    }
  }
  EXPECT_GE(arena.allocated(), 6u * 10u * 24u);
}

TEST(ArenaTest, GrowsBeyondFirstChunk) {
  Arena arena(64);
  // Far more than the first chunk; must keep returning valid memory.
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(100, 8);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0, 100);
  }
}

TEST(ArenaTest, OversizedRequestGetsItsOwnChunk) {
  Arena arena(64);
  void* big = arena.Allocate(1 << 20, 64);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0, 1 << 20);
}

TEST(ArenaTest, ResetReclaimsAndReusesChunks) {
  Arena arena(128);
  char* first = static_cast<char*>(arena.Allocate(64, 8));
  std::memset(first, 1, 64);
  arena.Reset();
  EXPECT_EQ(arena.allocated(), 0u);
  char* again = static_cast<char*>(arena.Allocate(64, 8));
  // Chunks are retained across Reset, so the same storage comes back.
  EXPECT_EQ(first, again);
}

TEST(ArenaTest, StackBackedFirstChunkServesWithoutHeap) {
  alignas(std::max_align_t) char buffer[256];
  Arena arena(buffer, sizeof(buffer));
  char* p = static_cast<char*>(arena.Allocate(32, 8));
  EXPECT_GE(p, buffer);
  EXPECT_LT(p, buffer + sizeof(buffer));
  // Overflowing the stack chunk falls back to heap chunks transparently.
  void* heap = arena.Allocate(1024, 8);
  ASSERT_NE(heap, nullptr);
  std::memset(heap, 0, 1024);
}

TEST(ArenaTest, ArenaScratchConvenienceWrapper) {
  ArenaScratch<512> scratch;
  void* p = scratch.arena.Allocate(100, 8);
  EXPECT_GE(static_cast<char*>(p), scratch.buffer);
  EXPECT_LT(static_cast<char*>(p), scratch.buffer + sizeof(scratch.buffer));
}

TEST(ArenaVectorTest, VectorDrawsFromArena) {
  Arena arena(4096);
  auto v = MakeArenaVector<double>(arena, 16);
  for (int i = 0; i < 100; ++i) v.push_back(static_cast<double>(i));
  ASSERT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[i], static_cast<double>(i));
  EXPECT_GT(arena.allocated(), 100u * sizeof(double));
}

TEST(ArenaVectorTest, SteadyStateStopsGrowingTheArena) {
  Arena arena(4096);
  std::size_t high_water = 0;
  for (int epoch = 0; epoch < 50; ++epoch) {
    arena.Reset();
    auto a = MakeArenaVector<int>(arena, 64);
    auto b = MakeArenaVector<double>(arena, 32);
    for (int i = 0; i < 64; ++i) a.push_back(i);
    for (int i = 0; i < 32; ++i) b.push_back(i * 0.5);
    if (epoch == 0) {
      high_water = arena.allocated();
    } else {
      // Identical epochs must not allocate more than the first one did.
      EXPECT_EQ(arena.allocated(), high_water);
    }
  }
}

TEST(ArenaVectorTest, AllocatorEqualityFollowsArena) {
  Arena a;
  Arena b;
  EXPECT_TRUE(ArenaAllocator<int>(&a) == ArenaAllocator<int>(&a));
  EXPECT_TRUE(ArenaAllocator<int>(&a) != ArenaAllocator<int>(&b));
  // Rebinding keeps the arena.
  const ArenaAllocator<int> source(&a);
  ArenaAllocator<double> rebound(source);
  EXPECT_EQ(rebound.arena(), &a);
}

}  // namespace
}  // namespace gm
