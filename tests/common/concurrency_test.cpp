#include "common/concurrency.hpp"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace gm {
namespace {

TEST(MutexTest, LockUnlockTracksHeldCount) {
  Mutex mu("test.mutex", lockrank::kBank);
  EXPECT_EQ(HeldLockCount(), 0);
  {
    MutexLock lock(&mu);
    EXPECT_EQ(HeldLockCount(), 1);
  }
  EXPECT_EQ(HeldLockCount(), 0);
}

TEST(MutexTest, AscendingRankOrderPasses) {
  Mutex low("test.low", lockrank::kBus);
  Mutex mid("test.mid", lockrank::kBank);
  Mutex high("test.high", lockrank::kLogger);
  MutexLock a(&low);
  MutexLock b(&mid);
  MutexLock c(&high);
  EXPECT_EQ(HeldLockCount(), 3);
}

TEST(MutexTest, NonLifoUnlockIsSupported) {
  Mutex a("test.a", lockrank::kSls);
  Mutex b("test.b", lockrank::kStore);
  a.Lock();
  b.Lock();
  a.Unlock();  // release out of acquisition order
  EXPECT_EQ(HeldLockCount(), 1);
  b.Unlock();
  EXPECT_EQ(HeldLockCount(), 0);
}

TEST(MutexRankDeathTest, InversionAbortsWithBothLockNames) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex bank("death.bank.ledger", lockrank::kBank);
        Mutex bus("death.net.bus", lockrank::kBus);
        MutexLock first(&bank);
        // Deliberate inversion. gmlint: allow(lock-order)
        MutexLock second(&bus);  // kBus < kBank
      },
      "death.net.bus.*death.bank.ledger");
}

TEST(MutexRankDeathTest, EqualRankAbortsToo) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Two metrics-rank locks held together would deadlock a concurrent
  // Merge in the other direction; equal rank is an inversion by rule.
  EXPECT_DEATH(
      {
        Mutex a("death.metric.a", lockrank::kMetric);
        Mutex b("death.metric.b", lockrank::kMetric);
        MutexLock first(&a);
        // Deliberate inversion. gmlint: allow(lock-order)
        MutexLock second(&b);
      },
      "death.metric.b.*death.metric.a");
}

TEST(MutexRankTest, DisabledCheckingAllowsInversion) {
  const bool was = SetLockRankCheckingEnabled(false);
  EXPECT_TRUE(was);  // checking defaults to on
  {
    Mutex high("test.high", lockrank::kBank);
    Mutex low("test.low", lockrank::kBus);
    MutexLock first(&high);
    // Deliberate inversion, tolerated while checking is disabled.
    // gmlint: allow(lock-order)
    MutexLock second(&low);
  }
  EXPECT_FALSE(SetLockRankCheckingEnabled(true));
  EXPECT_TRUE(LockRankCheckingEnabled());
}

TEST(ThreadTest, RunsAndJoinsOnDestruction) {
  std::atomic<int> ran{0};
  {
    Thread t([&ran] { ran.fetch_add(1); });
  }
  EXPECT_EQ(ran.load(), 1);
}

TEST(CondVarTest, NotifyWakesWaiter) {
  Mutex mu("test.cv", lockrank::kBank);
  CondVar cv;
  bool ready = false;
  Thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(mu);
  });
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyAll();
  waiter.Join();
  SUCCEED();
}

TEST(ConcurrencyTest, ManyThreadsContendOnOneMutex) {
  Mutex mu("test.contend", lockrank::kBank);
  int counter = 0;
  std::vector<Thread> threads;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < kIters; ++j) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  threads.clear();  // join all
  MutexLock lock(&mu);
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(LockRankTableTest, AscendingAndMatchingConstants) {
  std::size_t size = 0;
  const LockRankEntry* table = LockRankTable(&size);
  ASSERT_GT(size, 0u);
  // Strictly ascending: the table is the DAG in acquisition order.
  for (std::size_t i = 1; i < size; ++i) {
    EXPECT_LT(table[i - 1].rank, table[i].rank)
        << table[i - 1].name << " vs " << table[i].name;
  }
  // Endpoints pin the table to the lockrank constants.
  EXPECT_STREQ(table[0].name, "kThreadPool");
  EXPECT_EQ(table[0].rank, lockrank::kThreadPool);
  EXPECT_STREQ(table[size - 1].name, "kLogger");
  EXPECT_EQ(table[size - 1].rank, lockrank::kLogger);
}

}  // namespace
}  // namespace gm
