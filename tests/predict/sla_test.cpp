#include "predict/sla.hpp"

#include <gtest/gtest.h>

namespace gm::predict {
namespace {

std::vector<HostPriceStats> Market(int hosts = 5) {
  std::vector<HostPriceStats> market;
  for (int i = 0; i < hosts; ++i) {
    HostPriceStats stats;
    stats.host_id = "h" + std::to_string(i);
    stats.capacity = 3e9;
    stats.mean_price = 0.001;
    stats.stddev_price = 0.0003;
    market.push_back(stats);
  }
  return market;
}

TEST(SlaTest, QuoteCoversProcurementAndMargin) {
  SlaQuoter quoter(Market(), /*markup=*/0.2, /*penalty_factor=*/1.0);
  SlaTerms terms;
  terms.capacity = 6e9;
  terms.duration_seconds = 3600.0;
  terms.guarantee = 0.9;
  const auto quote = quoter.Quote(terms);
  ASSERT_TRUE(quote.ok()) << quote.status().ToString();
  EXPECT_GT(quote->procurement_rate, 0.0);
  EXPECT_NEAR(quote->procurement_cost,
              quote->procurement_rate * 3600.0, 1e-9);
  // Fee covers cost, margin and expected penalties.
  EXPECT_GT(quote->fee,
            quote->procurement_cost + quote->expected_penalty);
  EXPECT_NEAR(quote->penalty_payout, quote->fee, 1e-9);  // factor 1.0
  EXPECT_NEAR(quote->expected_penalty, 0.1 * quote->penalty_payout, 1e-9);
}

TEST(SlaTest, HigherGuaranteeRaisesProcurementCost) {
  // Procurement is monotone in the guarantee. The *fee* need not be:
  // with money-back penalties, weak guarantees are expensive to insure
  // (checked separately below).
  SlaQuoter quoter(Market(), /*markup=*/0.1, /*penalty_factor=*/0.0);
  SlaTerms terms;
  terms.capacity = 6e9;
  terms.duration_seconds = 3600.0;
  double previous_cost = 0.0;
  double previous_fee = 0.0;
  for (const double p : {0.5, 0.8, 0.9, 0.99}) {
    terms.guarantee = p;
    const auto quote = quoter.Quote(terms);
    ASSERT_TRUE(quote.ok()) << "p=" << p;
    EXPECT_GT(quote->procurement_cost, previous_cost) << "p=" << p;
    // Without penalties the fee tracks procurement monotonically.
    EXPECT_GT(quote->fee, previous_fee) << "p=" << p;
    previous_cost = quote->procurement_cost;
    previous_fee = quote->fee;
  }
}

TEST(SlaTest, MoneyBackPenaltyMakesWeakGuaranteesExpensive) {
  // With a full money-back penalty the 50% guarantee carries a huge
  // expected-refund load: it can cost more than a 99% guarantee even
  // though its procurement is cheaper.
  SlaQuoter quoter(Market(), 0.15, 1.0);
  SlaTerms terms;
  terms.capacity = 6e9;
  terms.duration_seconds = 3600.0;
  terms.guarantee = 0.5;
  const auto weak = quoter.Quote(terms);
  terms.guarantee = 0.99;
  const auto strong = quoter.Quote(terms);
  ASSERT_TRUE(weak.ok());
  ASSERT_TRUE(strong.ok());
  EXPECT_LT(weak->procurement_cost, strong->procurement_cost);
  EXPECT_GT(weak->fee / weak->procurement_cost,
            strong->fee / strong->procurement_cost);
}

TEST(SlaTest, MoreCapacityCostsMore) {
  SlaQuoter quoter(Market());
  SlaTerms terms;
  terms.duration_seconds = 3600.0;
  terms.guarantee = 0.9;
  terms.capacity = 2e9;
  const auto small = quoter.Quote(terms);
  terms.capacity = 10e9;
  const auto large = quoter.Quote(terms);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(large->fee, small->fee);
}

TEST(SlaTest, UndeliverableCapacityRejected) {
  SlaQuoter quoter(Market(2));  // 2 hosts x 3 GHz
  SlaTerms terms;
  terms.capacity = 7e9;  // more than the market holds
  terms.duration_seconds = 60.0;
  terms.guarantee = 0.9;
  EXPECT_EQ(quoter.Quote(terms).status().code(), StatusCode::kOutOfRange);
}

TEST(SlaTest, TermValidation) {
  SlaQuoter quoter(Market());
  SlaTerms terms;
  terms.capacity = 0.0;
  terms.duration_seconds = 60.0;
  terms.guarantee = 0.9;
  EXPECT_FALSE(quoter.Quote(terms).ok());
  terms.capacity = 1e9;
  terms.duration_seconds = 0.0;
  EXPECT_FALSE(quoter.Quote(terms).ok());
  terms.duration_seconds = 60.0;
  terms.guarantee = 1.0;
  EXPECT_FALSE(quoter.Quote(terms).ok());
}

TEST(SlaTest, ExcessivePenaltyExposureRejected) {
  // Money-back x20 at a 50% guarantee: expected refunds exceed the fee.
  SlaQuoter quoter(Market(), 0.1, 20.0);
  SlaTerms terms;
  terms.capacity = 3e9;
  terms.duration_seconds = 60.0;
  terms.guarantee = 0.5;
  EXPECT_EQ(quoter.Quote(terms).status().code(),
            StatusCode::kFailedPrecondition);
  // A tight guarantee brings the exposure back under control.
  terms.guarantee = 0.99;
  EXPECT_TRUE(quoter.Quote(terms).ok());
}

TEST(SlaTest, ZeroPenaltyFactorIsPlainMarkup) {
  SlaQuoter quoter(Market(), 0.25, 0.0);
  SlaTerms terms;
  terms.capacity = 3e9;
  terms.duration_seconds = 100.0;
  terms.guarantee = 0.9;
  const auto quote = quoter.Quote(terms);
  ASSERT_TRUE(quote.ok());
  EXPECT_NEAR(quote->fee, 1.25 * quote->procurement_cost, 1e-9);
  EXPECT_DOUBLE_EQ(quote->expected_penalty, 0.0);
}

}  // namespace
}  // namespace gm::predict
