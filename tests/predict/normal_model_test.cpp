#include "predict/normal_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "math/normal.hpp"

namespace gm::predict {
namespace {

HostPriceStats Stats(double capacity = 3e9, double mu = 0.001,
                     double sigma = 0.0002) {
  HostPriceStats stats;
  stats.host_id = "h1";
  stats.capacity = capacity;
  stats.mean_price = mu;
  stats.stddev_price = sigma;
  return stats;
}

TEST(NormalModelTest, PriceQuantileMatchesClosedForm) {
  NormalPricePredictor predictor(Stats());
  EXPECT_NEAR(predictor.PriceQuantile(0.5), 0.001, 1e-12);
  EXPECT_NEAR(predictor.PriceQuantile(0.9),
              0.001 + 0.0002 * math::NormalQuantile(0.9), 1e-12);
  // Higher guarantees require planning for higher prices.
  EXPECT_GT(predictor.PriceQuantile(0.99), predictor.PriceQuantile(0.8));
}

TEST(NormalModelTest, ZeroSigmaIsDeterministicPrice) {
  NormalPricePredictor predictor(Stats(3e9, 0.001, 0.0));
  EXPECT_DOUBLE_EQ(predictor.PriceQuantile(0.99), 0.001);
  EXPECT_DOUBLE_EQ(predictor.PriceQuantile(0.5), 0.001);
}

TEST(NormalModelTest, QuantileClampedAboveZero) {
  // Very low guarantee on a noisy host: quantile would be negative.
  NormalPricePredictor predictor(Stats(3e9, 0.001, 0.01));
  EXPECT_GT(predictor.PriceQuantile(0.01), 0.0);
}

TEST(NormalModelTest, CapacityAtBudgetSaturates) {
  NormalPricePredictor predictor(Stats());
  EXPECT_DOUBLE_EQ(predictor.CapacityAtBudget(0.0, 0.9), 0.0);
  const double small = predictor.CapacityAtBudget(0.0001, 0.9);
  const double medium = predictor.CapacityAtBudget(0.001, 0.9);
  const double large = predictor.CapacityAtBudget(1.0, 0.9);
  EXPECT_LT(small, medium);
  EXPECT_LT(medium, large);
  EXPECT_LT(large, 3e9);           // never exceeds capacity
  EXPECT_GT(large, 0.99 * 3e9);    // but approaches it
}

TEST(NormalModelTest, BudgetForCapacityInvertsCapacityAtBudget) {
  NormalPricePredictor predictor(Stats());
  for (double fraction : {0.1, 0.5, 0.9}) {
    const double target = fraction * 3e9;
    const auto budget = predictor.BudgetForCapacity(target, 0.9);
    ASSERT_TRUE(budget.ok());
    EXPECT_NEAR(predictor.CapacityAtBudget(*budget, 0.9), target, 1.0);
  }
}

TEST(NormalModelTest, BudgetForFullCapacityImpossible) {
  NormalPricePredictor predictor(Stats());
  EXPECT_EQ(predictor.BudgetForCapacity(3e9, 0.9).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_FALSE(predictor.BudgetForCapacity(4e9, 0.9).ok());
  EXPECT_DOUBLE_EQ(predictor.BudgetForCapacity(0.0, 0.9).value(), 0.0);
}

TEST(NormalModelTest, HigherGuaranteeNeedsBiggerBudget) {
  NormalPricePredictor predictor(Stats());
  const double target = 1.6e9;
  const auto b80 = predictor.BudgetForCapacity(target, 0.80);
  const auto b90 = predictor.BudgetForCapacity(target, 0.90);
  const auto b99 = predictor.BudgetForCapacity(target, 0.99);
  ASSERT_TRUE(b80.ok());
  ASSERT_TRUE(b90.ok());
  ASSERT_TRUE(b99.ok());
  EXPECT_LT(*b80, *b90);
  EXPECT_LT(*b90, *b99);
}

TEST(NormalModelTest, RecommendedBudgetIsAtCurveKnee) {
  NormalPricePredictor predictor(Stats());
  const double p = 0.9;
  const double knee = predictor.RecommendedBudget(p, 0.05);
  // Marginal capacity per dollar at the knee ~ 5% of the slope at zero.
  const double y = predictor.PriceQuantile(p);
  const double slope0 = 3e9 / y;
  const double eps = knee * 1e-6;
  const double slope_at_knee =
      (predictor.CapacityAtBudget(knee + eps, p) -
       predictor.CapacityAtBudget(knee, p)) /
      eps;
  EXPECT_NEAR(slope_at_knee / slope0, 0.05, 0.001);
}

TEST(NormalModelTest, GuaranteeCurveShape) {
  NormalPricePredictor predictor(Stats());
  const auto curve = predictor.GuaranteeCurve(0.9, 100.0, 50);
  ASSERT_EQ(curve.size(), 50u);
  EXPECT_DOUBLE_EQ(curve.front().budget_per_day, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().capacity, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().budget_per_day, 100.0);
  // Monotone increasing, concave.
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].capacity, curve[i - 1].capacity);
  }
  const double first_gain = curve[1].capacity - curve[0].capacity;
  const double last_gain = curve[49].capacity - curve[48].capacity;
  EXPECT_GT(first_gain, last_gain);
}

TEST(NormalModelTest, LowerGuaranteeGivesHigherCurve) {
  // Figure 3: the 80% curve lies above the 99% curve at equal budget.
  NormalPricePredictor predictor(Stats());
  const auto c80 = predictor.GuaranteeCurve(0.80, 60.0, 20);
  const auto c99 = predictor.GuaranteeCurve(0.99, 60.0, 20);
  for (std::size_t i = 1; i < c80.size(); ++i) {
    EXPECT_GT(c80[i].capacity, c99[i].capacity) << "point " << i;
  }
}

TEST(Eq6Test, UtilityWithGuaranteeAggregatesHosts) {
  std::vector<HostPriceStats> hosts;
  for (int j = 0; j < 4; ++j) {
    HostPriceStats s = Stats();
    s.host_id = "h" + std::to_string(j);
    hosts.push_back(s);
  }
  const auto capacity = UtilityWithGuarantee(hosts, 0.01, 0.9);
  ASSERT_TRUE(capacity.ok());
  EXPECT_GT(*capacity, 0.0);
  EXPECT_LT(*capacity, 4 * 3e9);
  // More budget, more guaranteed capacity.
  const auto richer = UtilityWithGuarantee(hosts, 0.1, 0.9);
  ASSERT_TRUE(richer.ok());
  EXPECT_GT(*richer, *capacity);
}

TEST(Eq6Test, BudgetForGuaranteedCapacityInverts) {
  std::vector<HostPriceStats> hosts;
  for (int j = 0; j < 3; ++j) {
    HostPriceStats s = Stats(2e9, 0.002, 0.0005);
    s.host_id = "h" + std::to_string(j);
    hosts.push_back(s);
  }
  const double required = 3e9;  // half the aggregate
  const auto budget = BudgetForGuaranteedCapacity(hosts, required, 0.9);
  ASSERT_TRUE(budget.ok());
  const auto achieved = UtilityWithGuarantee(hosts, *budget, 0.9);
  ASSERT_TRUE(achieved.ok());
  EXPECT_NEAR(*achieved, required, 1e-3 * required);
}

TEST(Eq6Test, ImpossibleCapacityRejected) {
  std::vector<HostPriceStats> hosts{Stats()};
  EXPECT_EQ(BudgetForGuaranteedCapacity(hosts, 4e9, 0.9).status().code(),
            StatusCode::kOutOfRange);
}

TEST(Eq6Test, BudgetForDeadlineScalesInversely) {
  std::vector<HostPriceStats> hosts;
  for (int j = 0; j < 5; ++j) {
    HostPriceStats s = Stats();
    s.host_id = "h" + std::to_string(j);
    hosts.push_back(s);
  }
  const Cycles work = 1e13;
  const auto relaxed = BudgetForDeadline(hosts, work, 36000.0, 0.9);
  const auto tight = BudgetForDeadline(hosts, work, 3600.0, 0.9);
  ASSERT_TRUE(relaxed.ok());
  ASSERT_TRUE(tight.ok());
  EXPECT_GT(*tight, *relaxed);  // tighter deadline costs more
  EXPECT_FALSE(BudgetForDeadline(hosts, work, 0.0, 0.9).ok());
}

}  // namespace
}  // namespace gm::predict
