#include "predict/empirical_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "math/distributions.hpp"
#include "math/stats.hpp"
#include "predict/normal_model.hpp"

namespace gm::predict {
namespace {

TEST(EmpiricalModelTest, CreateValidation) {
  EXPECT_FALSE(EmpiricalPricePredictor::Create("h", 0.0, 1.0, {1.0}, 0.1).ok());
  EXPECT_FALSE(EmpiricalPricePredictor::Create("h", 1e9, 0.0, {1.0}, 0.1).ok());
  EXPECT_FALSE(EmpiricalPricePredictor::Create("h", 1e9, 1.0, {1.0}, 0.0).ok());
  EXPECT_FALSE(EmpiricalPricePredictor::Create("h", 1e9, 1.0, {}, 0.1).ok());
  EXPECT_FALSE(
      EmpiricalPricePredictor::Create("h", 1e9, 1.0, {-0.1, 1.1}, 0.1).ok());
  // Empty distribution (all zero proportions).
  EXPECT_EQ(EmpiricalPricePredictor::Create("h", 1e9, 1.0, {0.0, 0.0}, 0.1)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(EmpiricalModelTest, QuantileOfUniformSlots) {
  // Four equally likely brackets of width 0.1 (host_scale 1): the CDF is
  // linear, so quantiles interpolate linearly over [0, 0.4].
  const auto model = EmpiricalPricePredictor::Create(
      "h", 1e9, 1.0, {0.25, 0.25, 0.25, 0.25}, 0.1);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->PriceQuantile(0.25), 0.1, 1e-12);
  EXPECT_NEAR(model->PriceQuantile(0.5), 0.2, 1e-12);
  EXPECT_NEAR(model->PriceQuantile(0.875), 0.35, 1e-12);
  EXPECT_NEAR(model->PriceQuantile(0.125), 0.05, 1e-12);
}

TEST(EmpiricalModelTest, QuantileOfSkewedSlots) {
  // 90% of mass in the first bracket, 10% in the last.
  const auto model = EmpiricalPricePredictor::Create(
      "h", 1e9, 1.0, {0.9, 0.0, 0.0, 0.1}, 1.0);
  ASSERT_TRUE(model.ok());
  EXPECT_LT(model->PriceQuantile(0.5), 1.0);       // well inside bracket 0
  EXPECT_NEAR(model->PriceQuantile(0.9), 1.0, 1e-9);
  EXPECT_GT(model->PriceQuantile(0.95), 3.0);      // into the tail bracket
}

TEST(EmpiricalModelTest, HostScaleConvertsToWholeHostPrice) {
  const auto model = EmpiricalPricePredictor::Create(
      "h", 1e9, /*host_scale=*/2e9, {1.0}, 1e-12);
  ASSERT_TRUE(model.ok());
  // Quantiles inside the single bracket scale by host_scale.
  EXPECT_NEAR(model->PriceQuantile(0.5), 0.5 * 1e-12 * 2e9, 1e-9);
}

TEST(EmpiricalModelTest, CapacityBudgetRoundTrip) {
  const auto model = EmpiricalPricePredictor::Create(
      "h", 3e9, 1.0, {0.2, 0.5, 0.3}, 0.001);
  ASSERT_TRUE(model.ok());
  for (const double fraction : {0.1, 0.5, 0.9}) {
    const double target = fraction * 3e9;
    const auto budget = model->BudgetForCapacity(target, 0.9);
    ASSERT_TRUE(budget.ok());
    EXPECT_NEAR(model->CapacityAtBudget(*budget, 0.9), target, 1.0);
  }
  EXPECT_FALSE(model->BudgetForCapacity(3e9, 0.9).ok());
  EXPECT_DOUBLE_EQ(model->CapacityAtBudget(0.0, 0.9), 0.0);
}

TEST(EmpiricalModelTest, MatchesNormalModelOnGaussianPrices) {
  // Feed gaussian prices through a slot table; the empirical quantiles
  // should approximate the parametric ones away from the tails.
  Rng rng(9);
  math::NormalSampler sampler(0.5, 0.08);
  market::SlotTable table(5000, 20, 1.0);
  math::RunningMoments moments;
  for (int i = 0; i < 5000; ++i) {
    const double x = std::clamp(sampler.Sample(rng), 0.0, 0.999);
    table.Add(x);
    moments.Add(x);
  }
  const auto empirical =
      EmpiricalPricePredictor::FromSlotTable("h", 1e9, 1.0, table);
  ASSERT_TRUE(empirical.ok());
  HostPriceStats stats;
  stats.host_id = "h";
  stats.capacity = 1e9;
  stats.mean_price = moments.mean();
  stats.stddev_price = moments.stddev();
  const NormalPricePredictor parametric(stats);
  for (const double p : {0.2, 0.5, 0.8, 0.9}) {
    EXPECT_NEAR(empirical->PriceQuantile(p), parametric.PriceQuantile(p),
                0.06)
        << "p=" << p;
  }
}

TEST(EmpiricalModelTest, BeatsNormalModelOnHeavyTail) {
  // A two-regime price process (cheap baseline + rare expensive spikes):
  // the normal model's 90% quantile overshoots wildly because sigma is
  // inflated by the spikes; the empirical quantile stays near the
  // baseline. This is exactly the "arbitrary distributions" future-work
  // case the paper calls out.
  Rng rng(10);
  market::SlotTable table(5000, 20, 1.0);
  math::RunningMoments moments;
  for (int i = 0; i < 5000; ++i) {
    const double x = (i % 20 == 0) ? rng.Uniform(0.8, 0.95)
                                   : rng.Uniform(0.01, 0.05);
    table.Add(x);
    moments.Add(x);
  }
  const auto empirical =
      EmpiricalPricePredictor::FromSlotTable("h", 1e9, 1.0, table);
  ASSERT_TRUE(empirical.ok());
  HostPriceStats stats;
  stats.host_id = "h";
  stats.capacity = 1e9;
  stats.mean_price = moments.mean();
  stats.stddev_price = moments.stddev();
  const NormalPricePredictor parametric(stats);
  // True 90% quantile is ~0.05 (the spikes are only 5% of mass).
  EXPECT_LT(empirical->PriceQuantile(0.90), 0.10);
  EXPECT_GT(parametric.PriceQuantile(0.90), 0.20);  // misled by sigma
}

}  // namespace
}  // namespace gm::predict
