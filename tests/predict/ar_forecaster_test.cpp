#include "predict/ar_forecaster.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace gm::predict {
namespace {

/// Synthetic spot-price series with batch-job dynamics: slow mean-reverting
/// demand plus sharp drops when "batches complete" — the pattern the paper
/// says breaks the raw AR fit.
std::vector<double> BatchPriceSeries(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> series;
  series.reserve(n);
  double level = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    level += 0.05 * (1.0 - level) + rng.Uniform(-0.02, 0.02);
    double price = level;
    if (i % 97 > 60) price *= 1.8;           // batch running: high demand
    if (i % 97 == 60) price *= 0.4;          // batch completed: sharp drop
    series.push_back(std::max(price, 0.01));
  }
  return series;
}

TEST(ArForecasterTest, FitRejectsBadConfig) {
  const auto series = BatchPriceSeries(100, 1);
  EXPECT_FALSE(ArPriceForecaster::Fit(series, {0, 10.0}).ok());
  EXPECT_FALSE(ArPriceForecaster::Fit(series, {6, -1.0}).ok());
}

TEST(ArForecasterTest, FitRejectsTooShortSeries) {
  EXPECT_FALSE(ArPriceForecaster::Fit({1.0, 2.0}, {6, 0.0}).ok());
}

TEST(ArForecasterTest, SmoothingReducesTrainingRoughness) {
  const auto series = BatchPriceSeries(400, 2);
  const auto fit = ArPriceForecaster::Fit(series, {6, 50.0});
  ASSERT_TRUE(fit.ok());
  const auto& smoothed = fit->smoothed_training();
  ASSERT_EQ(smoothed.size(), series.size());
  auto roughness = [](const std::vector<double>& x) {
    double sum = 0.0;
    for (std::size_t i = 1; i < x.size(); ++i)
      sum += (x[i] - x[i - 1]) * (x[i] - x[i - 1]);
    return sum;
  };
  EXPECT_LT(roughness(smoothed), 0.5 * roughness(series));
}

TEST(ArForecasterTest, ForecastLengthAndDeterminism) {
  const auto series = BatchPriceSeries(300, 3);
  const auto fit = ArPriceForecaster::Fit(series, {4, 10.0});
  ASSERT_TRUE(fit.ok());
  const auto f1 = fit->Forecast(series, 12);
  const auto f2 = fit->Forecast(series, 12);
  ASSERT_EQ(f1.size(), 12u);
  EXPECT_EQ(f1, f2);
  EXPECT_DOUBLE_EQ(fit->ForecastAt(series, 12), f1.back());
}

TEST(ArForecasterTest, BeatsNaiveOnMeanRevertingSeries) {
  // The paper's Figure 4 result: AR(6) + smoothing epsilon (8.96%) beats
  // the persistence benchmark (9.44%). Reproduce the ordering on the
  // synthetic batch workload: train on the first half, walk-forward
  // validate on the second half with a multi-step horizon.
  const auto series = BatchPriceSeries(1200, 4);
  const std::vector<double> train(series.begin(), series.begin() + 600);
  const auto fit = ArPriceForecaster::Fit(train, {6, 50.0});
  ASSERT_TRUE(fit.ok());

  const int horizon = 30;
  const auto ar_run = WalkForward(*fit, series, 600, horizon);
  const auto naive_run = WalkForward(NaiveForecaster(), series, 600, horizon);
  const auto ar_eps =
      PredictionEpsilon(ar_run.predictions, ar_run.measurements);
  const auto naive_eps =
      PredictionEpsilon(naive_run.predictions, naive_run.measurements);
  ASSERT_TRUE(ar_eps.ok());
  ASSERT_TRUE(naive_eps.ok());
  EXPECT_LT(*ar_eps, *naive_eps);
  // Both should be small relative errors on this well-behaved series.
  EXPECT_LT(*ar_eps, 0.5);
}

TEST(PredictionEpsilonTest, KnownValue) {
  // Pairs (1, 1.1) and (2, 1.9): sd = 0.1/sqrt(2) and 0.1/sqrt(2),
  // mu_d = 1.5 -> eps = (0.2/sqrt(2))/2 / 1.5.
  const auto eps = PredictionEpsilon({1.0, 2.0}, {1.1, 1.9});
  ASSERT_TRUE(eps.ok());
  EXPECT_NEAR(*eps, (0.2 / std::sqrt(2.0)) / 2.0 / 1.5, 1e-12);
}

TEST(PredictionEpsilonTest, PerfectPredictionIsZero) {
  const auto eps = PredictionEpsilon({1.0, 2.0, 3.0}, {1.0, 2.0, 3.0});
  ASSERT_TRUE(eps.ok());
  EXPECT_DOUBLE_EQ(*eps, 0.0);
}

TEST(PredictionEpsilonTest, Validation) {
  EXPECT_FALSE(PredictionEpsilon({1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(PredictionEpsilon({}, {}).ok());
  EXPECT_FALSE(PredictionEpsilon({1.0}, {0.0}).ok());  // zero mean
}

TEST(WalkForwardTest, AlignsPredictionsWithMeasurements) {
  // Forecasting a known linear ramp with the naive forecaster: the
  // h-step-ahead prediction is series[t-1], the measurement series[t+h-1].
  std::vector<double> ramp;
  for (int i = 0; i < 50; ++i) ramp.push_back(static_cast<double>(i));
  const auto run = WalkForward(NaiveForecaster(), ramp, 10, 3);
  ASSERT_FALSE(run.predictions.empty());
  ASSERT_EQ(run.predictions.size(), run.measurements.size());
  for (std::size_t i = 0; i < run.predictions.size(); ++i) {
    EXPECT_DOUBLE_EQ(run.measurements[i] - run.predictions[i], 3.0);
  }
}

}  // namespace
}  // namespace gm::predict
