#include "predict/portfolio.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "math/distributions.hpp"

namespace gm::predict {
namespace {

TEST(PortfolioTest, TwoAssetMinimumVarianceClosedForm) {
  // Independent assets with variances 1 and 4: min-variance weights are
  // inversely proportional to variance -> (0.8, 0.2).
  const auto optimizer = PortfolioOptimizer::Create(
      {1.0, 1.0}, {{1.0, 0.0}, {0.0, 4.0}});
  ASSERT_TRUE(optimizer.ok());
  const auto portfolio = optimizer->MinimumVariance();
  ASSERT_TRUE(portfolio.ok());
  EXPECT_NEAR(portfolio->weights[0], 0.8, 1e-12);
  EXPECT_NEAR(portfolio->weights[1], 0.2, 1e-12);
  EXPECT_NEAR(portfolio->variance, 0.8, 1e-12);  // w'Sw = 0.64 + 0.16
}

TEST(PortfolioTest, WeightsSumToOne) {
  const auto optimizer = PortfolioOptimizer::Create(
      {1.0, 2.0, 3.0},
      {{2.0, 0.3, 0.1}, {0.3, 1.5, 0.2}, {0.1, 0.2, 3.0}});
  ASSERT_TRUE(optimizer.ok());
  const auto min_var = optimizer->MinimumVariance();
  ASSERT_TRUE(min_var.ok());
  double sum = 0.0;
  for (double w : min_var->weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-10);

  const auto targeted = optimizer->ForTargetReturn(2.5);
  ASSERT_TRUE(targeted.ok());
  sum = 0.0;
  for (double w : targeted->weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-10);
  EXPECT_NEAR(targeted->expected_return, 2.5, 1e-10);
}

TEST(PortfolioTest, MinimumVarianceIsGlobalMinimum) {
  const auto optimizer = PortfolioOptimizer::Create(
      {1.0, 2.0, 1.5},
      {{1.0, 0.2, 0.1}, {0.2, 2.0, 0.3}, {0.1, 0.3, 1.2}});
  ASSERT_TRUE(optimizer.ok());
  const auto min_var = optimizer->MinimumVariance();
  ASSERT_TRUE(min_var.ok());
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    // Random weights on the simplex (may include shorts via shifts).
    math::Vector w(3);
    double sum = 0.0;
    for (double& v : w) {
      v = rng.Uniform(-0.5, 1.5);
      sum += v;
    }
    for (double& v : w) v /= sum;
    EXPECT_GE(optimizer->Evaluate(w).variance,
              min_var->variance - 1e-9);
  }
}

TEST(PortfolioTest, FrontierVarianceIncreasesWithReturnAboveMin) {
  const auto optimizer = PortfolioOptimizer::Create(
      {1.0, 2.0, 3.0},
      {{1.0, 0.1, 0.0}, {0.1, 1.0, 0.1}, {0.0, 0.1, 1.0}});
  ASSERT_TRUE(optimizer.ok());
  const auto frontier = optimizer->EfficientFrontier(10);
  ASSERT_TRUE(frontier.ok());
  ASSERT_EQ(frontier->size(), 10u);
  for (std::size_t i = 1; i < frontier->size(); ++i) {
    EXPECT_GT((*frontier)[i].target_return, (*frontier)[i - 1].target_return);
    EXPECT_GE((*frontier)[i].variance, (*frontier)[i - 1].variance - 1e-12);
  }
}

TEST(PortfolioTest, EqualMeansMakeFrontierDegenerate) {
  const auto optimizer = PortfolioOptimizer::Create(
      {1.0, 1.0}, {{1.0, 0.0}, {0.0, 1.0}});
  ASSERT_TRUE(optimizer.ok());
  EXPECT_TRUE(optimizer->MinimumVariance().ok());
  EXPECT_FALSE(optimizer->ForTargetReturn(1.5).ok());
}

TEST(PortfolioTest, CreateValidation) {
  EXPECT_FALSE(PortfolioOptimizer::Create({}, math::Matrix(0, 0)).ok());
  EXPECT_FALSE(
      PortfolioOptimizer::Create({1.0}, {{1.0, 0.0}, {0.0, 1.0}}).ok());
  // Indefinite "covariance".
  EXPECT_FALSE(
      PortfolioOptimizer::Create({1.0, 1.0}, {{1.0, 2.0}, {2.0, 1.0}}).ok());
}

TEST(PortfolioTest, FromReturnSeriesEstimatesMoments) {
  Rng rng(17);
  math::NormalSampler a(5.0, 1.0);
  math::NormalSampler b(8.0, 2.0);
  std::vector<std::vector<double>> returns(2);
  for (int i = 0; i < 20000; ++i) {
    returns[0].push_back(a.Sample(rng));
    returns[1].push_back(b.Sample(rng));
  }
  const auto optimizer = PortfolioOptimizer::FromReturnSeries(returns);
  ASSERT_TRUE(optimizer.ok());
  EXPECT_NEAR(optimizer->mean_returns()[0], 5.0, 0.05);
  EXPECT_NEAR(optimizer->mean_returns()[1], 8.0, 0.05);
  // Min-variance tilts toward the lower-variance asset.
  const auto min_var = optimizer->MinimumVariance();
  ASSERT_TRUE(min_var.ok());
  EXPECT_GT(min_var->weights[0], min_var->weights[1]);
}

TEST(PortfolioTest, FromReturnSeriesValidation) {
  EXPECT_FALSE(PortfolioOptimizer::FromReturnSeries({}).ok());
  EXPECT_FALSE(PortfolioOptimizer::FromReturnSeries({{1.0}}).ok());
  EXPECT_FALSE(
      PortfolioOptimizer::FromReturnSeries({{1.0, 2.0}, {1.0}}).ok());
}

TEST(PortfolioTest, RiskFreePortfolioHedgesDownsideRisk) {
  // The paper's Figure 5 property in miniature: aggregate performance of
  // the min-variance portfolio has lower variance than equal shares.
  Rng rng(23);
  const std::size_t hosts = 10;
  std::vector<math::NormalSampler> samplers;
  std::vector<std::vector<double>> history(hosts);
  math::NormalSampler mean_gen(5.0, 1.0);
  math::NormalSampler sd_gen(0.5, 0.3);
  for (std::size_t h = 0; h < hosts; ++h) {
    samplers.emplace_back(mean_gen.Sample(rng),
                          std::fabs(sd_gen.Sample(rng)) + 0.05);
  }
  for (int t = 0; t < 500; ++t) {
    for (std::size_t h = 0; h < hosts; ++h)
      history[h].push_back(samplers[h].Sample(rng));
  }
  const auto optimizer = PortfolioOptimizer::FromReturnSeries(history);
  ASSERT_TRUE(optimizer.ok());
  const auto min_var = optimizer->MinimumVariance();
  ASSERT_TRUE(min_var.ok());
  const std::vector<double> risk_free = ClampLongOnly(min_var->weights);
  const std::vector<double> equal(hosts, 1.0 / hosts);

  // Fresh evaluation period.
  std::vector<double> rf_series, eq_series;
  for (int t = 0; t < 2000; ++t) {
    double rf = 0.0, eq = 0.0;
    for (std::size_t h = 0; h < hosts; ++h) {
      const double r = samplers[h].Sample(rng);
      rf += risk_free[h] * r;
      eq += equal[h] * r;
    }
    rf_series.push_back(rf);
    eq_series.push_back(eq);
  }
  auto variance = [](const std::vector<double>& x) {
    double mean = 0.0;
    for (double v : x) mean += v;
    mean /= static_cast<double>(x.size());
    double sum = 0.0;
    for (double v : x) sum += (v - mean) * (v - mean);
    return sum / static_cast<double>(x.size());
  };
  EXPECT_LT(variance(rf_series), variance(eq_series));
}

TEST(ClampLongOnlyTest, ClipsAndRenormalizes) {
  const auto clamped = ClampLongOnly({0.5, -0.2, 0.7});
  EXPECT_DOUBLE_EQ(clamped[1], 0.0);
  EXPECT_NEAR(clamped[0] + clamped[2], 1.0, 1e-12);
  EXPECT_NEAR(clamped[0] / clamped[2], 0.5 / 0.7, 1e-12);
}

TEST(ClampLongOnlyTest, AllNegativeFallsBackToUniform) {
  const auto clamped = ClampLongOnly({-1.0, -2.0});
  EXPECT_DOUBLE_EQ(clamped[0], 0.5);
  EXPECT_DOUBLE_EQ(clamped[1], 0.5);
}

TEST(ReturnFromPriceTest, InverseWithFloor) {
  EXPECT_DOUBLE_EQ(ReturnFromPrice(0.01), 100.0);
  EXPECT_DOUBLE_EQ(ReturnFromPrice(0.0, 1e-6), 1e6);
}

}  // namespace
}  // namespace gm::predict
