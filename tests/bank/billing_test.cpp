#include "bank/billing.hpp"

#include <gtest/gtest.h>

namespace gm::bank {
namespace {

class BillingTest : public ::testing::Test {
 protected:
  BillingTest()
      : bank_(crypto::TestGroup(), 8),
        alice_(crypto::KeyPair::Generate(crypto::TestGroup(), rng_)) {
    EXPECT_TRUE(bank_.CreateAccount("alice", alice_.public_key()).ok());
    EXPECT_TRUE(bank_.CreateAccount("broker", {}).ok());
    EXPECT_TRUE(bank_.CreateAccount("auctioneer:h1", {}).ok());
    EXPECT_TRUE(bank_.Mint("alice", Money::Dollars(100), sim::Minutes(1)).ok());
    Transfer("alice", "broker", Money::Dollars(40), sim::Minutes(2));
    EXPECT_TRUE(bank_.CreateSubAccount("broker", "broker/job-1").ok());
    EXPECT_TRUE(bank_
                    .InternalTransfer("broker", "broker/job-1",
                                      Money::Dollars(40), sim::Minutes(3))
                    .ok());
    EXPECT_TRUE(bank_
                    .InternalTransfer("broker/job-1", "auctioneer:h1",
                                      Money::Dollars(25), sim::Minutes(4))
                    .ok());
    EXPECT_TRUE(bank_
                    .InternalTransfer("auctioneer:h1", "broker/job-1",
                                      Money::Dollars(5), sim::Minutes(50))
                    .ok());
  }

  void Transfer(const std::string& from, const std::string& to, Money amount,
                std::int64_t at) {
    const auto nonce = bank_.TransferNonce(from);
    const auto auth = alice_.Sign(
        TransferAuthPayload(from, to, amount, *nonce), rng_);
    ASSERT_TRUE(bank_.Transfer(from, to, amount, auth, at).ok());
  }

  Rng rng_{4};
  bank::Bank bank_;
  crypto::KeyPair alice_;
};

TEST_F(BillingTest, StatementBalancesAndLines) {
  const auto statement =
      BuildStatement(bank_, "broker/job-1", 0, sim::Hours(1));
  ASSERT_TRUE(statement.ok());
  // Credits: 40 in from broker, 5 refund from the host.
  EXPECT_EQ(statement->total_credits, Money::Dollars(45));
  // Debits: 25 to the host.
  EXPECT_EQ(statement->total_debits, Money::Dollars(25));
  EXPECT_EQ(statement->NetChange(), Money::Dollars(20));
  EXPECT_EQ(statement->closing_balance, Money::Dollars(20));
  ASSERT_EQ(statement->lines.size(), 3u);
  EXPECT_EQ(statement->lines[0].counterparty, "broker");
  EXPECT_EQ(statement->lines[1].counterparty, "auctioneer:h1");
  EXPECT_EQ(statement->lines[1].amount, -Money::Dollars(25));
}

TEST_F(BillingTest, StatementWindowFilters) {
  // Only the refund happened at/after minute 30.
  const auto statement = BuildStatement(bank_, "broker/job-1",
                                        sim::Minutes(30), sim::Hours(1));
  ASSERT_TRUE(statement.ok());
  ASSERT_EQ(statement->lines.size(), 1u);
  EXPECT_EQ(statement->lines[0].amount, Money::Dollars(5));
  EXPECT_EQ(statement->total_debits, Money::Zero());
}

TEST_F(BillingTest, MintShowsAsCreditFromMint) {
  const auto statement = BuildStatement(bank_, "alice", 0, sim::Hours(1));
  ASSERT_TRUE(statement.ok());
  ASSERT_FALSE(statement->lines.empty());
  EXPECT_EQ(statement->lines[0].kind, "mint");
  EXPECT_EQ(statement->lines[0].counterparty, "(mint)");
  EXPECT_EQ(statement->lines[0].amount, Money::Dollars(100));
}

TEST_F(BillingTest, UnknownAccountFails) {
  EXPECT_FALSE(BuildStatement(bank_, "ghost", 0, 100).ok());
}

TEST_F(BillingTest, RenderStatementContainsTotals) {
  const auto statement =
      BuildStatement(bank_, "broker/job-1", 0, sim::Hours(1));
  ASSERT_TRUE(statement.ok());
  const std::string text = RenderStatement(*statement);
  EXPECT_NE(text.find("broker/job-1"), std::string::npos);
  EXPECT_NE(text.find("auctioneer:h1"), std::string::npos);
  EXPECT_NE(text.find("closing balance $20.00"), std::string::npos);
}

TEST_F(BillingTest, TotalFlowByPrefix) {
  // Operator view: job sub-accounts -> host accounts.
  EXPECT_EQ(TotalFlow(bank_, "broker/", "auctioneer:", 0, sim::Hours(1)),
            Money::Dollars(25));
  // Refund direction.
  EXPECT_EQ(TotalFlow(bank_, "auctioneer:", "broker/", 0, sim::Hours(1)),
            Money::Dollars(5));
  // Window cuts the refund off.
  EXPECT_EQ(TotalFlow(bank_, "auctioneer:", "broker/", 0, sim::Minutes(30)),
            Money::Zero());
}

}  // namespace
}  // namespace gm::bank
