// TransferBatch equivalence contract: batching transfers by
// (debtor shard, creditor shard) pair is a pure mechanical optimization
// — the resulting ledgers and statuses must be bit-identical to calling
// Transfer() one-by-one in the same grouped order. Also pins the
// ReplaySettlement adversary surface: claimed ids bounce with
// kAlreadyClaimed, unknown ids with kNotFound, and neither ever mutates
// a ledger.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bank/federation/router.hpp"
#include "bank/federation/shard.hpp"
#include "crypto/token.hpp"

namespace gm::bank::federation {
namespace {

constexpr std::size_t kShards = 4;

std::string AccountOn(std::size_t shard, const std::string& prefix) {
  for (int i = 0;; ++i) {
    const std::string id = prefix + std::to_string(i);
    if (StripeFor(id, kShards) == shard) return id;
  }
}

struct Federation {
  Federation() {
    std::vector<BankShard*> ptrs;
    for (std::size_t i = 0; i < kShards; ++i) {
      shards.push_back(std::make_unique<BankShard>(i));
      ptrs.push_back(shards.back().get());
    }
    router = std::make_unique<FederationRouter>(ptrs, &registry);
  }

  std::vector<std::unique_ptr<BankShard>> shards;
  crypto::TokenRegistry registry;
  std::unique_ptr<FederationRouter> router;
};

// The canonical grouped order TransferBatch documents: ascending
// (debtor shard, creditor shard) pairs, input order within a group.
std::vector<std::size_t> GroupedOrder(
    const std::vector<TransferRequest>& requests) {
  std::map<std::pair<std::size_t, std::size_t>, std::vector<std::size_t>>
      groups;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    groups[{StripeFor(requests[i].from, kShards),
            StripeFor(requests[i].to, kShards)}]
        .push_back(i);
  }
  std::vector<std::size_t> order;
  for (const auto& [key, indices] : groups)
    order.insert(order.end(), indices.begin(), indices.end());
  return order;
}

// A workload that exercises every batch path: intra-shard fast path,
// cross-shard settlement, missing creditor (fail-fast, no hold),
// missing debtor and insufficient funds (per-item prepare failures).
std::vector<TransferRequest> MixedRequests() {
  const std::string a0 = AccountOn(0, "alpha");
  const std::string a1 = AccountOn(1, "bravo");
  const std::string a2 = AccountOn(2, "carol");
  const std::string a3 = AccountOn(3, "delta");
  const std::string a0b = AccountOn(0, "echo");
  return {
      {a0, a1, Money::Dollars(5)},    // cross 0->1
      {a0, a0b, Money::Dollars(3)},   // intra shard 0
      {a2, a3, Money::Dollars(7)},    // cross 2->3
      {a0, a1, Money::Dollars(2)},    // cross 0->1, same group as #0
      {a1, a2, Money::Dollars(4)},    // cross 1->2
      {a0, AccountOn(3, "ghost"),     // creditor never created
       Money::Dollars(1)},
      {AccountOn(2, "phantom"), a0,   // debtor never created
       Money::Dollars(1)},
      {a3, a0, Money::Dollars(900)},  // insufficient funds
      {a3, a0, Money::Dollars(6)},    // cross 3->0, succeeds after the fail
  };
}

void Seed(Federation& fed) {
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    for (const char* prefix : {"alpha", "bravo", "carol", "delta", "echo"}) {
      const std::string id = AccountOn(shard, prefix);
      ASSERT_TRUE(fed.router->CreateAccount(id, Money::Dollars(50)).ok());
    }
  }
}

TEST(FederationBatchTest, BatchedMatchesOneByOneInGroupedOrder) {
  Federation batched;
  Federation serial;
  Seed(batched);
  Seed(serial);
  ASSERT_EQ(batched.router->LedgerHash(), serial.router->LedgerHash());

  const std::vector<TransferRequest> requests = MixedRequests();
  const std::vector<Status> batch_statuses =
      batched.router->TransferBatch(requests, /*now_us=*/1000);

  std::vector<Status> serial_statuses(requests.size(), Status::Ok());
  for (const std::size_t i : GroupedOrder(requests)) {
    serial_statuses[i] = serial.router->Transfer(
        requests[i].from, requests[i].to, requests[i].amount, 1000);
  }

  // Statuses agree per REQUEST (the batch returns them in input order).
  ASSERT_EQ(batch_statuses.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(batch_statuses[i].code(), serial_statuses[i].code())
        << "request " << i;
  }

  // Bit-identical ledgers: same balances, same settlement ids journaled
  // and applied, same holds (none). The ledger hash covers all of it.
  EXPECT_EQ(batched.router->LedgerHash(), serial.router->LedgerHash());
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    for (const char* prefix : {"alpha", "bravo", "carol", "delta", "echo"}) {
      const std::string id = AccountOn(shard, prefix);
      EXPECT_EQ(batched.router->Balance(id).value(),
                serial.router->Balance(id).value())
          << id;
    }
  }
  EXPECT_TRUE(batched.router->CheckConservation().ok());
  EXPECT_TRUE(serial.router->CheckConservation().ok());
  EXPECT_EQ(batched.router->PendingSettlements(), 0u);

  // Settlement counters line up too: started == completed + aborted.
  const RouterStats bs = batched.router->Stats();
  const RouterStats ss = serial.router->Stats();
  EXPECT_EQ(bs.intra_transfers, ss.intra_transfers);
  EXPECT_EQ(bs.settlements_started, ss.settlements_started);
  EXPECT_EQ(bs.settlements_completed, ss.settlements_completed);
  EXPECT_EQ(bs.settlements_aborted, ss.settlements_aborted);
}

TEST(FederationBatchTest, RepeatedBatchesKeepLedgersAligned) {
  Federation batched;
  Federation serial;
  Seed(batched);
  Seed(serial);
  const std::vector<TransferRequest> requests = MixedRequests();
  for (int tick = 0; tick < 5; ++tick) {
    const std::int64_t now = 1000 + tick;
    batched.router->TransferBatch(requests, now);
    for (const std::size_t i : GroupedOrder(requests))
      (void)serial.router->Transfer(requests[i].from, requests[i].to,
                                    requests[i].amount, now);
    ASSERT_EQ(batched.router->LedgerHash(), serial.router->LedgerHash())
        << "tick " << tick;
  }
  EXPECT_TRUE(batched.router->CheckConservation().ok());
}

TEST(FederationBatchTest, EmptyBatchIsANoOp) {
  Federation fed;
  Seed(fed);
  const std::string before = fed.router->LedgerHash();
  EXPECT_TRUE(fed.router->TransferBatch({}, 1).empty());
  EXPECT_EQ(fed.router->LedgerHash(), before);
}

TEST(FederationBatchTest, ReplayOfClaimedSettlementBounces) {
  Federation fed;
  Seed(fed);
  const std::string from = AccountOn(0, "alpha");
  const std::string to = AccountOn(1, "bravo");
  ASSERT_TRUE(fed.router->Transfer(from, to, Money::Dollars(5), 10).ok());

  // Shard 0 minted "s0-1" for its first settlement (seqs start at 1) and
  // the registry claimed it; re-presenting it is a detected double-spend
  // attempt.
  ASSERT_TRUE(fed.router->IsSettlementSpent("s0-1"));
  const std::string before = fed.router->LedgerHash();
  const Status replay = fed.router->ReplaySettlement("s0-1");
  EXPECT_EQ(replay.code(), StatusCode::kAlreadyClaimed);
  EXPECT_EQ(fed.router->Stats().replays_rejected, 1u);
  // Nothing moved: the probe is observed-and-refused, never applied.
  EXPECT_EQ(fed.router->LedgerHash(), before);
  EXPECT_EQ(fed.router->Balance(to).value(), Money::Dollars(55));

  // Replaying twice keeps bouncing (and keeps counting).
  EXPECT_EQ(fed.router->ReplaySettlement("s0-1").code(),
            StatusCode::kAlreadyClaimed);
  EXPECT_EQ(fed.router->Stats().replays_rejected, 2u);
}

TEST(FederationBatchTest, ReplayOfUnknownSettlementIsNotFound) {
  Federation fed;
  Seed(fed);
  // Never-claimed ids are distinguishable from claimed ones: there is
  // nothing to replay, and the bounce counter (kAlreadyClaimed only)
  // does not move.
  EXPECT_EQ(fed.router->ReplaySettlement("s3-999").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(fed.router->Stats().replays_rejected, 0u);
  EXPECT_FALSE(fed.router->IsSettlementSpent("s3-999"));
}

}  // namespace
}  // namespace gm::bank::federation
