// Durability and crash-recovery tests for the Bank's write-ahead journal:
// every ledger mutation must survive a crash, replay must be deterministic
// (same log => identical ledger hash), and money is conserved to the
// micro-dollar across recovery.
#include <gtest/gtest.h>

#include <filesystem>

#include "bank/bank.hpp"
#include "store/store.hpp"

namespace gm::bank {
namespace {

namespace fs = std::filesystem;

fs::path FreshDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("gm_bankdur_" + name);
  fs::remove_all(dir);
  return dir;
}

class BankDurabilityTest : public ::testing::Test {
 protected:
  BankDurabilityTest()
      : alice_(crypto::KeyPair::Generate(crypto::TestGroup(), rng_)),
        bob_(crypto::KeyPair::Generate(crypto::TestGroup(), rng_)) {}

  std::unique_ptr<store::DurableStore> OpenStore(const fs::path& dir,
                                                 store::StoreOptions options = {}) {
    auto store = store::DurableStore::Open(dir.string(), options);
    EXPECT_TRUE(store.ok()) << store.status().message();
    return std::move(*store);
  }

  // A bank attached to `store`, with alice/bob funded.
  std::unique_ptr<Bank> MakeBank(store::DurableStore* store) {
    auto bank = std::make_unique<Bank>(crypto::TestGroup(), 42);
    if (store != nullptr) bank->AttachStore(store);
    EXPECT_TRUE(bank->CreateAccount("alice", alice_.public_key()).ok());
    EXPECT_TRUE(bank->CreateAccount("bob", bob_.public_key()).ok());
    EXPECT_TRUE(bank->Mint("alice", Money::Dollars(1000), 0).ok());
    return bank;
  }

  crypto::Signature Authorize(Bank& bank, const crypto::KeyPair& keys,
                              const std::string& from, const std::string& to,
                              Money amount) {
    const auto nonce = bank.TransferNonce(from);
    EXPECT_TRUE(nonce.ok());
    return keys.Sign(TransferAuthPayload(from, to, amount, *nonce), rng_);
  }

  Rng rng_{7};
  crypto::KeyPair alice_;
  crypto::KeyPair bob_;
};

TEST_F(BankDurabilityTest, LedgerSurvivesReopenFromLog) {
  const fs::path dir = FreshDir("reopen");
  std::string hash_before;
  {
    auto store = OpenStore(dir);
    auto bank = MakeBank(store.get());
    const auto auth =
        Authorize(*bank, alice_, "alice", "bob", Money::Dollars(250));
    ASSERT_TRUE(
        bank->Transfer("alice", "bob", Money::Dollars(250), auth, 1000).ok());
    ASSERT_TRUE(bank->CreateSubAccount("bob", "bob/escrow").ok());
    hash_before = bank->LedgerHash();
  }
  // A brand-new process: fresh Bank object, same directory.
  auto store = OpenStore(dir);
  Bank recovered(crypto::TestGroup(), 42);
  recovered.AttachStore(store.get());
  auto stats = recovered.RecoverFromStore();
  ASSERT_TRUE(stats.ok()) << stats.status().message();
  EXPECT_GT(stats->replayed_records, 0u);
  EXPECT_EQ(recovered.LedgerHash(), hash_before);
  EXPECT_EQ(recovered.Balance("alice").value(), Money::Dollars(750));
  EXPECT_EQ(recovered.Balance("bob").value(), Money::Dollars(250));
  EXPECT_TRUE(recovered.HasAccount("bob/escrow"));
  EXPECT_TRUE(recovered.CheckInvariants().ok());
}

TEST_F(BankDurabilityTest, CrashWipesStateAndRestartRestoresExactLedger) {
  const fs::path dir = FreshDir("crash");
  auto store = OpenStore(dir);
  auto bank = MakeBank(store.get());
  const auto auth =
      Authorize(*bank, alice_, "alice", "bob", Money::Dollars(100));
  ASSERT_TRUE(
      bank->Transfer("alice", "bob", Money::Dollars(100), auth, 5).ok());
  const std::string hash_before = bank->LedgerHash();
  const std::uint64_t nonce_before = bank->TransferNonce("alice").value();

  bank->SimulateCrash();
  EXPECT_TRUE(bank->crashed());
  // Every call fails Unavailable while down; no state is visible.
  EXPECT_FALSE(bank->HasAccount("alice"));
  EXPECT_EQ(bank->Balance("alice").status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(bank->Mint("alice", Money::FromMicros(1), 0).code(),
            StatusCode::kUnavailable);

  ASSERT_TRUE(bank->Restart().ok());
  EXPECT_FALSE(bank->crashed());
  EXPECT_EQ(bank->LedgerHash(), hash_before);
  EXPECT_EQ(bank->TransferNonce("alice").value(), nonce_before);
  EXPECT_TRUE(bank->CheckInvariants().ok());

  // The recovered bank keeps working: nonce state supports new transfers.
  const auto auth2 =
      Authorize(*bank, alice_, "alice", "bob", Money::Dollars(1));
  EXPECT_TRUE(
      bank->Transfer("alice", "bob", Money::Dollars(1), auth2, 6).ok());
}

TEST_F(BankDurabilityTest, ReceiptsVerifiableAfterRecovery) {
  const fs::path dir = FreshDir("receipts");
  auto store = OpenStore(dir);
  auto bank = MakeBank(store.get());
  const auto auth =
      Authorize(*bank, alice_, "alice", "bob", Money::Dollars(10));
  const auto receipt =
      bank->Transfer("alice", "bob", Money::Dollars(10), auth, 9);
  ASSERT_TRUE(receipt.ok());

  bank->SimulateCrash();
  ASSERT_TRUE(bank->Restart().ok());
  EXPECT_TRUE(bank->VerifyReceipt(*receipt).ok());
}

TEST_F(BankDurabilityTest, SnapshotPlusTailRecoversSameHash) {
  const fs::path dir = FreshDir("snapshot");
  store::StoreOptions options;
  options.snapshot_every_records = 8;  // checkpoint mid-history
  auto store = OpenStore(dir, options);
  auto bank = MakeBank(store.get());
  for (int i = 0; i < 20; ++i) {
    const Money amount = Money::Dollars(1 + i % 5);
    const auto auth = Authorize(*bank, alice_, "alice", "bob", amount);
    ASSERT_TRUE(bank->Transfer("alice", "bob", amount, auth, i).ok());
  }
  ASSERT_GT(store->stats().snapshots_written, 0u);
  const std::string hash_before = bank->LedgerHash();

  bank->SimulateCrash();
  ASSERT_TRUE(bank->Restart().ok());
  EXPECT_EQ(bank->LedgerHash(), hash_before);
  EXPECT_TRUE(bank->CheckInvariants().ok());
}

TEST_F(BankDurabilityTest, RestartWithoutStoreFails) {
  Bank bank(crypto::TestGroup(), 42);
  bank.SimulateCrash();
  EXPECT_EQ(bank.Restart().code(), StatusCode::kFailedPrecondition);
}

TEST_F(BankDurabilityTest, TornTailLosesOnlyTheTornTransfer) {
  const fs::path dir = FreshDir("torn");
  std::string segment;
  {
    auto store = OpenStore(dir);
    auto bank = MakeBank(store.get());
    const auto auth =
        Authorize(*bank, alice_, "alice", "bob", Money::Dollars(100));
    ASSERT_TRUE(
        bank->Transfer("alice", "bob", Money::Dollars(100), auth, 1).ok());
    segment = store->wal().SegmentFiles().back();
  }
  // Crash mid-write of the final (transfer) record.
  const fs::path file = fs::path(dir) / segment;
  fs::resize_file(file, fs::file_size(file) - 3);

  auto store = OpenStore(dir);
  Bank recovered(crypto::TestGroup(), 42);
  recovered.AttachStore(store.get());
  auto stats = recovered.RecoverFromStore();
  ASSERT_TRUE(stats.ok()) << stats.status().message();
  EXPECT_GT(stats->truncated_bytes, 0u);
  // The torn transfer never committed: balances are pre-transfer.
  EXPECT_EQ(recovered.Balance("alice").value(), Money::Dollars(1000));
  EXPECT_EQ(recovered.Balance("bob").value(), Money::Zero());
  EXPECT_TRUE(recovered.CheckInvariants().ok());
}

// Property: replaying the same journal always rebuilds a byte-identical
// ledger (hash equality across independent recoveries), for randomized
// operation sequences.
TEST_F(BankDurabilityTest, ReplayDeterminismProperty) {
  Rng op_rng(1234);
  for (int trial = 0; trial < 3; ++trial) {
    const fs::path dir = FreshDir("prop" + std::to_string(trial));
    std::string hash_live;
    {
      auto store = OpenStore(dir);
      auto bank = MakeBank(store.get());
      ASSERT_TRUE(bank->CreateSubAccount("bob", "bob/jobs").ok());
      for (int i = 0; i < 40; ++i) {
        switch (op_rng.Next() % 4) {
          case 0: {
            const Money amount =
                Money::FromMicros(1 + static_cast<Micros>(op_rng.Next() % 999));
            const auto auth =
                Authorize(*bank, alice_, "alice", "bob", amount);
            ASSERT_TRUE(bank->Transfer("alice", "bob", amount, auth, i).ok());
            break;
          }
          case 1: {
            const Money amount =
                Money::FromMicros(1 + static_cast<Micros>(op_rng.Next() % 500));
            const auto auth = Authorize(*bank, bob_, "bob", "bob/jobs", amount);
            // May fail on insufficient funds; failures journal nothing.
            (void)bank->Transfer("bob", "bob/jobs", amount, auth, i);
            break;
          }
          case 2:
            ASSERT_TRUE(
                bank->Mint("alice",
                           Money::FromMicros(
                               1 + static_cast<Micros>(op_rng.Next() % 100)),
                           i)
                    .ok());
            break;
          case 3: {
            const Money balance = bank->Balance("bob/jobs").value();
            if (balance.is_positive()) {
              ASSERT_TRUE(
                  bank->InternalTransfer("bob/jobs", "bob", balance, i).ok());
            }
            break;
          }
        }
      }
      ASSERT_TRUE(bank->CheckInvariants().ok());
      hash_live = bank->LedgerHash();
    }
    // Two independent recoveries from the same log agree with the live
    // ledger and with each other.
    for (int round = 0; round < 2; ++round) {
      auto store = OpenStore(dir);
      Bank recovered(crypto::TestGroup(), 42);
      recovered.AttachStore(store.get());
      ASSERT_TRUE(recovered.RecoverFromStore().ok());
      EXPECT_EQ(recovered.LedgerHash(), hash_live)
          << "trial " << trial << " round " << round;
      EXPECT_TRUE(recovered.CheckInvariants().ok());
    }
  }
}

}  // namespace
}  // namespace gm::bank
