#include "bank/service.hpp"

#include <gtest/gtest.h>

#include <optional>

namespace gm::bank {
namespace {

class BankServiceTest : public ::testing::Test {
 protected:
  BankServiceTest()
      : bus_(kernel_, net::LatencyModel::Lan(), 5),
        bank_(crypto::TestGroup(), 42),
        service_(bank_, bus_, kernel_),
        alice_(crypto::KeyPair::Generate(crypto::TestGroup(), rng_)),
        client_(bus_, "alice-agent") {
    EXPECT_TRUE(bank_.CreateAccount("alice", alice_.public_key()).ok());
    EXPECT_TRUE(bank_.CreateAccount("broker", alice_.public_key()).ok());
    EXPECT_TRUE(bank_.Mint("alice", Money::Dollars(500), 0).ok());
  }

  sim::Kernel kernel_;
  net::MessageBus bus_;
  Bank bank_;
  BankService service_;
  Rng rng_{9};
  crypto::KeyPair alice_;
  BankClient client_;
};

TEST_F(BankServiceTest, BalanceOverRpc) {
  std::optional<Result<Money>> result;
  client_.GetBalance("alice", [&](Result<Money> r) { result = r; });
  kernel_.Run();
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->ok());
  EXPECT_EQ(result->value(), Money::Dollars(500));
}

TEST_F(BankServiceTest, BalanceUnknownAccountErrors) {
  std::optional<Result<Money>> result;
  client_.GetBalance("ghost", [&](Result<Money> r) { result = r; });
  kernel_.Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status().code(), StatusCode::kNotFound);
}

TEST_F(BankServiceTest, TransferOverRpcEndToEnd) {
  // Fetch the nonce, sign, transfer, verify the receipt — all over RPC.
  std::optional<crypto::TransferReceipt> receipt;
  client_.GetTransferNonce("alice", [&](Result<std::uint64_t> nonce) {
    ASSERT_TRUE(nonce.ok());
    const auto auth = alice_.Sign(
        TransferAuthPayload("alice", "broker", Money::Dollars(100), *nonce),
        rng_);
    client_.Transfer("alice", "broker", Money::Dollars(100), auth,
                     [&](Result<crypto::TransferReceipt> r) {
                       ASSERT_TRUE(r.ok()) << r.status().ToString();
                       receipt = *r;
                     });
  });
  kernel_.Run();
  ASSERT_TRUE(receipt.has_value());
  EXPECT_EQ(bank_.Balance("broker").value(), Money::Dollars(100));

  std::optional<Status> verify;
  client_.VerifyReceipt(*receipt, [&](Status s) { verify = s; });
  kernel_.Run();
  ASSERT_TRUE(verify.has_value());
  EXPECT_TRUE(verify->ok()) << verify->ToString();
}

TEST_F(BankServiceTest, TransferWithBadSignatureRejectedOverRpc) {
  const auto auth = alice_.Sign("wrong payload", rng_);
  std::optional<Status> status;
  client_.Transfer("alice", "broker", Money::Dollars(1), auth,
                   [&](Result<crypto::TransferReceipt> r) {
                     status = r.status();
                   });
  kernel_.Run();
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->code(), StatusCode::kUnauthenticated);
}

TEST_F(BankServiceTest, VerifyForgedReceiptRejectedOverRpc) {
  crypto::TransferReceipt forged;
  forged.receipt_id = "rcpt-000000-000000000000";
  forged.from_account = "alice";
  forged.to_account = "broker";
  forged.amount = Money::Dollars(1'000'000);
  std::optional<Status> status;
  client_.VerifyReceipt(forged, [&](Status s) { status = s; });
  kernel_.Run();
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->code(), StatusCode::kNotFound);
}

TEST(BankServiceLossyTest, RetriedTransferAppliedExactlyOnce) {
  // A 40%-lossy network forces the client to retry; the server's dedup
  // cache must keep the non-idempotent Transfer exactly-once: no double
  // debit, no minted money, and the receipt from the original execution.
  sim::Kernel kernel;
  net::MessageBus bus(kernel, net::LatencyModel::Lossy(0.4), 1234);
  Bank bank(crypto::TestGroup(), 42);
  BankService service(bank, bus, kernel);
  Rng rng(9);
  const auto alice = crypto::KeyPair::Generate(crypto::TestGroup(), rng);
  ASSERT_TRUE(bank.CreateAccount("alice", alice.public_key()).ok());
  ASSERT_TRUE(bank.CreateAccount("broker", alice.public_key()).ok());
  ASSERT_TRUE(bank.Mint("alice", Money::Dollars(500), 0).ok());

  net::CallOptions options = BankClient::DefaultCallOptions();
  options.timeout = sim::Seconds(1);
  options.max_attempts = 10;  // enough headroom for the loss rate
  BankClient client(bus, "alice-agent", "bank", options);

  std::optional<crypto::TransferReceipt> receipt;
  client.GetTransferNonce("alice", [&](Result<std::uint64_t> nonce) {
    ASSERT_TRUE(nonce.ok()) << nonce.status().ToString();
    const auto auth = alice.Sign(
        TransferAuthPayload("alice", "broker", Money::Dollars(100), *nonce),
        rng);
    client.Transfer("alice", "broker", Money::Dollars(100), auth,
                    [&](Result<crypto::TransferReceipt> r) {
                      ASSERT_TRUE(r.ok()) << r.status().ToString();
                      receipt = *r;
                    });
  });
  kernel.Run();

  ASSERT_TRUE(receipt.has_value());
  EXPECT_GT(bus.stats().dropped, 0u);  // the network really was lossy
  // Applied exactly once, and money is conserved.
  EXPECT_EQ(bank.Balance("alice").value(), Money::Dollars(400));
  EXPECT_EQ(bank.Balance("broker").value(), Money::Dollars(100));
  // The replayed receipt verifies like the original.
  EXPECT_TRUE(bank.VerifyReceipt(*receipt).ok());
}

TEST(ReceiptWireTest, RoundTrip) {
  Rng rng(3);
  const auto keys = crypto::KeyPair::Generate(crypto::TestGroup(), rng);
  crypto::TransferReceipt receipt;
  receipt.receipt_id = "rcpt-000007-abc";
  receipt.from_account = "alice";
  receipt.to_account = "broker";
  receipt.amount = Money::Dollars(12.34);
  receipt.issued_at_us = 987654321;
  receipt.bank_signature = keys.Sign(receipt.SigningPayload(), rng);

  net::Writer writer;
  WriteReceipt(writer, receipt);
  net::Reader reader(writer.data());
  const auto decoded = ReadReceipt(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->SigningPayload(), receipt.SigningPayload());
  EXPECT_EQ(decoded->bank_signature, receipt.bank_signature);
}

TEST(ReceiptWireTest, TokenRoundTrip) {
  Rng rng(4);
  const auto bank_keys = crypto::KeyPair::Generate(crypto::TestGroup(), rng);
  const auto user_keys = crypto::KeyPair::Generate(crypto::TestGroup(), rng);
  crypto::TransferReceipt receipt;
  receipt.receipt_id = "rcpt-1";
  receipt.from_account = "u";
  receipt.to_account = "b";
  receipt.amount = Money::FromMicros(100);
  receipt.bank_signature = bank_keys.Sign(receipt.SigningPayload(), rng);
  const auto token =
      crypto::MintToken(receipt, "/CN=alice", user_keys, rng);

  net::Writer writer;
  WriteToken(writer, token);
  net::Reader reader(writer.data());
  const auto decoded = ReadToken(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->MappingPayload(), token.MappingPayload());
  EXPECT_TRUE(crypto::VerifyToken(*decoded, bank_keys.public_key(),
                                  user_keys.public_key(), "b")
                  .ok());
}

TEST(ReceiptWireTest, TruncatedReceiptFails) {
  net::Writer writer;
  writer.WriteString("rcpt-1");
  net::Reader reader(writer.data());
  EXPECT_FALSE(ReadReceipt(reader).ok());
}

}  // namespace
}  // namespace gm::bank
