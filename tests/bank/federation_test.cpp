// Tests for the sharded bank federation: striped account ownership, the
// two-phase inter-bank settlement protocol (including crash recovery at
// every phase boundary), bit-identical WAL recovery per shard, and the
// reconciler's signed conservation reports.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bank/federation/reconciler.hpp"
#include "bank/federation/router.hpp"
#include "bank/federation/shard.hpp"
#include "crypto/prime.hpp"
#include "crypto/token.hpp"
#include "store/store.hpp"

namespace gm::bank::federation {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kShards = 4;

// First id with the given prefix owned by `shard`, so tests can choose
// same-shard or cross-shard pairs without hardcoding hash values.
std::string AccountOn(std::size_t shard, const std::string& prefix) {
  for (int i = 0;; ++i) {
    const std::string id = prefix + std::to_string(i);
    if (StripeFor(id, kShards) == shard) return id;
  }
}

fs::path FreshDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("gm_fed_" + name);
  fs::remove_all(dir);
  return dir;
}

/// A 4-shard federation; durable (one store per shard under `dir`) when a
/// directory is given, pure in-memory otherwise.
struct Federation {
  explicit Federation(const fs::path& dir = {},
                      store::StoreOptions options = {}) {
    for (std::size_t i = 0; i < kShards; ++i) {
      shards.push_back(std::make_unique<BankShard>(i));
      if (!dir.empty()) {
        auto store = store::DurableStore::Open(
            (dir / ("shard" + std::to_string(i))).string(), options);
        EXPECT_TRUE(store.ok()) << store.status().message();
        stores.push_back(std::move(*store));
        shards.back()->AttachStore(stores.back().get());
      }
    }
    std::vector<BankShard*> ptrs;
    ptrs.reserve(shards.size());
    for (const auto& shard : shards) ptrs.push_back(shard.get());
    router = std::make_unique<FederationRouter>(ptrs, &registry);
  }

  std::vector<std::unique_ptr<store::DurableStore>> stores;
  std::vector<std::unique_ptr<BankShard>> shards;
  crypto::TokenRegistry registry;
  std::unique_ptr<FederationRouter> router;
};

TEST(StripeForTest, StableAndCoversAllShards) {
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) {
    const std::string id = "user:u" + std::to_string(i);
    const std::size_t stripe = StripeFor(id, kShards);
    ASSERT_LT(stripe, kShards);
    // Ownership is a pure function of the id.
    EXPECT_EQ(StripeFor(id, kShards), stripe);
    seen.insert(stripe);
  }
  // 200 ids over 4 stripes: every stripe owns someone.
  EXPECT_EQ(seen.size(), kShards);
}

TEST(FederationRouterTest, RoutedOperationsLandOnOwningShard) {
  Federation fed;
  const std::string id = AccountOn(2, "acct");
  ASSERT_TRUE(fed.router->CreateAccount(id, Money::Dollars(10)).ok());
  EXPECT_TRUE(fed.router->HasAccount(id));
  EXPECT_TRUE(fed.shards[2]->HasAccount(id));
  for (std::size_t i = 0; i < kShards; ++i) {
    if (i != 2) {
      EXPECT_FALSE(fed.shards[i]->HasAccount(id)) << i;
    }
  }
  ASSERT_TRUE(fed.router->Mint(id, Money::Dollars(5), 0).ok());
  EXPECT_EQ(fed.router->Balance(id).value(), Money::Dollars(15));
  EXPECT_EQ(fed.router->TotalMoney().value(), Money::Dollars(15));
}

TEST(FederationRouterTest, IntraShardTransferIsAtomic) {
  Federation fed;
  const std::string from = AccountOn(1, "payer");
  const std::string to = AccountOn(1, "payee");
  ASSERT_TRUE(fed.router->CreateAccount(from, Money::Dollars(20)).ok());
  ASSERT_TRUE(fed.router->CreateAccount(to).ok());

  ASSERT_TRUE(fed.router->Transfer(from, to, Money::Dollars(7), 100).ok());
  EXPECT_EQ(fed.router->Balance(from).value(), Money::Dollars(13));
  EXPECT_EQ(fed.router->Balance(to).value(), Money::Dollars(7));
  EXPECT_EQ(fed.router->Stats().intra_transfers, 1u);
  EXPECT_EQ(fed.router->Stats().settlements_started, 0u);

  // Insufficient funds: rejected atomically, nothing moves.
  EXPECT_EQ(fed.router->Transfer(from, to, Money::Dollars(100), 101).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(fed.router->Balance(from).value(), Money::Dollars(13));
  EXPECT_TRUE(fed.router->CheckConservation().ok());
}

TEST(FederationRouterTest, CrossShardTransferSettlesExactlyOnce) {
  Federation fed;
  const std::string from = AccountOn(0, "payer");
  const std::string to = AccountOn(3, "payee");
  ASSERT_TRUE(fed.router->CreateAccount(from, Money::Dollars(20)).ok());
  ASSERT_TRUE(fed.router->CreateAccount(to).ok());

  ASSERT_TRUE(fed.router->Transfer(from, to, Money::Dollars(8), 100).ok());
  EXPECT_EQ(fed.router->Balance(from).value(), Money::Dollars(12));
  EXPECT_EQ(fed.router->Balance(to).value(), Money::Dollars(8));
  EXPECT_EQ(fed.router->PendingSettlements(), 0u);

  const RouterStats stats = fed.router->Stats();
  EXPECT_EQ(stats.settlements_started, 1u);
  EXPECT_EQ(stats.settlements_completed, 1u);
  EXPECT_EQ(stats.settlements_aborted, 0u);

  // The settlement moved money between shard conservation domains and
  // its id is burned in the double-spend registry.
  EXPECT_EQ(fed.shards[0]->SnapshotInfo().settled_out, Money::Dollars(8));
  EXPECT_EQ(fed.shards[3]->SnapshotInfo().settled_in, Money::Dollars(8));
  EXPECT_TRUE(fed.router->IsSettlementSpent("s0-1"));
  EXPECT_TRUE(fed.shards[3]->HasAppliedSettlement("s0-1"));
  EXPECT_TRUE(fed.router->CheckConservation().ok());
  // Total minted money is unchanged by settlement.
  EXPECT_EQ(fed.router->TotalMoney().value(), Money::Dollars(20));
}

TEST(FederationRouterTest, CrossShardTransferToMissingAccountFailsFast) {
  Federation fed;
  const std::string from = AccountOn(0, "payer");
  ASSERT_TRUE(fed.router->CreateAccount(from, Money::Dollars(20)).ok());

  const std::string ghost = AccountOn(1, "ghost");
  EXPECT_EQ(fed.router->Transfer(from, ghost, Money::Dollars(1), 100).code(),
            StatusCode::kNotFound);
  // Fail-fast: no hold was ever journaled, nothing to unwind.
  EXPECT_EQ(fed.router->Balance(from).value(), Money::Dollars(20));
  EXPECT_EQ(fed.router->PendingSettlements(), 0u);
  EXPECT_EQ(fed.router->Stats().settlements_started, 0u);
  EXPECT_TRUE(fed.router->CheckConservation().ok());
}

TEST(FederationChaosTest, CreditorCrashParksHoldUntilResume) {
  const fs::path dir = FreshDir("park");
  Federation fed(dir);
  const std::string from = AccountOn(0, "payer");
  const std::string to = AccountOn(1, "payee");
  ASSERT_TRUE(fed.router->CreateAccount(from, Money::Dollars(20)).ok());
  ASSERT_TRUE(fed.router->CreateAccount(to).ok());

  // Creditor dies before the credit phase: the transfer parks on the
  // debtor's hold — money debited, not yet credited anywhere.
  fed.shards[1]->SimulateCrash();
  EXPECT_EQ(fed.router->Transfer(from, to, Money::Dollars(5), 100).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(fed.router->Balance(from).value(), Money::Dollars(15));
  EXPECT_EQ(fed.router->PendingSettlements(), 1u);
  EXPECT_TRUE(fed.shards[0]->CheckLocalInvariants().ok());

  // A resume while the creditor is still down leaves the hold parked.
  ASSERT_TRUE(fed.router->ResumeSettlements(200).ok());
  EXPECT_EQ(fed.router->PendingSettlements(), 1u);

  ASSERT_TRUE(fed.shards[1]->Restart().ok());
  ASSERT_TRUE(fed.router->ResumeSettlements(300).ok());
  EXPECT_EQ(fed.router->PendingSettlements(), 0u);
  EXPECT_EQ(fed.router->Balance(to).value(), Money::Dollars(5));
  EXPECT_EQ(fed.router->Stats().settlements_resumed, 1u);
  EXPECT_TRUE(fed.router->CheckConservation().ok());

  // Resume is idempotent: nothing left to settle, nothing double-credits.
  ASSERT_TRUE(fed.router->ResumeSettlements(400).ok());
  EXPECT_EQ(fed.router->Balance(to).value(), Money::Dollars(5));
}

TEST(FederationChaosTest, MissingDestinationDiscoveredAtResumeRefunds) {
  const fs::path dir = FreshDir("refund");
  Federation fed(dir);
  const std::string from = AccountOn(0, "payer");
  const std::string ghost = AccountOn(1, "ghost");
  ASSERT_TRUE(fed.router->CreateAccount(from, Money::Dollars(20)).ok());

  // The creditor is down, so the fail-fast existence check cannot run:
  // the hold parks, and only the resume after restart discovers the
  // destination never existed.
  fed.shards[1]->SimulateCrash();
  EXPECT_EQ(fed.router->Transfer(from, ghost, Money::Dollars(5), 100).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(fed.router->Balance(from).value(), Money::Dollars(15));

  ASSERT_TRUE(fed.shards[1]->Restart().ok());
  ASSERT_TRUE(fed.router->ResumeSettlements(200).ok());
  EXPECT_EQ(fed.router->Balance(from).value(), Money::Dollars(20));
  EXPECT_EQ(fed.router->PendingSettlements(), 0u);
  EXPECT_EQ(fed.router->Stats().settlements_aborted, 1u);
  EXPECT_TRUE(fed.router->CheckConservation().ok());
}

TEST(FederationChaosTest, DebtorCrashBetweenCreditAndReleaseIsExactlyOnce) {
  const fs::path dir = FreshDir("midflight");
  Federation fed(dir);
  const std::string from = AccountOn(0, "payer");
  const std::string to = AccountOn(1, "payee");
  ASSERT_TRUE(fed.router->CreateAccount(from, Money::Dollars(20)).ok());
  ASSERT_TRUE(fed.router->CreateAccount(to, Money::Dollars(1)).ok());

  // Drive the phases by hand to freeze the protocol exactly between the
  // creditor's credit and the debtor's release — the window where the
  // money exists on the creditor while the debtor still holds it.
  const auto sid =
      fed.shards[0]->PrepareDebit(from, to, Money::Dollars(5), 100);
  ASSERT_TRUE(sid.ok());
  const auto credited =
      fed.shards[1]->ApplyCredit(*sid, to, Money::Dollars(5), 100);
  ASSERT_TRUE(credited.ok());
  EXPECT_TRUE(*credited);

  // Debtor dies before releasing; the WAL replays the open hold.
  fed.shards[0]->SimulateCrash();
  ASSERT_TRUE(fed.shards[0]->Restart().ok());
  ASSERT_EQ(fed.shards[0]->OpenHolds().size(), 1u);

  // Resume finds the credit already applied: release only, no second
  // credit. The idempotent ApplyCredit retry returns false.
  ASSERT_TRUE(fed.router->ResumeSettlements(200).ok());
  EXPECT_EQ(fed.router->Balance(to).value(), Money::Dollars(6));
  EXPECT_EQ(fed.router->Balance(from).value(), Money::Dollars(15));
  EXPECT_EQ(fed.router->PendingSettlements(), 0u);
  EXPECT_TRUE(fed.router->IsSettlementSpent(*sid));
  EXPECT_TRUE(fed.router->CheckConservation().ok());

  const auto retry =
      fed.shards[1]->ApplyCredit(*sid, to, Money::Dollars(5), 300);
  ASSERT_TRUE(retry.ok());
  EXPECT_FALSE(*retry);
  EXPECT_EQ(fed.router->Balance(to).value(), Money::Dollars(6));
}

TEST(FederationDurabilityTest, ShardRecoversBitIdenticalLedger) {
  const fs::path dir = FreshDir("bitident");
  Federation fed(dir);
  const std::string a = AccountOn(0, "a");
  const std::string b = AccountOn(0, "b");
  const std::string c = AccountOn(2, "c");
  ASSERT_TRUE(fed.router->CreateAccount(a, Money::Dollars(50)).ok());
  ASSERT_TRUE(fed.router->CreateAccount(b).ok());
  ASSERT_TRUE(fed.router->CreateAccount(c).ok());
  ASSERT_TRUE(fed.router->Mint(a, Money::Dollars(3), 10).ok());
  ASSERT_TRUE(fed.router->Transfer(a, b, Money::Dollars(11), 20).ok());
  ASSERT_TRUE(fed.router->Transfer(a, c, Money::Dollars(13), 30).ok());

  const std::string fed_hash = fed.router->LedgerHash();
  const std::string shard0_hash = fed.shards[0]->LedgerHash();

  fed.shards[0]->SimulateCrash();
  EXPECT_TRUE(fed.shards[0]->crashed());
  // Down shard: calls fail Unavailable, federation totals unverifiable.
  EXPECT_EQ(fed.shards[0]->Balance(a).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(fed.router->CheckConservation().code(),
            StatusCode::kUnavailable);
  EXPECT_NE(fed.router->LedgerHash(), fed_hash);

  ASSERT_TRUE(fed.shards[0]->Restart().ok());
  EXPECT_EQ(fed.shards[0]->LedgerHash(), shard0_hash);
  EXPECT_EQ(fed.router->LedgerHash(), fed_hash);
  EXPECT_TRUE(fed.router->CheckConservation().ok());
  EXPECT_EQ(fed.router->Balance(b).value(), Money::Dollars(11));
}

TEST(FederationDurabilityTest, SnapshotPlusTailRecoversSameHash) {
  const fs::path dir = FreshDir("snapshot");
  store::StoreOptions options;
  options.snapshot_every_records = 8;  // checkpoint mid-history
  Federation fed(dir, options);
  const std::string a = AccountOn(1, "a");
  const std::string b = AccountOn(1, "b");
  ASSERT_TRUE(fed.router->CreateAccount(a, Money::Dollars(100)).ok());
  ASSERT_TRUE(fed.router->CreateAccount(b).ok());
  for (int i = 0; i < 24; ++i)
    ASSERT_TRUE(fed.router->Transfer(a, b, Money::Dollars(1), i).ok());
  ASSERT_GT(fed.stores[1]->stats().snapshots_written, 0u);

  const std::string hash_before = fed.shards[1]->LedgerHash();
  fed.shards[1]->SimulateCrash();
  ASSERT_TRUE(fed.shards[1]->Restart().ok());
  EXPECT_EQ(fed.shards[1]->LedgerHash(), hash_before);
  EXPECT_TRUE(fed.shards[1]->CheckLocalInvariants().ok());
}

TEST(FederationDurabilityTest, RestartWithoutStoreFails) {
  BankShard shard(0);
  shard.SimulateCrash();
  EXPECT_EQ(shard.Restart().code(), StatusCode::kFailedPrecondition);
}

TEST(ReconcilerTest, SignsVerifiableConservationReport) {
  Federation fed;
  Reconciler reconciler(fed.router.get(), crypto::TestGroup(), 77);
  EXPECT_EQ(reconciler.LastReport().status().code(), StatusCode::kNotFound);

  const std::string a = AccountOn(0, "a");
  const std::string b = AccountOn(2, "b");
  ASSERT_TRUE(fed.router->CreateAccount(a, Money::Dollars(40)).ok());
  ASSERT_TRUE(fed.router->CreateAccount(b).ok());
  ASSERT_TRUE(fed.router->Transfer(a, b, Money::Dollars(9), 100).ok());

  const ReconciliationReport report = reconciler.Sweep(1000);
  EXPECT_TRUE(report.conserved) << report.detail;
  EXPECT_EQ(report.detail, "");
  EXPECT_EQ(report.sweep_seq, 1u);
  EXPECT_EQ(report.shards_live, kShards);
  EXPECT_EQ(report.accounts, 2u);
  EXPECT_EQ(report.applied_settlements, 1u);
  EXPECT_EQ(report.total_minted, Money::Dollars(40));
  EXPECT_EQ(report.total_balances, Money::Dollars(40));
  EXPECT_EQ(report.federation_hash, fed.router->LedgerHash());
  EXPECT_TRUE(reconciler.VerifyReport(report).ok());
  EXPECT_EQ(reconciler.LastReport().value().sweep_seq, 1u);

  // Any mutated field invalidates the signature — the report cannot be
  // doctored into claiming solvency it never attested to.
  ReconciliationReport tampered = report;
  tampered.total_minted += Money::FromMicros(1);
  EXPECT_EQ(reconciler.VerifyReport(tampered).code(),
            StatusCode::kUnauthenticated);
  tampered = report;
  tampered.conserved = false;
  EXPECT_EQ(reconciler.VerifyReport(tampered).code(),
            StatusCode::kUnauthenticated);
}

TEST(ReconcilerTest, FlagsCrashedShard) {
  const fs::path dir = FreshDir("reconcrash");
  Federation fed(dir);
  Reconciler reconciler(fed.router.get(), crypto::TestGroup(), 77);
  const std::string a = AccountOn(0, "a");
  ASSERT_TRUE(fed.router->CreateAccount(a, Money::Dollars(10)).ok());

  fed.shards[3]->SimulateCrash();
  const ReconciliationReport report = reconciler.Sweep(1000);
  EXPECT_FALSE(report.conserved);
  EXPECT_EQ(report.shards_live, kShards - 1);
  EXPECT_NE(report.detail.find("shard 3 down"), std::string::npos)
      << report.detail;
  // The bad-news report is signed too.
  EXPECT_TRUE(reconciler.VerifyReport(report).ok());

  ASSERT_TRUE(fed.shards[3]->Restart().ok());
  EXPECT_TRUE(reconciler.Sweep(2000).conserved);
}

TEST(ReconcilerTest, FlagsSettlementNeverClaimedInRegistry) {
  Federation fed;
  Reconciler reconciler(fed.router.get(), crypto::TestGroup(), 77);
  const std::string to = AccountOn(1, "payee");
  ASSERT_TRUE(fed.router->CreateAccount(to).ok());

  // A credit applied behind the router's back: durable on the shard but
  // never claimed in the double-spend registry. The sweep must call out
  // the rogue settlement id.
  const auto credited =
      fed.shards[1]->ApplyCredit("s0-999", to, Money::Dollars(2), 100);
  ASSERT_TRUE(credited.ok());

  const ReconciliationReport report = reconciler.Sweep(1000);
  EXPECT_FALSE(report.conserved);
  EXPECT_NE(report.detail.find("s0-999"), std::string::npos) << report.detail;
  EXPECT_NE(report.detail.find("never claimed"), std::string::npos)
      << report.detail;
}

}  // namespace
}  // namespace gm::bank::federation
