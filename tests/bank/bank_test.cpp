#include "bank/bank.hpp"

#include <gtest/gtest.h>

namespace gm::bank {
namespace {

class BankTest : public ::testing::Test {
 protected:
  BankTest()
      : bank_(crypto::TestGroup(), 42),
        alice_(crypto::KeyPair::Generate(crypto::TestGroup(), rng_)),
        bob_(crypto::KeyPair::Generate(crypto::TestGroup(), rng_)) {
    EXPECT_TRUE(bank_.CreateAccount("alice", alice_.public_key()).ok());
    EXPECT_TRUE(bank_.CreateAccount("bob", bob_.public_key()).ok());
    EXPECT_TRUE(bank_.Mint("alice", Money::Dollars(1000), 0).ok());
  }

  crypto::Signature Authorize(const crypto::KeyPair& keys,
                              const std::string& from, const std::string& to,
                              Money amount) {
    const auto nonce = bank_.TransferNonce(from);
    EXPECT_TRUE(nonce.ok());
    return keys.Sign(TransferAuthPayload(from, to, amount, *nonce), rng_);
  }

  Rng rng_{7};
  Bank bank_;
  crypto::KeyPair alice_;
  crypto::KeyPair bob_;
};

TEST_F(BankTest, CreateAndQueryAccounts) {
  EXPECT_TRUE(bank_.HasAccount("alice"));
  EXPECT_FALSE(bank_.HasAccount("carol"));
  EXPECT_EQ(bank_.Balance("alice").value(), Money::Dollars(1000));
  EXPECT_EQ(bank_.Balance("bob").value(), Money::Zero());
  EXPECT_FALSE(bank_.Balance("carol").ok());
}

TEST_F(BankTest, DuplicateAccountRejected) {
  EXPECT_EQ(bank_.CreateAccount("alice", alice_.public_key()).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(BankTest, EmptyAccountIdRejected) {
  EXPECT_FALSE(bank_.CreateAccount("", alice_.public_key()).ok());
}

TEST_F(BankTest, MintValidation) {
  EXPECT_FALSE(bank_.Mint("alice", Money::Zero(), 0).ok());
  EXPECT_FALSE(bank_.Mint("alice", Money::FromMicros(-5), 0).ok());
  EXPECT_FALSE(bank_.Mint("ghost", Money::FromMicros(100), 0).ok());
}

TEST_F(BankTest, AuthorizedTransferMovesMoney) {
  const Money amount = Money::Dollars(250);
  const auto auth = Authorize(alice_, "alice", "bob", amount);
  const auto receipt = bank_.Transfer("alice", "bob", amount, auth, 1000);
  ASSERT_TRUE(receipt.ok());
  EXPECT_EQ(bank_.Balance("alice").value(), Money::Dollars(750));
  EXPECT_EQ(bank_.Balance("bob").value(), Money::Dollars(250));
  EXPECT_EQ(receipt->from_account, "alice");
  EXPECT_EQ(receipt->to_account, "bob");
  EXPECT_EQ(receipt->amount, amount);
  EXPECT_EQ(receipt->issued_at_us, 1000);
  EXPECT_TRUE(bank_.CheckInvariants().ok());
}

TEST_F(BankTest, TransferRejectsWrongSigner) {
  const Money amount = Money::Dollars(100);
  const auto auth = Authorize(bob_, "alice", "bob", amount);  // bob signs
  const auto receipt = bank_.Transfer("alice", "bob", amount, auth, 0);
  EXPECT_EQ(receipt.status().code(), StatusCode::kUnauthenticated);
  EXPECT_EQ(bank_.Balance("alice").value(), Money::Dollars(1000));
}

TEST_F(BankTest, TransferRejectsReplayedAuthorization) {
  const Money amount = Money::Dollars(100);
  const auto auth = Authorize(alice_, "alice", "bob", amount);
  ASSERT_TRUE(bank_.Transfer("alice", "bob", amount, auth, 0).ok());
  // Same signature again: nonce advanced, must fail.
  const auto replay = bank_.Transfer("alice", "bob", amount, auth, 0);
  EXPECT_EQ(replay.status().code(), StatusCode::kUnauthenticated);
  EXPECT_EQ(bank_.Balance("bob").value(), amount);
}

TEST_F(BankTest, TransferRejectsInsufficientFunds) {
  const Money amount = Money::Dollars(5000);
  const auto auth = Authorize(alice_, "alice", "bob", amount);
  const auto receipt = bank_.Transfer("alice", "bob", amount, auth, 0);
  EXPECT_EQ(receipt.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(BankTest, TransferRejectsNonPositiveAmount) {
  const auto auth = Authorize(alice_, "alice", "bob", Money::Zero());
  EXPECT_FALSE(bank_.Transfer("alice", "bob", Money::Zero(), auth, 0).ok());
}

TEST_F(BankTest, SubAccountLifecycle) {
  ASSERT_TRUE(bank_.CreateSubAccount("bob", "bob/alice-job1").ok());
  EXPECT_TRUE(bank_.HasAccount("bob/alice-job1"));
  EXPECT_FALSE(bank_.CreateSubAccount("ghost", "x").ok());
  EXPECT_EQ(bank_.CreateSubAccount("bob", "bob/alice-job1").code(),
            StatusCode::kAlreadyExists);
}

TEST_F(BankTest, InternalTransferBetweenManagedAccounts) {
  ASSERT_TRUE(bank_.CreateSubAccount("bob", "bob/sub").ok());
  // Fund the sub-account from bob (bob is owner-keyed, needs signature).
  const auto auth = Authorize(bob_, "bob", "bob/sub", Money::Dollars(10));
  ASSERT_TRUE(bank_.Mint("bob", Money::Dollars(10), 0).ok());
  ASSERT_TRUE(
      bank_.Transfer("bob", "bob/sub", Money::Dollars(10), auth, 0).ok());
  // Sub-account to another managed account without signature.
  ASSERT_TRUE(bank_.CreateSubAccount("bob", "bob/host-1").ok());
  const auto receipt = bank_.InternalTransfer("bob/sub", "bob/host-1",
                                              Money::Dollars(4), 0);
  ASSERT_TRUE(receipt.ok());
  EXPECT_EQ(bank_.Balance("bob/host-1").value(), Money::Dollars(4));
  EXPECT_TRUE(bank_.CheckInvariants().ok());
}

TEST_F(BankTest, InternalTransferRejectedForOwnerKeyedAccount) {
  const auto receipt =
      bank_.InternalTransfer("alice", "bob", Money::Dollars(1), 0);
  EXPECT_EQ(receipt.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(BankTest, SignedTransferRejectedForManagedAccount) {
  ASSERT_TRUE(bank_.CreateSubAccount("bob", "bob/sub").ok());
  const auto auth = Authorize(alice_, "bob/sub", "bob", Money::FromMicros(1));
  EXPECT_EQ(bank_.Transfer("bob/sub", "bob", Money::FromMicros(1), auth,
                           0).status().code(),
            StatusCode::kPermissionDenied);
}

TEST_F(BankTest, ReceiptVerification) {
  const Money amount = Money::Dollars(100);
  const auto auth = Authorize(alice_, "alice", "bob", amount);
  const auto receipt = bank_.Transfer("alice", "bob", amount, auth, 0);
  ASSERT_TRUE(receipt.ok());
  EXPECT_TRUE(bank_.VerifyReceipt(*receipt).ok());

  crypto::TransferReceipt forged = *receipt;
  forged.amount += forged.amount;
  EXPECT_FALSE(bank_.VerifyReceipt(forged).ok());

  crypto::TransferReceipt unknown = *receipt;
  unknown.receipt_id = "rcpt-999999-deadbeef";
  EXPECT_EQ(bank_.VerifyReceipt(unknown).code(), StatusCode::kNotFound);
}

TEST_F(BankTest, ReceiptIdsAreUnique) {
  const auto a = bank_.Transfer(
      "alice", "bob", Money::FromMicros(1),
      Authorize(alice_, "alice", "bob", Money::FromMicros(1)), 0);
  const auto b = bank_.Transfer(
      "alice", "bob", Money::FromMicros(1),
      Authorize(alice_, "alice", "bob", Money::FromMicros(1)), 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->receipt_id, b->receipt_id);
}

TEST_F(BankTest, AuditLogRecordsOperations) {
  const auto auth = Authorize(alice_, "alice", "bob", Money::FromMicros(5));
  ASSERT_TRUE(
      bank_.Transfer("alice", "bob", Money::FromMicros(5), auth, 123).ok());
  const auto& log = bank_.audit_log();
  ASSERT_FALSE(log.empty());
  const AuditEntry& last = log.back();
  EXPECT_EQ(last.kind, "transfer");
  EXPECT_EQ(last.from, "alice");
  EXPECT_EQ(last.to, "bob");
  EXPECT_EQ(last.amount, Money::FromMicros(5));
  EXPECT_EQ(last.at_us, 123);
}

TEST_F(BankTest, ConservationHoldsAcrossManyOperations) {
  ASSERT_TRUE(bank_.CreateSubAccount("bob", "bob/s1").ok());
  for (int i = 0; i < 20; ++i) {
    const Money amount = Money::Dollars(1 + i);
    const auto auth = Authorize(alice_, "alice", "bob", amount);
    ASSERT_TRUE(bank_.Transfer("alice", "bob", amount, auth, i).ok());
    ASSERT_TRUE(bank_.CheckInvariants().ok());
  }
}

TEST(TransferAuthPayloadTest, CanonicalFormat) {
  EXPECT_EQ(TransferAuthPayload("a", "b", Money::FromMicros(42), 7),
            "auth|from=a|to=b|amount=42|nonce=7");
}

}  // namespace
}  // namespace gm::bank
