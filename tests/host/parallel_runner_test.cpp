#include "host/parallel_runner.hpp"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bank/federation/reconciler.hpp"
#include "bank/federation/router.hpp"
#include "bank/federation/shard.hpp"
#include "crypto/prime.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/token.hpp"
#include "store/store.hpp"

namespace gm::host {
namespace {

namespace fs = std::filesystem;

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i)
    pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 100);
  // The pool is reusable after a barrier.
  for (int i = 0; i < 50; ++i)
    pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 150);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();
  SUCCEED();
}

/// A self-contained grid of `shards` hosts, each with its own auctioneer,
/// sharing one bank and one SLS. Everything needed to re-run the exact
/// same workload twice and compare ledgers.
struct World {
  explicit World(std::size_t shards, bool serial, int threads,
                 std::uint64_t seed = 99, int churn_every = 0) {
    bank = std::make_unique<bank::Bank>(crypto::TestGroup(), 42);
    Rng key_rng(7);
    owner = std::make_unique<crypto::KeyPair>(
        crypto::KeyPair::Generate(crypto::TestGroup(), key_rng));
    EXPECT_TRUE(bank->CreateAccount("broker", owner->public_key()).ok());
    sls = std::make_unique<market::ServiceLocationService>(kernel);

    ParallelRunnerConfig config;
    config.threads = threads;
    config.serial = serial;
    config.seed = seed;
    config.churn_every = churn_every;
    runner = std::make_unique<ParallelRunner>(kernel, config);

    for (std::size_t i = 0; i < shards; ++i) {
      HostSpec spec;
      spec.id = "h" + std::to_string(i);
      hosts.push_back(std::make_unique<PhysicalHost>(spec));
      auctioneers.push_back(
          std::make_unique<market::Auctioneer>(*hosts.back(), kernel));
      const std::string fund = "broker/fund-" + std::to_string(i);
      const std::string take = "broker/host-" + std::to_string(i);
      EXPECT_TRUE(bank->CreateSubAccount("broker", fund).ok());
      EXPECT_TRUE(bank->CreateSubAccount("broker", take).ok());
      EXPECT_TRUE(bank->Mint(fund, Money::Dollars(100), 0).ok());
      runner->AddShard(auctioneers.back().get(), fund, take);
    }
    runner->SetBank(bank.get());
    runner->SetSls(sls.get());
  }

  /// Attach a sharded bank federation with the same fund/take account
  /// names the central bank uses, so every shard charges both ledgers.
  /// Durable (per-shard WALs under `dir`) when a directory is given.
  void AddFederation(std::size_t num_shards, const fs::path& dir = {}) {
    for (std::size_t i = 0; i < num_shards; ++i) {
      fed_shards.push_back(
          std::make_unique<bank::federation::BankShard>(i));
      if (!dir.empty()) {
        auto store = store::DurableStore::Open(
            (dir / ("fedshard" + std::to_string(i))).string());
        EXPECT_TRUE(store.ok()) << store.status().message();
        fed_stores.push_back(std::move(*store));
        fed_shards.back()->AttachStore(fed_stores.back().get());
      }
    }
    std::vector<bank::federation::BankShard*> ptrs;
    for (const auto& shard : fed_shards) ptrs.push_back(shard.get());
    federation = std::make_unique<bank::federation::FederationRouter>(
        ptrs, &fed_registry);
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      EXPECT_TRUE(federation
                      ->CreateAccount("broker/fund-" + std::to_string(i),
                                      Money::Dollars(100))
                      .ok());
      EXPECT_TRUE(
          federation->CreateAccount("broker/host-" + std::to_string(i))
              .ok());
    }
    runner->SetFederation(federation.get());
  }

  sim::Kernel kernel;
  std::unique_ptr<bank::Bank> bank;
  std::unique_ptr<crypto::KeyPair> owner;
  std::unique_ptr<market::ServiceLocationService> sls;
  std::vector<std::unique_ptr<PhysicalHost>> hosts;
  std::vector<std::unique_ptr<market::Auctioneer>> auctioneers;
  std::unique_ptr<ParallelRunner> runner;
  std::vector<std::unique_ptr<store::DurableStore>> fed_stores;
  std::vector<std::unique_ptr<bank::federation::BankShard>> fed_shards;
  crypto::TokenRegistry fed_registry;
  std::unique_ptr<bank::federation::FederationRouter> federation;
};

TEST(ParallelRunnerTest, EightThreadsMatchSerialBitForBit) {
  constexpr std::size_t kShards = 8;
  constexpr int kRounds = 6;

  World serial(kShards, /*serial=*/true, /*threads=*/1);
  const auto serial_report = serial.runner->Run(kRounds);
  ASSERT_TRUE(serial_report.ok());

  World parallel(kShards, /*serial=*/false, /*threads=*/8);
  const auto parallel_report = parallel.runner->Run(kRounds);
  ASSERT_TRUE(parallel_report.ok());

  // The acceptance bar: identical ledger hash, not merely equal totals.
  EXPECT_FALSE(serial_report->ledger_hash.empty());
  EXPECT_EQ(parallel_report->ledger_hash, serial_report->ledger_hash);

  EXPECT_EQ(parallel_report->rounds, kRounds);
  EXPECT_EQ(parallel_report->shards, kShards);
  EXPECT_EQ(parallel_report->ticks, serial_report->ticks);
  EXPECT_EQ(parallel_report->bank_ops_applied,
            serial_report->bank_ops_applied);
  EXPECT_EQ(parallel_report->bank_ops_failed, 0u);

  // The merge barrier makes even the order-sensitive state identical:
  // the audit journal entry-for-entry, and every market balance.
  const auto serial_audit = serial.bank->audit_log();
  const auto parallel_audit = parallel.bank->audit_log();
  ASSERT_EQ(parallel_audit.size(), serial_audit.size());
  for (std::size_t i = 0; i < serial_audit.size(); ++i) {
    EXPECT_EQ(parallel_audit[i].kind, serial_audit[i].kind) << i;
    EXPECT_EQ(parallel_audit[i].from, serial_audit[i].from) << i;
    EXPECT_EQ(parallel_audit[i].to, serial_audit[i].to) << i;
    EXPECT_EQ(parallel_audit[i].amount, serial_audit[i].amount) << i;
  }
  for (std::size_t i = 0; i < kShards; ++i) {
    EXPECT_EQ(
        parallel.auctioneers[i]->total_revenue(),
        serial.auctioneers[i]->total_revenue())
        << "shard " << i;
    EXPECT_EQ(parallel.auctioneers[i]->SpotPriceRate().micros_per_sec(),
              serial.auctioneers[i]->SpotPriceRate().micros_per_sec())
        << "shard " << i;
  }

  EXPECT_TRUE(parallel.bank->CheckInvariants().ok());
}

TEST(ParallelRunnerTest, ChurnedBidsStayDeterministic) {
  // Every other round each shard closes and reopens a bidder, so bids
  // are removed and re-added within a single round. The incremental
  // spot-price path (slot reuse, lazy expiry entries, escrow-reclaim
  // removals) must keep the 8-thread ledger bit-identical to serial.
  constexpr std::size_t kShards = 8;
  constexpr int kRounds = 9;
  constexpr int kChurnEvery = 2;

  World serial(kShards, /*serial=*/true, /*threads=*/1, /*seed=*/99,
               kChurnEvery);
  const auto serial_report = serial.runner->Run(kRounds);
  ASSERT_TRUE(serial_report.ok());

  World parallel(kShards, /*serial=*/false, /*threads=*/8, /*seed=*/99,
                 kChurnEvery);
  const auto parallel_report = parallel.runner->Run(kRounds);
  ASSERT_TRUE(parallel_report.ok());

  EXPECT_FALSE(serial_report->ledger_hash.empty());
  EXPECT_EQ(parallel_report->ledger_hash, serial_report->ledger_hash);
  EXPECT_EQ(parallel_report->bank_ops_applied,
            serial_report->bank_ops_applied);
  for (std::size_t i = 0; i < kShards; ++i) {
    EXPECT_EQ(parallel.auctioneers[i]->total_revenue(),
              serial.auctioneers[i]->total_revenue())
        << "shard " << i;
    EXPECT_EQ(parallel.auctioneers[i]->SpotPriceRate().micros_per_sec(),
              serial.auctioneers[i]->SpotPriceRate().micros_per_sec())
        << "shard " << i;
  }
  EXPECT_TRUE(parallel.bank->CheckInvariants().ok());
  EXPECT_EQ(parallel.sls->live_count(), kShards);
}

TEST(ParallelRunnerTest, RepeatedRunsContinueDeterministically) {
  World a(4, /*serial=*/true, 1);
  World b(4, /*serial=*/false, 8);
  // Two short Runs must equal one long Run regardless of mode: shard RNG
  // streams persist across calls.
  ASSERT_TRUE(a.runner->Run(2).ok());
  const auto a2 = a.runner->Run(3);
  ASSERT_TRUE(a2.ok());
  ASSERT_TRUE(b.runner->Run(2).ok());
  const auto b2 = b.runner->Run(3);
  ASSERT_TRUE(b2.ok());
  EXPECT_EQ(a2->ledger_hash, b2->ledger_hash);
}

TEST(ParallelRunnerTest, RunWithoutShardsFails) {
  sim::Kernel kernel;
  ParallelRunner runner(kernel, {});
  EXPECT_FALSE(runner.Run(1).ok());
}

TEST(ParallelRunnerChaosTest, CrashRestartUnderEightTickThreads) {
  const fs::path dir =
      fs::temp_directory_path() / "gm_parallel_chaos";
  fs::remove_all(dir);
  fs::create_directories(dir);

  World world(8, /*serial=*/false, /*threads=*/8);
  auto store = store::DurableStore::Open((dir / "bank").string());
  ASSERT_TRUE(store.ok());
  world.bank->AttachStore(store->get());
  ASSERT_TRUE((*store)->WriteSnapshot(*world.bank).ok());

  // Chaos rides a separate thread: crash and restart the bank and wipe a
  // host's storage state while all 8 auction shards are ticking. The
  // assertions are about surviving (locks, no torn state), not about
  // determinism — crash timing is wall-clock.
  std::atomic<bool> stop{false};
  gm::Thread chaos([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      world.bank->SimulateCrash();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      (void)world.bank->Restart();
      world.auctioneers[0]->CrashStorageState();
      world.auctioneers[3]->CrashStorageState();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  const auto report = world.runner->Run(40);
  stop.store(true, std::memory_order_relaxed);
  chaos.Join();

  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rounds, 40);
  // Some merges hit a crashed bank; every op still lands in exactly one
  // bucket.
  const auto expected_ops =
      report->ticks *
      static_cast<std::uint64_t>(world.runner->config().transfers_per_shard);
  EXPECT_EQ(report->bank_ops_applied + report->bank_ops_failed, expected_ops);

  if (world.bank->crashed()) {
    ASSERT_TRUE(world.bank->Restart().ok());
  }
  EXPECT_TRUE(world.bank->CheckInvariants().ok());
  fs::remove_all(dir);
}

TEST(ParallelRunnerFederationTest, EightThreadsMatchSerialBitForBit) {
  // Auction shards charging a 4-way sharded bank concurrently: the
  // merged federation ledger (settlement ids included) must be
  // bit-identical to a serial run's.
  constexpr std::size_t kShards = 8;
  constexpr int kRounds = 6;

  World serial(kShards, /*serial=*/true, /*threads=*/1);
  serial.AddFederation(4);
  const auto serial_report = serial.runner->Run(kRounds);
  ASSERT_TRUE(serial_report.ok());

  World parallel(kShards, /*serial=*/false, /*threads=*/8);
  parallel.AddFederation(4);
  const auto parallel_report = parallel.runner->Run(kRounds);
  ASSERT_TRUE(parallel_report.ok());

  EXPECT_FALSE(serial_report->fed_ledger_hash.empty());
  EXPECT_EQ(parallel_report->fed_ledger_hash,
            serial_report->fed_ledger_hash);
  EXPECT_EQ(parallel_report->fed_ops_applied,
            serial_report->fed_ops_applied);
  EXPECT_EQ(parallel_report->fed_ops_failed, 0u);
  // Both ledgers were charged: the central bank stays bit-identical too.
  EXPECT_EQ(parallel_report->ledger_hash, serial_report->ledger_hash);

  EXPECT_TRUE(parallel.federation->CheckConservation().ok());
  EXPECT_EQ(parallel.federation->PendingSettlements(), 0u);
  const auto stats = parallel.federation->Stats();
  EXPECT_EQ(stats.intra_transfers + stats.settlements_completed,
            parallel_report->fed_ops_applied);
}

TEST(ParallelRunnerFederationChaosTest, ShardCrashMidEscrowSettlesOnce) {
  const fs::path dir = fs::temp_directory_path() / "gm_fed_chaos";
  fs::remove_all(dir);
  fs::create_directories(dir);

  World world(8, /*serial=*/false, /*threads=*/8);
  world.AddFederation(4, dir);

  // Chaos rides a separate thread: crash and restart one bank shard
  // while all 8 auction shards are charging the federation, so merges
  // land mid cross-shard escrow — some park on the dead creditor, some
  // die at prepare. The assertions are about exactly-once settlement and
  // conservation after recovery, not determinism (crash timing is
  // wall-clock).
  std::atomic<bool> stop{false};
  gm::Thread chaos([&] {
    std::size_t victim = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      world.fed_shards[victim]->SimulateCrash();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      (void)world.fed_shards[victim]->Restart();
      victim = (victim + 1) % world.fed_shards.size();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  const auto report = world.runner->Run(40);
  stop.store(true, std::memory_order_relaxed);
  chaos.Join();

  ASSERT_TRUE(report.ok());
  // Every buffered op landed in exactly one bucket.
  const auto expected_ops =
      report->ticks *
      static_cast<std::uint64_t>(world.runner->config().transfers_per_shard);
  EXPECT_EQ(report->fed_ops_applied + report->fed_ops_failed, expected_ops);

  // Quiesce: restart whatever died, then drive every parked escrow to
  // its exactly-once completion.
  for (const auto& shard : world.fed_shards) {
    if (shard->crashed()) {
      ASSERT_TRUE(shard->Restart().ok());
    }
  }
  ASSERT_TRUE(world.federation->ResumeSettlements(0).ok());
  EXPECT_EQ(world.federation->PendingSettlements(), 0u);
  EXPECT_TRUE(world.federation->CheckConservation().ok());

  // Exactly-once in Money terms: what the fund accounts lost is exactly
  // what the host accounts gained — nothing double-credited, nothing
  // lost in a crashed escrow.
  Money funds;
  Money takes;
  for (std::size_t i = 0; i < world.hosts.size(); ++i) {
    funds +=
        world.federation->Balance("broker/fund-" + std::to_string(i)).value();
    takes +=
        world.federation->Balance("broker/host-" + std::to_string(i)).value();
  }
  EXPECT_EQ(funds + takes,
            Money::Dollars(100.0 * static_cast<double>(world.hosts.size())));

  // Recovery is bit-identical: crash + WAL replay reproduces the exact
  // federation ledger hash.
  const std::string hash_before = world.federation->LedgerHash();
  for (const auto& shard : world.fed_shards) {
    shard->SimulateCrash();
    ASSERT_TRUE(shard->Restart().ok());
  }
  EXPECT_EQ(world.federation->LedgerHash(), hash_before);

  // Note: settlement ids of escrows whose release was lost to a crash
  // are re-claimed on resume, so the reconciler's registry cross-check
  // stays clean and the signed report attests conservation.
  bank::federation::Reconciler reconciler(world.federation.get(),
                                          crypto::TestGroup(), 7);
  const auto sweep = reconciler.Sweep(1000);
  EXPECT_TRUE(sweep.conserved) << sweep.detail;
  EXPECT_TRUE(reconciler.VerifyReport(sweep).ok());

  fs::remove_all(dir);
}

}  // namespace
}  // namespace gm::host
