#include "host/host.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace gm::host {
namespace {

using sim::Seconds;

HostSpec TestSpec() {
  HostSpec spec;
  spec.id = "h1";
  spec.cpus = 2;
  spec.cycles_per_cpu = 100.0;  // tiny numbers keep tests readable
  spec.virtualization_overhead = 0.0;
  spec.vm_boot_time = 0;
  spec.max_vms = 4;
  return spec;
}

TEST(ProportionalShareTest, EqualWeightsEqualShares) {
  const auto granted = ProportionalShareWithCap({1.0, 1.0}, 200.0, 100.0);
  EXPECT_DOUBLE_EQ(granted[0], 100.0);
  EXPECT_DOUBLE_EQ(granted[1], 100.0);
}

TEST(ProportionalShareTest, ProportionalToWeights) {
  const auto granted = ProportionalShareWithCap({3.0, 1.0}, 100.0, 100.0);
  EXPECT_DOUBLE_EQ(granted[0], 75.0);
  EXPECT_DOUBLE_EQ(granted[1], 25.0);
}

TEST(ProportionalShareTest, CapBindsAndRedistributes) {
  // Proportional would be 150/50 but the cap is 100: excess flows to the
  // other entity (work conservation).
  const auto granted = ProportionalShareWithCap({3.0, 1.0}, 200.0, 100.0);
  EXPECT_DOUBLE_EQ(granted[0], 100.0);
  EXPECT_DOUBLE_EQ(granted[1], 100.0);
}

TEST(ProportionalShareTest, CascadingCaps) {
  const auto granted =
      ProportionalShareWithCap({10.0, 5.0, 1.0}, 300.0, 120.0);
  EXPECT_DOUBLE_EQ(granted[0], 120.0);
  EXPECT_DOUBLE_EQ(granted[1], 120.0);
  EXPECT_DOUBLE_EQ(granted[2], 60.0);
  EXPECT_DOUBLE_EQ(std::accumulate(granted.begin(), granted.end(), 0.0),
                   300.0);
}

TEST(ProportionalShareTest, ZeroAndNegativeWeightsExcluded) {
  const auto granted =
      ProportionalShareWithCap({0.0, 2.0, -1.0}, 100.0, 100.0);
  EXPECT_DOUBLE_EQ(granted[0], 0.0);
  EXPECT_DOUBLE_EQ(granted[1], 100.0);
  EXPECT_DOUBLE_EQ(granted[2], 0.0);
}

TEST(ProportionalShareTest, SingleEntityTakesCapOnly) {
  const auto granted = ProportionalShareWithCap({5.0}, 200.0, 100.0);
  EXPECT_DOUBLE_EQ(granted[0], 100.0);
}

TEST(ProportionalShareTest, EmptyOrDegenerateInputs) {
  EXPECT_TRUE(ProportionalShareWithCap({}, 100.0, 50.0).empty());
  const auto zero_total = ProportionalShareWithCap({1.0}, 0.0, 50.0);
  EXPECT_DOUBLE_EQ(zero_total[0], 0.0);
}

TEST(ProportionalShareTest, NeverExceedsTotalOrCap) {
  const std::vector<double> weights{7.0, 3.0, 2.0, 1.0, 0.5};
  for (double total : {10.0, 100.0, 1000.0}) {
    for (double cap : {5.0, 50.0, 500.0}) {
      const auto granted = ProportionalShareWithCap(weights, total, cap);
      double sum = 0.0;
      for (double g : granted) {
        EXPECT_LE(g, cap + 1e-9);
        sum += g;
      }
      EXPECT_LE(sum, total + 1e-9);
    }
  }
}

TEST(PhysicalHostTest, CapacityAccounting) {
  HostSpec spec = TestSpec();
  spec.virtualization_overhead = 0.05;
  PhysicalHost host(spec);
  EXPECT_DOUBLE_EQ(host.PerCpuCapacity(), 95.0);
  EXPECT_DOUBLE_EQ(host.TotalCapacity(), 190.0);
}

TEST(PhysicalHostTest, VmLifecycle) {
  PhysicalHost host(TestSpec());
  const auto vm = host.CreateVm("vm-1", "alice", 0);
  ASSERT_TRUE(vm.ok());
  EXPECT_EQ(host.vm_count(), 1u);
  EXPECT_EQ(host.FindVmByOwner("alice"), *vm);
  EXPECT_EQ(host.FindVmByOwner("bob"), nullptr);
  EXPECT_FALSE(host.CreateVm("vm-1", "bob", 0).ok());  // duplicate id
  EXPECT_TRUE(host.DestroyVm("vm-1").ok());
  EXPECT_EQ(host.vm_count(), 0u);
  EXPECT_FALSE(host.DestroyVm("vm-1").ok());
}

TEST(PhysicalHostTest, VmLimitEnforced) {
  PhysicalHost host(TestSpec());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        host.CreateVm("vm-" + std::to_string(i), "u", 0).ok());
  }
  const auto overflow = host.CreateVm("vm-4", "u", 0);
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
}

TEST(PhysicalHostTest, AdvanceIntervalSharesByWeight) {
  PhysicalHost host(TestSpec());  // 2 CPUs x 100 = 200 total, cap 100
  auto a = host.CreateVm("vm-a", "alice", 0);
  auto b = host.CreateVm("vm-b", "bob", 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  (*a)->Enqueue({1, 1e9, nullptr});
  (*b)->Enqueue({2, 1e9, nullptr});
  const auto slices =
      host.AdvanceInterval(0, Seconds(10), {{"vm-a", 3.0}, {"vm-b", 1.0}});
  ASSERT_EQ(slices.size(), 2u);
  // Proportional 150/50 capped at 100 -> redistribute -> 100/100.
  for (const auto& slice : slices) {
    EXPECT_DOUBLE_EQ(slice.granted, 100.0);
    EXPECT_DOUBLE_EQ(slice.used, 1000.0);
    EXPECT_DOUBLE_EQ(slice.used_fraction, 1.0);
  }
}

TEST(PhysicalHostTest, IdleVmExcludedFromAllocation) {
  PhysicalHost host(TestSpec());
  auto a = host.CreateVm("vm-a", "alice", 0);
  auto b = host.CreateVm("vm-b", "bob", 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  (*a)->Enqueue({1, 1e9, nullptr});
  // vm-b has no work: all weighted capacity flows to vm-a (up to its cap).
  const auto slices =
      host.AdvanceInterval(0, Seconds(10), {{"vm-a", 1.0}, {"vm-b", 9.0}});
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].vm_id, "vm-a");
  EXPECT_DOUBLE_EQ(slices[0].granted, 100.0);  // single-vCPU cap
}

TEST(PhysicalHostTest, ZeroWeightVmGetsNothing) {
  PhysicalHost host(TestSpec());
  auto a = host.CreateVm("vm-a", "alice", 0);
  ASSERT_TRUE(a.ok());
  (*a)->Enqueue({1, 1e9, nullptr});
  const auto slices = host.AdvanceInterval(0, Seconds(10), {});
  EXPECT_TRUE(slices.empty());
}

TEST(PhysicalHostTest, UsedFractionBelowOneWhenQueueDrains) {
  PhysicalHost host(TestSpec());
  auto a = host.CreateVm("vm-a", "alice", 0);
  ASSERT_TRUE(a.ok());
  (*a)->Enqueue({1, 50.0, nullptr});  // needs 0.5s at 100/s
  const auto slices = host.AdvanceInterval(0, Seconds(10), {{"vm-a", 1.0}});
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_DOUBLE_EQ(slices[0].used, 50.0);
  EXPECT_NEAR(slices[0].used_fraction, 0.05, 1e-12);
}

TEST(PhysicalHostTest, BootingVmExcludedUntilReady) {
  HostSpec spec = TestSpec();
  spec.vm_boot_time = Seconds(30);
  PhysicalHost host(spec);
  auto a = host.CreateVm("vm-a", "alice", 0);
  ASSERT_TRUE(a.ok());
  (*a)->Enqueue({1, 1e9, nullptr});
  EXPECT_TRUE(host.AdvanceInterval(0, Seconds(10), {{"vm-a", 1.0}}).empty());
  // Once ready, it runs.
  const auto slices =
      host.AdvanceInterval(Seconds(30), Seconds(10), {{"vm-a", 1.0}});
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_GT(slices[0].used, 0.0);
}

TEST(PhysicalHostTest, UtilizationTracksDeliveredCycles) {
  PhysicalHost host(TestSpec());
  auto a = host.CreateVm("vm-a", "alice", 0);
  ASSERT_TRUE(a.ok());
  (*a)->Enqueue({1, 500.0, nullptr});
  host.AdvanceInterval(0, Seconds(10), {{"vm-a", 1.0}});
  // 500 cycles delivered out of 200 * 10 = 2000 offered.
  EXPECT_NEAR(host.Utilization(Seconds(10)), 0.25, 1e-12);
}

TEST(PackageCatalogTest, InstallTimeIncludesDependenciesOnce) {
  PackageCatalog catalog = PackageCatalog::Default();
  std::map<std::string, bool> installed;
  const auto blast_time = catalog.InstallTime("blast", installed);
  ASSERT_TRUE(blast_time.ok());
  EXPECT_TRUE(installed["glibc"]);
  EXPECT_TRUE(installed["perl"]);
  EXPECT_TRUE(installed["blast"]);
  // glibc (30) + perl (40) + blast (120) at 10 MB/s + 3 x 2s overhead.
  EXPECT_EQ(*blast_time, sim::Seconds(19.0 + 6.0));

  // Re-installing on the same VM is free for shared deps.
  const auto python_time = catalog.InstallTime("python", installed);
  ASSERT_TRUE(python_time.ok());
  EXPECT_EQ(*python_time, sim::Seconds(8.0 + 2.0));  // python only
}

TEST(PackageCatalogTest, UnknownPackageFails) {
  PackageCatalog catalog = PackageCatalog::Default();
  std::map<std::string, bool> installed;
  EXPECT_FALSE(catalog.InstallTime("matlab", installed).ok());
}

TEST(PackageCatalogTest, DependencyCycleDetected) {
  PackageCatalog catalog;
  catalog.Add({"a", 1.0, {"b"}});
  catalog.Add({"b", 1.0, {"a"}});
  std::map<std::string, bool> installed;
  const auto status = catalog.InstallTime("a", installed);
  EXPECT_EQ(status.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PackageCatalogTest, HasAndGet) {
  PackageCatalog catalog = PackageCatalog::Default();
  EXPECT_TRUE(catalog.Has("blast"));
  EXPECT_FALSE(catalog.Has("matlab"));
  EXPECT_DOUBLE_EQ(catalog.Get("blast")->size_mb, 120.0);
}

}  // namespace
}  // namespace gm::host
