#include "host/vm.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gm::host {
namespace {

using sim::Seconds;

TEST(VmTest, BootLifecycle) {
  VirtualMachine vm("vm-1", "alice", Seconds(30));
  EXPECT_EQ(vm.state(0), VmState::kBooting);
  EXPECT_EQ(vm.state(Seconds(30)), VmState::kReady);
  EXPECT_FALSE(vm.Runnable(Seconds(30)));  // no work yet
  vm.Enqueue({1, 1000.0, nullptr});
  EXPECT_TRUE(vm.Runnable(Seconds(30)));
  EXPECT_FALSE(vm.Runnable(Seconds(10)));  // still booting
  EXPECT_EQ(vm.state(Seconds(31)), VmState::kRunning);
}

TEST(VmTest, ProvisioningExtendsReadiness) {
  VirtualMachine vm("vm-1", "alice", Seconds(30));
  vm.ExtendProvisioning(Seconds(20));
  EXPECT_EQ(vm.state(Seconds(40)), VmState::kProvisioning);
  EXPECT_EQ(vm.state(Seconds(50)), VmState::kReady);
}

TEST(VmTest, RuntimeTracking) {
  VirtualMachine vm("vm-1", "alice", 0);
  EXPECT_FALSE(vm.HasRuntime("blast"));
  vm.MarkRuntimeInstalled("blast");
  EXPECT_TRUE(vm.HasRuntime("blast"));
}

TEST(VmTest, AdvanceConsumesWorkAndFiresCompletion) {
  VirtualMachine vm("vm-1", "alice", 0);
  std::vector<sim::SimTime> completions;
  vm.Enqueue({1, 100.0, [&](sim::SimTime t) { completions.push_back(t); }});
  // 100 cycles at 10 cycles/s takes 10 s; give one 20 s interval.
  const Cycles used = vm.Advance(0, Seconds(20), 10.0);
  EXPECT_DOUBLE_EQ(used, 100.0);
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0], Seconds(10));  // interpolated mid-interval
  EXPECT_EQ(vm.completed_items(), 1u);
  EXPECT_FALSE(vm.HasWork());
}

TEST(VmTest, AdvancePartialProgressCarriesOver) {
  VirtualMachine vm("vm-1", "alice", 0);
  bool done = false;
  vm.Enqueue({1, 100.0, [&](sim::SimTime) { done = true; }});
  EXPECT_DOUBLE_EQ(vm.Advance(0, Seconds(4), 10.0), 40.0);
  EXPECT_FALSE(done);
  EXPECT_DOUBLE_EQ(vm.PendingCycles(), 60.0);
  EXPECT_DOUBLE_EQ(vm.Advance(Seconds(4), Seconds(10), 10.0), 60.0);
  EXPECT_TRUE(done);
}

TEST(VmTest, AdvanceMultipleItemsInOneInterval) {
  VirtualMachine vm("vm-1", "alice", 0);
  std::vector<sim::SimTime> completions;
  for (std::uint64_t i = 0; i < 3; ++i)
    vm.Enqueue({i, 50.0, [&](sim::SimTime t) { completions.push_back(t); }});
  const Cycles used = vm.Advance(0, Seconds(20), 10.0);
  EXPECT_DOUBLE_EQ(used, 150.0);
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], Seconds(5));
  EXPECT_EQ(completions[1], Seconds(10));
  EXPECT_EQ(completions[2], Seconds(15));
}

TEST(VmTest, AdvanceBeforeReadyDoesNothing) {
  VirtualMachine vm("vm-1", "alice", Seconds(100));
  vm.Enqueue({1, 10.0, nullptr});
  EXPECT_DOUBLE_EQ(vm.Advance(0, Seconds(10), 10.0), 0.0);
}

TEST(VmTest, AdvanceStraddlingReadinessUsesTail) {
  VirtualMachine vm("vm-1", "alice", Seconds(5));
  vm.Enqueue({1, 1000.0, nullptr});
  // Interval [0, 10): only [5, 10) is usable -> 50 cycles at 10/s.
  EXPECT_DOUBLE_EQ(vm.Advance(0, Seconds(10), 10.0), 50.0);
}

TEST(VmTest, ZeroCapacityOrNoWork) {
  VirtualMachine vm("vm-1", "alice", 0);
  EXPECT_DOUBLE_EQ(vm.Advance(0, Seconds(10), 0.0), 0.0);
  EXPECT_DOUBLE_EQ(vm.Advance(0, Seconds(10), 10.0), 0.0);  // empty queue
}

TEST(VmTest, DeliveredCyclesAccumulate) {
  VirtualMachine vm("vm-1", "alice", 0);
  vm.Enqueue({1, 100.0, nullptr});
  vm.Advance(0, Seconds(5), 10.0);
  vm.Advance(Seconds(5), Seconds(5), 10.0);
  EXPECT_DOUBLE_EQ(vm.delivered_cycles(), 100.0);
}

TEST(VmTest, DestroyClearsQueue) {
  VirtualMachine vm("vm-1", "alice", 0);
  vm.Enqueue({1, 100.0, nullptr});
  vm.Destroy();
  EXPECT_TRUE(vm.destroyed());
  EXPECT_FALSE(vm.HasWork());
  EXPECT_EQ(vm.state(0), VmState::kDestroyed);
}

TEST(VmTest, PendingCyclesZeroWhenEmpty) {
  VirtualMachine vm("vm-1", "alice", 0);
  EXPECT_DOUBLE_EQ(vm.PendingCycles(), 0.0);
}

}  // namespace
}  // namespace gm::host
