// TrafficModel: diurnal/flash rate shape, Poisson arrival splitting
// across shards, heavy-tailed size/budget sampling and the determinism
// contract (pure function of config + explicit args + Rng stream).
#include <gtest/gtest.h>

#include <cstdint>

#include "common/rng.hpp"
#include "scenario/traffic.hpp"
#include "sim/time.hpp"

namespace gm::scenario {
namespace {

TEST(TrafficModelTest, DiurnalCycleShapesRate) {
  TrafficConfig config;
  config.base_arrivals_per_sec = 2.0;
  config.diurnal_amplitude = 0.4;
  config.diurnal_period = sim::kDay;
  TrafficModel model(config);

  EXPECT_NEAR(model.RateAt(0), 2.0, 1e-9);
  EXPECT_NEAR(model.RateAt(sim::kDay / 4), 2.0 * 1.4, 1e-9);      // peak
  EXPECT_NEAR(model.RateAt(3 * sim::kDay / 4), 2.0 * 0.6, 1e-9);  // trough
  // Periodic: one full day later the rate repeats exactly.
  EXPECT_NEAR(model.RateAt(sim::kDay / 4),
              model.RateAt(sim::kDay + sim::kDay / 4), 1e-9);
}

TEST(TrafficModelTest, FlashWindowMultipliesRate) {
  TrafficConfig config;
  config.base_arrivals_per_sec = 3.0;
  config.diurnal_amplitude = 0.0;  // isolate the flash factor
  config.flash_start = 1000 * sim::kSecond;
  config.flash_duration = 100 * sim::kSecond;
  config.flash_multiplier = 10.0;
  TrafficModel model(config);

  EXPECT_FALSE(model.InFlash(config.flash_start - 1));
  EXPECT_TRUE(model.InFlash(config.flash_start));
  EXPECT_TRUE(model.InFlash(config.flash_start + config.flash_duration - 1));
  EXPECT_FALSE(model.InFlash(config.flash_start + config.flash_duration));
  EXPECT_EQ(model.FlashEnd(), config.flash_start + config.flash_duration);

  EXPECT_NEAR(model.RateAt(config.flash_start - 1), 3.0, 1e-9);
  EXPECT_NEAR(model.RateAt(config.flash_start + 1), 30.0, 1e-9);
}

TEST(TrafficModelTest, NoFlashMeansNoFlashEnd) {
  TrafficModel model(TrafficConfig{});
  EXPECT_EQ(model.FlashEnd(), -1);
  EXPECT_FALSE(model.InFlash(0));
  EXPECT_FALSE(model.InFlash(sim::kDay));
}

TEST(TrafficModelTest, SampleArrivalsIsDeterministic) {
  TrafficModel model(TrafficConfig{});
  Rng a(12345);
  Rng b(12345);
  for (int step = 0; step < 32; ++step) {
    const sim::SimTime now = step * 10 * sim::kSecond;
    EXPECT_EQ(model.SampleArrivals(now, 10 * sim::kSecond, 1.0, a),
              model.SampleArrivals(now, 10 * sim::kSecond, 1.0, b))
        << "step " << step;
  }
}

TEST(TrafficModelTest, ShardedArrivalsPreserveTheMean) {
  // Sum of 4 shards each sampling share=1/4 must have the same mean as
  // the whole process (sum of independent Poissons); check both against
  // the analytic mean rate*dt.
  TrafficConfig config;
  config.base_arrivals_per_sec = 5.0;
  config.diurnal_amplitude = 0.0;
  TrafficModel model(config);
  const sim::SimDuration dt = 10 * sim::kSecond;
  const double expected = 5.0 * 10.0;  // per interval

  std::uint64_t whole = 0;
  std::uint64_t split = 0;
  const int rounds = 400;
  Rng whole_rng(7);
  Rng shard_rng[4] = {Rng(101), Rng(202), Rng(303), Rng(404)};
  for (int r = 0; r < rounds; ++r) {
    whole += model.SampleArrivals(0, dt, 1.0, whole_rng);
    for (auto& rng : shard_rng) split += model.SampleArrivals(0, dt, 0.25, rng);
  }
  const double whole_mean = static_cast<double>(whole) / rounds;
  const double split_mean = static_cast<double>(split) / rounds;
  // stddev of the per-round mean is sqrt(50/400) ~ 0.35; 5% of 50 = 2.5
  // gives ~7 sigma of headroom against flakes.
  EXPECT_NEAR(whole_mean, expected, 2.5);
  EXPECT_NEAR(split_mean, expected, 2.5);
}

TEST(TrafficModelTest, ZeroShareYieldsZeroArrivals) {
  TrafficModel model(TrafficConfig{});
  Rng rng(1);
  EXPECT_EQ(model.SampleArrivals(0, 10 * sim::kSecond, 0.0, rng), 0u);
}

TEST(TrafficModelTest, ParetoOrdersStayInBounds) {
  TrafficConfig config;
  config.users = 1000;
  config.size_model = TrafficConfig::SizeModel::kPareto;
  TrafficModel model(config);
  Rng rng(99);
  for (int i = 0; i < 4000; ++i) {
    const JobOrder order = model.SampleOrder(rng);
    EXPECT_LT(order.user, config.users);
    EXPECT_GE(order.size, config.size_scale);  // Pareto minimum = scale
    EXPECT_LE(order.size, config.size_cap);
    EXPECT_TRUE(order.budget.is_positive());
    EXPECT_LE(order.budget, config.budget_cap);
    EXPECT_GE(order.deadline, config.deadline_floor);
    EXPECT_FALSE(order.hostile);
  }
}

TEST(TrafficModelTest, SizeCapTruncatesTheTail) {
  TrafficConfig config;
  config.size_cap = 2 * config.size_scale;  // P(X > 2*scale) = 2^-1.6
  TrafficModel model(config);
  Rng rng(17);
  bool saw_capped = false;
  for (int i = 0; i < 200; ++i) {
    const JobOrder order = model.SampleOrder(rng);
    EXPECT_LE(order.size, config.size_cap);
    if (order.size == config.size_cap) saw_capped = true;
  }
  EXPECT_TRUE(saw_capped);
}

TEST(TrafficModelTest, LognormalOrdersRespectCap) {
  TrafficConfig config;
  config.size_model = TrafficConfig::SizeModel::kLognormal;
  TrafficModel model(config);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const JobOrder order = model.SampleOrder(rng);
    EXPECT_GT(order.size, 0.0);
    EXPECT_LE(order.size, config.size_cap);
  }
}

TEST(TrafficModelTest, DeadlineScalesWithJobSize) {
  TrafficConfig config;
  TrafficModel model(config);
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const JobOrder order = model.SampleOrder(rng);
    const double ideal_secs = order.size / config.reference_capacity;
    const sim::SimDuration scaled =
        sim::Seconds(config.deadline_slack * ideal_secs);
    EXPECT_EQ(order.deadline, std::max(config.deadline_floor, scaled));
  }
}

TEST(TrafficModelTest, SampleOrderIsDeterministic) {
  TrafficModel model(TrafficConfig{});
  Rng a(2024);
  Rng b(2024);
  for (int i = 0; i < 256; ++i) {
    const JobOrder x = model.SampleOrder(a);
    const JobOrder y = model.SampleOrder(b);
    EXPECT_EQ(x.user, y.user);
    EXPECT_EQ(x.size, y.size);  // bit-identical doubles, same stream
    EXPECT_EQ(x.budget, y.budget);
    EXPECT_EQ(x.deadline, y.deadline);
  }
}

}  // namespace
}  // namespace gm::scenario
