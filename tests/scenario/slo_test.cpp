// SloChecker: every liveness/safety invariant must trigger on exactly
// the epoch rows that violate it and stay silent on clean rows.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "scenario/slo.hpp"

namespace gm::scenario {
namespace {

// A row that satisfies every invariant under the default SloConfig.
EpochTelemetry CleanEpoch(int epoch = 0) {
  EpochTelemetry telem;
  telem.epoch = epoch;
  telem.arrivals = 100;
  telem.completions = 90;
  telem.max_queue_depth = 10;
  telem.worst_wait_ratio = 0.8;
  telem.replay_attempts = 5;
  telem.replays_rejected = 5;
  telem.settle_p99_ns = 1.0e6;
  telem.total_balance = Money::Dollars(1000);
  telem.expected_total = Money::Dollars(1000);
  telem.reconciler_clean = true;
  return telem;
}

TEST(SloCheckerTest, CleanEpochsPass) {
  SloChecker checker{SloConfig{}};
  for (int e = 0; e < 5; ++e) checker.Check(CleanEpoch(e));
  EXPECT_TRUE(checker.report().passed);
  EXPECT_TRUE(checker.report().violations.empty());
  EXPECT_EQ(checker.report().epochs_checked, 5);
  EXPECT_EQ(checker.report().Summary().substr(0, 4), "PASS");
}

TEST(SloCheckerTest, QueueDepthBoundIsEnforced) {
  SloConfig config;
  config.max_queue_depth = 100;
  SloChecker checker(config);
  EpochTelemetry telem = CleanEpoch(3);
  telem.max_queue_depth = 101;
  checker.Check(telem);
  ASSERT_EQ(checker.report().violations.size(), 1u);
  EXPECT_FALSE(checker.report().passed);
  EXPECT_EQ(checker.report().violations[0].invariant, "bounded-queue");
  EXPECT_EQ(checker.report().violations[0].epoch, 3);
}

TEST(SloCheckerTest, StarvationMultipleIsEnforced) {
  SloChecker checker{SloConfig{}};  // starvation_multiple = 4.0
  EpochTelemetry telem = CleanEpoch();
  telem.worst_wait_ratio = 4.5;
  checker.Check(telem);
  ASSERT_EQ(checker.report().violations.size(), 1u);
  EXPECT_EQ(checker.report().violations[0].invariant, "starvation");
}

TEST(SloCheckerTest, SettlementP99CanBeEnforcedOrReportedOnly) {
  EpochTelemetry telem = CleanEpoch();
  telem.settle_p99_ns = 6.0e6;  // over the 5 ms default limit

  SloChecker enforcing{SloConfig{}};
  enforcing.Check(telem);
  ASSERT_EQ(enforcing.report().violations.size(), 1u);
  EXPECT_EQ(enforcing.report().violations[0].invariant, "settlement-p99");

  // Wall-clock latency is nondeterministic; scenarios that pin digests
  // exclude it from pass/fail.
  SloConfig relaxed;
  relaxed.enforce_settle_p99 = false;
  SloChecker reporting(relaxed);
  reporting.Check(telem);
  EXPECT_TRUE(reporting.report().passed);
}

TEST(SloCheckerTest, ConservationIsExact) {
  SloChecker checker{SloConfig{}};
  EpochTelemetry telem = CleanEpoch();
  // One missing micro-dollar is a failed epoch, not a rounding error.
  telem.total_balance = telem.expected_total - Money::FromMicros(1);
  checker.Check(telem);
  ASSERT_EQ(checker.report().violations.size(), 1u);
  EXPECT_EQ(checker.report().violations[0].invariant, "conservation");
}

TEST(SloCheckerTest, DirtyReconcilerFailsConservation) {
  SloChecker checker{SloConfig{}};
  EpochTelemetry telem = CleanEpoch();
  telem.reconciler_clean = false;
  checker.Check(telem);
  ASSERT_EQ(checker.report().violations.size(), 1u);
  EXPECT_EQ(checker.report().violations[0].invariant, "conservation");
}

TEST(SloCheckerTest, AcceptedReplayIsADoubleSpend) {
  SloChecker checker{SloConfig{}};
  EpochTelemetry telem = CleanEpoch();
  telem.replay_attempts = 10;
  telem.replays_rejected = 9;  // one slipped through
  checker.Check(telem);
  ASSERT_EQ(checker.report().violations.size(), 1u);
  EXPECT_EQ(checker.report().violations[0].invariant, "replay-rejection");
}

TEST(SloCheckerTest, ViolationsAccumulateAcrossEpochs) {
  SloConfig config;
  config.max_queue_depth = 10;
  SloChecker checker(config);
  for (int e = 0; e < 3; ++e) {
    EpochTelemetry telem = CleanEpoch(e);
    telem.max_queue_depth = 1000;
    telem.reconciler_clean = false;
    checker.Check(telem);
  }
  EXPECT_EQ(checker.report().violations.size(), 6u);
  EXPECT_EQ(checker.report().epochs_checked, 3);
  EXPECT_EQ(checker.report().Summary().substr(0, 4), "FAIL");
}

}  // namespace
}  // namespace gm::scenario
