// AdversaryModel: activity window gating, flood/snipe/replay sampling
// bounds, and the same purity/determinism contract as TrafficModel.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "scenario/adversary.hpp"
#include "sim/time.hpp"

namespace gm::scenario {
namespace {

AdversaryConfig AllOn() {
  AdversaryConfig config;
  config.snipers = 8;
  config.snipe_rate_per_sec = 2.0;
  config.flood_rate_per_sec = 2.0;
  config.replay_rate_per_sec = 2.0;
  return config;
}

TEST(AdversaryModelTest, DisabledModelIsNeverActive) {
  AdversaryModel model{AdversaryConfig{}};
  EXPECT_FALSE(model.config().any_enabled());
  EXPECT_FALSE(model.ActiveAt(0));
  EXPECT_FALSE(model.ActiveAt(sim::kDay));
}

TEST(AdversaryModelTest, ActivityWindowGatesEverySampler) {
  AdversaryConfig config = AllOn();
  config.active_from = 100 * sim::kSecond;
  config.active_until = 200 * sim::kSecond;
  AdversaryModel model(config);

  EXPECT_FALSE(model.ActiveAt(99 * sim::kSecond));
  EXPECT_TRUE(model.ActiveAt(100 * sim::kSecond));
  EXPECT_TRUE(model.ActiveAt(199 * sim::kSecond));
  EXPECT_FALSE(model.ActiveAt(200 * sim::kSecond));

  Rng rng(1);
  const sim::SimTime outside = 50 * sim::kSecond;
  const sim::SimDuration dt = 10 * sim::kSecond;
  EXPECT_TRUE(model.SnipeBids(outside, dt, 1.0, rng).empty());
  EXPECT_TRUE(model.FloodOrders(outside, dt, 1.0, rng).empty());
  EXPECT_TRUE(model.ReplayIds(outside, dt, 1.0, 4, 100, rng).empty());
}

TEST(AdversaryModelTest, ZeroActiveUntilMeansForever) {
  AdversaryConfig config = AllOn();
  config.active_until = 0;
  AdversaryModel model(config);
  EXPECT_TRUE(model.ActiveAt(0));
  EXPECT_TRUE(model.ActiveAt(365 * sim::kDay));
}

TEST(AdversaryModelTest, SnipeBidsStayInBounds) {
  AdversaryModel model(AllOn());
  Rng rng(42);
  std::size_t total = 0;
  for (int step = 0; step < 50; ++step) {
    for (const SnipeBid& bid :
         model.SnipeBids(0, 10 * sim::kSecond, 1.0, rng)) {
      ++total;
      EXPECT_LT(bid.sniper, model.config().snipers);
      EXPECT_GE(bid.rate.micros_per_sec(), 0);
      EXPECT_LE(bid.rate.micros_per_sec(),
                model.config().snipe_max_rate.micros_per_sec());
      EXPECT_EQ(bid.fund, model.config().snipe_fund);
    }
  }
  EXPECT_GT(total, 0u);  // mean 20/step over 50 steps
}

TEST(AdversaryModelTest, FloodOrdersAreHostileWithTinyPositiveBudgets) {
  AdversaryModel model(AllOn());
  Rng rng(43);
  std::size_t total = 0;
  for (int step = 0; step < 50; ++step) {
    for (const JobOrder& order :
         model.FloodOrders(0, 10 * sim::kSecond, 1.0, rng)) {
      ++total;
      EXPECT_TRUE(order.hostile);
      EXPECT_TRUE(order.budget.is_positive());
      EXPECT_LE(order.budget, model.config().flood_budget);
      EXPECT_EQ(order.size, model.config().flood_size);
      EXPECT_GT(order.deadline, 0);
    }
  }
  EXPECT_GT(total, 0u);
}

TEST(AdversaryModelTest, ReplayIdsLookLikeSettlementIds) {
  AdversaryModel model(AllOn());
  Rng rng(44);
  std::size_t total = 0;
  for (int step = 0; step < 50; ++step) {
    for (const ReplayProbe& probe :
         model.ReplayIds(0, 10 * sim::kSecond, 1.0, /*shard_hint=*/4,
                         /*seq_hint=*/500, rng)) {
      ++total;
      // "s<shard>-<seq>", shard < hint, 1 <= seq <= hint — the exact id
      // space the two-phase protocol mints from.
      ASSERT_GE(probe.settlement_id.size(), 4u);
      EXPECT_EQ(probe.settlement_id[0], 's');
      const std::size_t dash = probe.settlement_id.find('-');
      ASSERT_NE(dash, std::string::npos);
      const int shard = std::stoi(probe.settlement_id.substr(1, dash - 1));
      const long seq = std::stol(probe.settlement_id.substr(dash + 1));
      EXPECT_GE(shard, 0);
      EXPECT_LT(shard, 4);
      EXPECT_GE(seq, 1);
      EXPECT_LE(seq, 500);
    }
  }
  EXPECT_GT(total, 0u);
}

TEST(AdversaryModelTest, SamplersAreDeterministic) {
  AdversaryModel model(AllOn());
  Rng a(777);
  Rng b(777);
  for (int step = 0; step < 20; ++step) {
    const sim::SimTime now = step * 10 * sim::kSecond;
    const auto bids_a = model.SnipeBids(now, 10 * sim::kSecond, 1.0, a);
    const auto bids_b = model.SnipeBids(now, 10 * sim::kSecond, 1.0, b);
    ASSERT_EQ(bids_a.size(), bids_b.size());
    for (std::size_t i = 0; i < bids_a.size(); ++i) {
      EXPECT_EQ(bids_a[i].sniper, bids_b[i].sniper);
      EXPECT_EQ(bids_a[i].rate.micros_per_sec(),
                bids_b[i].rate.micros_per_sec());
    }
    const auto probes_a = model.ReplayIds(now, 10 * sim::kSecond, 1.0, 4, 9, a);
    const auto probes_b = model.ReplayIds(now, 10 * sim::kSecond, 1.0, 4, 9, b);
    ASSERT_EQ(probes_a.size(), probes_b.size());
    for (std::size_t i = 0; i < probes_a.size(); ++i)
      EXPECT_EQ(probes_a[i].settlement_id, probes_b[i].settlement_id);
  }
}

}  // namespace
}  // namespace gm::scenario
