// GridScenarioBackend end-to-end smoke: a short flash-crowd scenario
// with all three adversaries over the full-fidelity GridMarket stack
// must pass every SLO, conserve money exactly, and be reproducible.
#include <gtest/gtest.h>

#include <string>

#include "scenario/engine.hpp"
#include "scenario/grid_backend.hpp"
#include "sim/time.hpp"

namespace gm::scenario {
namespace {

ScenarioConfig SmokeScenario() {
  ScenarioConfig config;
  config.seed = 21;
  config.epochs = 3;
  config.epoch_duration = sim::kMinute;

  config.traffic.users = 500;
  config.traffic.base_arrivals_per_sec = 0.4;
  config.traffic.flash_start = sim::kMinute;  // epoch 1 is the spike
  config.traffic.flash_duration = 30 * sim::kSecond;
  config.traffic.flash_multiplier = 10.0;

  config.adversary.snipers = 4;
  config.adversary.snipe_rate_per_sec = 0.3;
  config.adversary.flood_rate_per_sec = 0.3;
  config.adversary.replay_rate_per_sec = 0.3;

  // Wall-clock latency is reported but nondeterministic; keep pass/fail
  // deterministic for the digest comparison below.
  config.slo.enforce_settle_p99 = false;
  config.slo.max_queue_depth = 10'000;
  return config;
}

GridScenarioBackend::Options SmokeOptions() {
  GridScenarioBackend::Options options;
  options.grid.hosts = 3;
  options.grid.cpus_per_host = 2;
  options.grid.bank_shards = 4;
  options.identities = 4;  // Schnorr keygen per identity: keep it small
  return options;
}

TEST(GridScenarioBackendTest, FlashCrowdWithAdversariesPassesEverySlo) {
  const ScenarioConfig scenario = SmokeScenario();
  GridScenarioBackend backend(scenario, SmokeOptions());
  const ScenarioResult result = ScenarioEngine(scenario).Run(backend);

  EXPECT_TRUE(result.slo.passed) << result.slo.Summary();
  EXPECT_EQ(result.slo.epochs_checked, 3);
  EXPECT_GT(result.total_arrivals, 0u);
  EXPECT_EQ(result.digest.size(), 16u);

  for (const EpochTelemetry& telem : result.epochs) {
    // Conservation is exact every epoch, adversaries or not, and every
    // replay attempt (registry probes + broker token re-presentation)
    // was refused.
    EXPECT_TRUE(telem.reconciler_clean) << "epoch " << telem.epoch;
    EXPECT_EQ(telem.total_balance, telem.expected_total);
    EXPECT_EQ(telem.replay_attempts, telem.replays_rejected);
  }
  // The adversaries actually ran: at least one epoch saw replay probes.
  std::uint64_t replays = 0;
  for (const EpochTelemetry& telem : result.epochs)
    replays += telem.replay_attempts;
  EXPECT_GT(replays, 0u);
}

TEST(GridScenarioBackendTest, SameSeedReproducesTheDigest) {
  const ScenarioConfig scenario = SmokeScenario();
  GridScenarioBackend a(scenario, SmokeOptions());
  GridScenarioBackend b(scenario, SmokeOptions());
  const ScenarioResult ra = ScenarioEngine(scenario).Run(a);
  const ScenarioResult rb = ScenarioEngine(scenario).Run(b);
  EXPECT_EQ(ra.digest, rb.digest);
  EXPECT_EQ(a.LedgerHash(), b.LedgerHash());

  ScenarioConfig reseeded = SmokeScenario();
  reseeded.seed = 22;
  GridScenarioBackend c(reseeded, SmokeOptions());
  EXPECT_NE(ScenarioEngine(reseeded).Run(c).digest, ra.digest);
}

}  // namespace
}  // namespace gm::scenario
