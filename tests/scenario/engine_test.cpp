// ScenarioEngine over a scripted fake backend: digest stability and
// sensitivity, the wall-clock exclusion rule, flash-crowd recovery
// tracking, and the per-(seed, shard, round) stream seed.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "scenario/engine.hpp"
#include "sim/time.hpp"

namespace gm::scenario {
namespace {

// Replays pre-scripted telemetry rows; LedgerHash changes per epoch so
// the digest covers the ledger-evolution sequence too.
class FakeBackend : public ScenarioBackend {
 public:
  explicit FakeBackend(std::vector<EpochTelemetry> rows)
      : rows_(std::move(rows)) {}

  void RunEpoch(int epoch, EpochTelemetry& out) override {
    EpochTelemetry row = rows_[static_cast<std::size_t>(epoch)];
    row.epoch = epoch;
    out = row;
  }
  std::string LedgerHash() override {
    return "ledger-" + std::to_string(++hashes_);
  }

 private:
  std::vector<EpochTelemetry> rows_;
  int hashes_ = 0;
};

EpochTelemetry Row(sim::SimTime start, sim::SimTime end,
                   std::size_t queue_depth) {
  EpochTelemetry telem;
  telem.start = start;
  telem.end = end;
  telem.arrivals = 100;
  telem.completions = 95;
  telem.max_queue_depth = queue_depth;
  telem.replay_attempts = 3;
  telem.replays_rejected = 3;
  telem.total_balance = Money::Dollars(500);
  telem.expected_total = Money::Dollars(500);
  telem.reconciler_clean = true;
  return telem;
}

std::vector<EpochTelemetry> FiveMinuteRows(
    const std::vector<std::size_t>& depths) {
  std::vector<EpochTelemetry> rows;
  for (std::size_t e = 0; e < depths.size(); ++e) {
    const sim::SimTime start = static_cast<sim::SimTime>(e) * 5 * sim::kMinute;
    rows.push_back(Row(start, start + 5 * sim::kMinute, depths[e]));
  }
  return rows;
}

ScenarioConfig FiveEpochConfig() {
  ScenarioConfig config;
  config.epochs = 5;
  config.epoch_duration = 5 * sim::kMinute;
  config.slo.max_queue_depth = 100'000;
  return config;
}

TEST(ScenarioEngineTest, DigestIsStableAcrossRuns) {
  const auto rows = FiveMinuteRows({10, 12, 500, 100, 20});
  const ScenarioConfig config = FiveEpochConfig();
  FakeBackend a(rows);
  FakeBackend b(rows);
  const ScenarioResult ra = ScenarioEngine(config).Run(a);
  const ScenarioResult rb = ScenarioEngine(config).Run(b);
  EXPECT_EQ(ra.digest, rb.digest);
  EXPECT_EQ(ra.digest.size(), 16u);  // 64-bit hex
  EXPECT_EQ(ra.total_arrivals, 500u);
  EXPECT_TRUE(ra.slo.passed) << ra.slo.Summary();
}

TEST(ScenarioEngineTest, DigestSeesEveryDeterministicObservable) {
  const ScenarioConfig config = FiveEpochConfig();
  auto rows = FiveMinuteRows({10, 12, 500, 100, 20});
  FakeBackend base(rows);
  const std::string baseline = ScenarioEngine(config).Run(base).digest;

  rows[3].completions += 1;  // one count anywhere flips the digest
  FakeBackend changed(rows);
  EXPECT_NE(ScenarioEngine(config).Run(changed).digest, baseline);

  ScenarioConfig reseeded = config;
  reseeded.seed = 43;  // the seed itself is digested
  FakeBackend same(FiveMinuteRows({10, 12, 500, 100, 20}));
  EXPECT_NE(ScenarioEngine(reseeded).Run(same).digest, baseline);
}

TEST(ScenarioEngineTest, WallClockLatencyStaysOutOfTheDigest) {
  const ScenarioConfig config = FiveEpochConfig();
  auto rows = FiveMinuteRows({10, 12, 500, 100, 20});
  FakeBackend base(rows);
  const std::string baseline = ScenarioEngine(config).Run(base).digest;

  // settle_p99_ns varies run to run on real hardware; the digest must
  // not change with it or serial == parallel could never hold.
  for (auto& row : rows) row.settle_p99_ns = 9.9e9;
  FakeBackend jittered(rows);
  EXPECT_EQ(ScenarioEngine(config).Run(jittered).digest, baseline);
}

TEST(ScenarioEngineTest, FlashRecoveryMeasuredFromFlashEnd) {
  ScenarioConfig config = FiveEpochConfig();
  config.traffic.flash_start = 10 * sim::kMinute;  // inside epoch 2
  config.traffic.flash_duration = 2 * sim::kMinute;
  config.recovery_slack = 2.0;

  // Pre-flash peak = 12 -> envelope 24. Epoch 3 (depth 100) is still
  // over; epoch 4 (depth 20) recovers. flash_end = 12 min, epoch 4 ends
  // at 25 min -> recovery = 13 min.
  FakeBackend backend(FiveMinuteRows({10, 12, 500, 100, 20}));
  const ScenarioResult result = ScenarioEngine(config).Run(backend);
  EXPECT_EQ(result.flash_recovery, 13 * sim::kMinute);
}

TEST(ScenarioEngineTest, NoRecoveryReportedWhenQueuesNeverDrain) {
  ScenarioConfig config = FiveEpochConfig();
  config.traffic.flash_start = 10 * sim::kMinute;
  config.traffic.flash_duration = 2 * sim::kMinute;
  FakeBackend backend(FiveMinuteRows({10, 12, 500, 400, 300}));
  EXPECT_EQ(ScenarioEngine(config).Run(backend).flash_recovery, -1);

  // And with no flash configured at all, the field stays -1.
  ScenarioConfig quiet = FiveEpochConfig();
  FakeBackend calm(FiveMinuteRows({10, 12, 11, 10, 12}));
  EXPECT_EQ(ScenarioEngine(quiet).Run(calm).flash_recovery, -1);
}

TEST(ScenarioEngineTest, SloViolationsSurfaceInTheResult) {
  ScenarioConfig config = FiveEpochConfig();
  config.slo.max_queue_depth = 50;
  FakeBackend backend(FiveMinuteRows({10, 12, 500, 100, 20}));
  const ScenarioResult result = ScenarioEngine(config).Run(backend);
  EXPECT_FALSE(result.slo.passed);
  EXPECT_EQ(result.slo.violations.size(), 2u);  // epochs 2 and 3
  EXPECT_EQ(result.epochs.size(), 5u);
}

TEST(ShardStreamSeedTest, DistinctPerShardAndRoundStableAcrossCalls) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t shard = 0; shard < 8; ++shard) {
    for (std::uint64_t round = 0; round < 64; ++round) {
      const std::uint64_t s = ShardStreamSeed(42, shard, round);
      EXPECT_EQ(s, ShardStreamSeed(42, shard, round));
      EXPECT_TRUE(seen.insert(s).second)
          << "collision at shard " << shard << " round " << round;
    }
  }
  EXPECT_NE(ShardStreamSeed(1, 0, 0), ShardStreamSeed(2, 0, 0));
}

}  // namespace
}  // namespace gm::scenario
