// Trace propagation through the RPC layer: a retried-then-deduped call
// must surface as exactly ONE span (with the attempt count recorded) and
// one server-side dedup instant — never as two units of work.
#include <gtest/gtest.h>

#include <optional>

#include "net/fault.hpp"
#include "net/rpc.hpp"
#include "telemetry/telemetry.hpp"

namespace gm::net {
namespace {

class RpcTraceTest : public ::testing::Test {
 protected:
  // Fixed 1 ms one-way latency, no jitter, no baseline loss: the only
  // nondeterminism left is the retry backoff jitter, which bounds but
  // does not change the event structure.
  RpcTraceTest() : bus_(kernel_, LatencyModel{1000, 0, 0.0}, 3) {}

  sim::Kernel kernel_;
  MessageBus bus_;
  telemetry::Telemetry telemetry_;
};

TEST_F(RpcTraceTest, RetriedThenDedupedCallIsOneSpan) {
  RpcServer server(bus_, "bank");
  server.AttachTelemetry(&telemetry_);
  server.RegisterMethod("echo", [](const Bytes& request) -> Result<Bytes> {
    return request;
  });
  RpcClient client(bus_, "agent");
  client.AttachTelemetry(&telemetry_);

  // The request leaves at t=0 and executes at t=1ms; the response is
  // sent inside the loss window and vanishes. The retry (after the 10 ms
  // timeout + backoff) misses the window, hits the dedup cache, and the
  // replayed response completes the call.
  bus_.AddLossWindow({/*from=*/1000, /*to=*/1500, /*probability=*/1.0});

  CallOptions options;
  options.timeout = 10 * sim::kMillisecond;
  options.max_attempts = 3;
  options.trace = telemetry_.tracer().NewTrace();

  std::optional<Result<Bytes>> response;
  client.Call("bank", "echo", {}, options,
              [&](Result<Bytes> r) { response = std::move(r); });
  kernel_.Run();

  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->ok());
  // The method body ran once; the second request was answered from cache.
  EXPECT_EQ(server.executions(), 1u);
  EXPECT_EQ(server.replays(), 1u);
  EXPECT_EQ(client.retries(), 1u);
  EXPECT_EQ(client.timeouts(), 1u);

  const auto events = telemetry_.tracer().EventsFor(options.trace);
  ASSERT_EQ(events.size(), 2u);
  // One span for the logical call, both attempts folded into it.
  EXPECT_EQ(events[0].name, "rpc:echo");
  EXPECT_FALSE(events[0].instant);
  EXPECT_EQ(events[0].attempts, 2u);
  EXPECT_EQ(events[0].status, telemetry::SpanStatus::kOk);
  EXPECT_GT(events[0].Duration(), 0);
  // The dedup replay is an instant carrying the duplicate attempt number.
  EXPECT_EQ(events[1].name, "rpc-dedup");
  EXPECT_TRUE(events[1].instant);
  EXPECT_DOUBLE_EQ(events[1].value, 2.0);

  const auto snapshot = telemetry_.metrics().Snapshot();
  EXPECT_EQ(snapshot.CounterOr("net.rpc.calls"), 1u);
  EXPECT_EQ(snapshot.CounterOr("net.rpc.retries"), 1u);
  EXPECT_EQ(snapshot.CounterOr("net.rpc.timeouts"), 1u);
  EXPECT_EQ(snapshot.CounterOr("net.rpc.executions"), 1u);
  EXPECT_EQ(snapshot.CounterOr("net.rpc.replays"), 1u);
  EXPECT_EQ(snapshot.histograms.at("net.rpc.latency_us").count, 1u);
}

TEST_F(RpcTraceTest, ExhaustedCallEndsSpanWithError) {
  RpcClient client(bus_, "agent");
  client.AttachTelemetry(&telemetry_);
  CallOptions options;
  options.timeout = 5 * sim::kMillisecond;
  options.max_attempts = 2;
  options.trace = telemetry_.tracer().NewTrace();

  std::optional<Result<Bytes>> response;
  client.Call("ghost", "m", {}, options,
              [&](Result<Bytes> r) { response = std::move(r); });
  kernel_.Run();

  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status().code(), StatusCode::kDeadlineExceeded);
  const auto events = telemetry_.tracer().EventsFor(options.trace);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].attempts, 2u);
  EXPECT_EQ(events[0].status, telemetry::SpanStatus::kError);
}

TEST_F(RpcTraceTest, EnvelopeCarriesTraceIdOnTheWire) {
  Envelope envelope;
  envelope.source = "a";
  envelope.destination = "b";
  envelope.trace_id = 0xDEADBEEFCAFEF00Dull;
  envelope.correlation_id = 7;
  envelope.attempt = 2;
  const Bytes wire = envelope.Encode();
  const auto decoded = Envelope::Decode(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->trace_id, 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(decoded->attempt, 2u);
}

TEST_F(RpcTraceTest, UntracedCallRecordsNoSpan) {
  RpcServer server(bus_, "bank");
  server.AttachTelemetry(&telemetry_);
  server.RegisterMethod("echo", [](const Bytes& request) -> Result<Bytes> {
    return request;
  });
  RpcClient client(bus_, "agent");
  client.AttachTelemetry(&telemetry_);
  std::optional<Result<Bytes>> response;
  client.Call("bank", "echo", {}, CallOptions{},
              [&](Result<Bytes> r) { response = std::move(r); });
  kernel_.Run();
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->ok());
  EXPECT_EQ(telemetry_.tracer().size(), 0u);  // counters only, no spans
  EXPECT_EQ(telemetry_.metrics().Snapshot().CounterOr("net.rpc.calls"), 1u);
}

}  // namespace
}  // namespace gm::net
