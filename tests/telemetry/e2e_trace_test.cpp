// End-to-end telemetry through the assembled GridMarket: one submission
// must produce a complete causal chain (submit -> fund-verify -> bid ->
// execute -> stage-out -> refund) with every lifecycle span appearing
// exactly once, and the snapshot-driven monitor tables must render the
// same text as the legacy struct-taking shims.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "core/grid_market.hpp"

namespace gm {
namespace {

GridMarket::Config TelemetryConfig() {
  GridMarket::Config config;
  config.hosts = 4;
  config.cpus_per_host = 2;
  config.cycles_per_cpu = 1000.0;  // tiny units for fast tests
  config.virtualization_overhead = 0.0;
  config.vm_boot_time = sim::Seconds(5);
  config.plugin.reference_capacity = 1000.0;
  config.seed = 7;
  config.telemetry.enabled = true;
  return config;
}

grid::JobDescription SmallJob() {
  grid::JobDescription description;
  description.executable = "/bin/work";
  description.job_name = "traced";
  description.count = 2;
  description.chunks = 4;
  description.cpu_time_minutes = 1.0;
  description.wall_time_minutes = 120.0;
  description.input_files = {{"in.dat", 10.0}};
  description.output_files = {{"out.dat", 1.0}};
  return description;
}

int CountSpans(const std::vector<telemetry::SpanEvent>& events,
               const std::string& name) {
  int n = 0;
  for (const auto& event : events)
    if (event.name == name && !event.instant) ++n;
  return n;
}

TEST(TelemetryE2eTest, JobLifecycleIsOneCompleteSpanChain) {
  GridMarket grid(TelemetryConfig());
  // The scheduler links auctioneers directly; probe RPCs are what put
  // traffic on the simulated bus.
  ASSERT_TRUE(grid.EnableHealthProbes().ok());
  ASSERT_TRUE(grid.RegisterUser("alice", Money::Dollars(100.0)).ok());
  const auto job_id = grid.SubmitJob("alice", SmallJob(), Money::Dollars(10.0));
  ASSERT_TRUE(job_id.ok()) << job_id.status().ToString();
  grid.RunUntil(sim::Hours(1));
  const auto job = grid.Job(*job_id);
  ASSERT_TRUE(job.ok());
  ASSERT_EQ((*job)->state, grid::JobState::kFinished) << (*job)->failure;
  EXPECT_NE((*job)->trace, 0u);

  const auto events = grid.JobTrace(*job_id);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  // Each lifecycle phase is exactly one span — retries and re-bids never
  // double-count work.
  for (const char* name :
       {"submit", "fund-verify", "bid", "stage-in", "execute", "stage-out",
        "refund"}) {
    EXPECT_EQ(CountSpans(*events, name), 1) << "span: " << name;
  }
  // Everything closed ok, ordered by start time.
  sim::SimTime last_start = -1;
  for (const auto& event : *events) {
    EXPECT_GE(event.start, last_start);
    last_start = event.start;
    if (!event.instant) {
      EXPECT_EQ(event.status, telemetry::SpanStatus::kOk)
          << event.name << " left " << telemetry::SpanStatusName(event.status);
      EXPECT_GE(event.end, event.start) << event.name;
    }
  }
  // The market charged the job at least once along the way.
  EXPECT_GE(CountSpans(*events, "submit"), 1);
  int ticks = 0;
  for (const auto& event : *events)
    if (event.name == "auction-tick") ++ticks;
  EXPECT_GT(ticks, 0);

  // Hot-path metrics accumulated while the job ran.
  const auto snapshot = grid.CollectMetrics();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_GT(snapshot->CounterOr("market.auction.ticks"), 0u);
  EXPECT_GT(snapshot->CounterOr("bank.transfers"), 0u);
  EXPECT_GT(snapshot->CounterOr("net.bus.sent"), 0u);
  EXPECT_GT(snapshot->histograms.at("net.bus.delivery_latency_us").count, 0u);
  EXPECT_GT(snapshot->summaries.at("predict.persistence.abs_err").count, 0u);
}

TEST(TelemetryE2eTest, DisabledTelemetryLeavesNoTrace) {
  GridMarket::Config config = TelemetryConfig();
  config.telemetry.enabled = false;
  GridMarket grid(config);
  ASSERT_TRUE(grid.RegisterUser("alice", Money::Dollars(100.0)).ok());
  const auto job_id = grid.SubmitJob("alice", SmallJob(), Money::Dollars(10.0));
  ASSERT_TRUE(job_id.ok());
  grid.RunUntil(sim::Hours(1));
  EXPECT_EQ(grid.telemetry(), nullptr);
  EXPECT_EQ(grid.Job(*job_id).value()->trace, 0u);
  EXPECT_FALSE(grid.CollectMetrics().ok());
  EXPECT_FALSE(grid.JobTrace(*job_id).ok());
}

TEST(TelemetryE2eTest, JsonlExportRoundTrips) {
  GridMarket grid(TelemetryConfig());
  ASSERT_TRUE(grid.RegisterUser("alice", Money::Dollars(100.0)).ok());
  const auto job_id = grid.SubmitJob("alice", SmallJob(), Money::Dollars(10.0));
  ASSERT_TRUE(job_id.ok());
  grid.RunUntil(sim::Hours(1));

  const std::string path =
      ::testing::TempDir() + "/telemetry_e2e_export.jsonl";
  ASSERT_TRUE(grid.WriteTelemetryJsonl(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  bool saw_span = false;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    if (line.find("\"kind\":\"span\"") != std::string::npos) saw_span = true;
    ++lines;
  }
  EXPECT_GT(lines, 10u);
  EXPECT_TRUE(saw_span);
}

TEST(TelemetryE2eTest, NetTableRendersIdenticallyFromSnapshot) {
  GridMarket grid(TelemetryConfig());
  ASSERT_TRUE(grid.RegisterUser("alice", Money::Dollars(100.0)).ok());
  ASSERT_TRUE(grid.SubmitJob("alice", SmallJob(), Money::Dollars(10.0)).ok());
  grid.RunUntil(sim::Minutes(20));

  const auto snapshot = grid.CollectMetrics();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(grid::RenderNetTable(*snapshot),
            grid::RenderNetTable(grid.bus().stats(), &grid.broker().plugin()));
}

TEST(TelemetryE2eTest, StoreTableShimMatchesSnapshotRenderer) {
  store::StoreStats a;
  a.appended_records = 12;
  a.appended_bytes = 4096;
  a.snapshots_written = 2;
  store::StoreStats b;
  b.appended_records = 7;
  b.recoveries = 1;
  b.replayed_records = 7;
  const std::vector<grid::StoreRow> rows = {{"bank", a}, {"price/h00", b}};

  telemetry::MetricsRegistry registry;
  for (const auto& row : rows) grid::MirrorStoreStats(row, registry);
  EXPECT_EQ(grid::RenderStoreTable(rows),
            grid::RenderStoreTable(registry.Snapshot()));
  // Both component rows present.
  const std::string table = grid::RenderStoreTable(rows);
  EXPECT_NE(table.find("bank"), std::string::npos);
  EXPECT_NE(table.find("price/h00"), std::string::npos);
}

}  // namespace
}  // namespace gm
