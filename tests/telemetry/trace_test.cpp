#include "telemetry/trace.hpp"

#include <gtest/gtest.h>

#include "telemetry/telemetry.hpp"

namespace gm::telemetry {
namespace {

TEST(TracerTest, SpanLifecycle) {
  Tracer tracer;
  const TraceId trace = tracer.NewTrace();
  const SpanId span = tracer.BeginSpan(trace, "submit", "user=alice", 100);
  tracer.AddAttempt(span);
  tracer.EndSpan(span, 250, SpanStatus::kOk);

  const auto events = tracer.EventsFor(trace);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "submit");
  EXPECT_EQ(events[0].detail, "user=alice");
  EXPECT_EQ(events[0].start, 100);
  EXPECT_EQ(events[0].end, 250);
  EXPECT_EQ(events[0].Duration(), 150);
  EXPECT_EQ(events[0].attempts, 2u);
  EXPECT_EQ(events[0].status, SpanStatus::kOk);
  EXPECT_FALSE(events[0].instant);
}

TEST(TracerTest, InstantIsAClosedZeroDurationSpan) {
  Tracer tracer;
  const TraceId trace = tracer.NewTrace();
  tracer.Instant(trace, "auction-tick", "host=h00", 500, 1.25);
  const auto events = tracer.EventsFor(trace);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].instant);
  EXPECT_EQ(events[0].start, 500);
  EXPECT_EQ(events[0].end, 500);
  EXPECT_DOUBLE_EQ(events[0].value, 1.25);
  EXPECT_EQ(events[0].status, SpanStatus::kOk);
}

TEST(TracerTest, EventsForFiltersByTraceAndSortsByStart) {
  Tracer tracer;
  const TraceId a = tracer.NewTrace();
  const TraceId b = tracer.NewTrace();
  tracer.Instant(a, "late", "", 300);
  tracer.Instant(b, "other", "", 50);
  tracer.Instant(a, "early", "", 100);
  const auto events = tracer.EventsFor(a);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "early");
  EXPECT_EQ(events[1].name, "late");
}

TEST(TracerTest, RingEvictsOldestFirst) {
  Tracer tracer(4);
  const TraceId trace = tracer.NewTrace();
  for (int i = 0; i < 10; ++i)
    tracer.Instant(trace, "e" + std::to_string(i), "", i);
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const auto events = tracer.AllEvents();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().name, "e6");
  EXPECT_EQ(events.back().name, "e9");
}

TEST(TracerTest, EndingAnEvictedSpanIsANoOp) {
  Tracer tracer(2);
  const TraceId trace = tracer.NewTrace();
  const SpanId span = tracer.BeginSpan(trace, "doomed", "", 0);
  tracer.Instant(trace, "a", "", 1);
  tracer.Instant(trace, "b", "", 2);  // evicts "doomed"
  tracer.EndSpan(span, 3);            // must not crash or corrupt the ring
  const auto events = tracer.AllEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[1].name, "b");
}

TEST(TracerTest, ReusedSlotDoesNotResurrectOldSpanId) {
  Tracer tracer(1);
  const TraceId trace = tracer.NewTrace();
  const SpanId first = tracer.BeginSpan(trace, "first", "", 0);
  const SpanId second = tracer.BeginSpan(trace, "second", "", 1);  // evicts
  tracer.EndSpan(first, 5);  // stale id: no-op
  tracer.EndSpan(second, 7);
  const auto events = tracer.AllEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "second");
  EXPECT_EQ(events[0].end, 7);
}

TEST(TelemetryTest, JsonlHasOneObjectPerLine) {
  Telemetry telemetry;
  telemetry.metrics().GetCounter("net.bus.sent")->Inc(2);
  telemetry.metrics().GetHistogram("net.rpc.latency_us")->Record(1500);
  const TraceId trace = telemetry.tracer().NewTrace();
  const SpanId span =
      telemetry.tracer().BeginSpan(trace, "submit", "user=\"alice\"", 10);
  telemetry.tracer().EndSpan(span, 20);
  telemetry.tracer().Instant(trace, "open-span-test", "", 30);

  const std::string jsonl = telemetry.ToJsonl();
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    std::size_t nl = jsonl.find('\n', start);
    ASSERT_NE(nl, std::string::npos);  // every line newline-terminated
    const std::string line = jsonl.substr(start, nl - start);
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"kind\""), std::string::npos);
    ++lines;
    start = nl + 1;
  }
  EXPECT_EQ(lines, 4u);  // counter + histogram + span + instant
  // The quote inside the span detail must be escaped, not emitted raw.
  EXPECT_NE(jsonl.find("user=\\\"alice\\\""), std::string::npos);
}

}  // namespace
}  // namespace gm::telemetry
