#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace gm::telemetry {
namespace {

TEST(LatencyHistogramTest, EmptyReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.0), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
  EXPECT_EQ(h.Quantile(1.0), 0u);
}

TEST(LatencyHistogramTest, SingleSampleIsExactAtEveryQuantile) {
  LatencyHistogram h;
  h.Record(777);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 777u);
  EXPECT_EQ(h.max(), 777u);
  // Clamping to the observed min/max makes every quantile the sample
  // itself, even though the bucket [512, 1023] is much wider.
  EXPECT_EQ(h.Quantile(0.01), 777u);
  EXPECT_EQ(h.Quantile(0.5), 777u);
  EXPECT_EQ(h.Quantile(0.99), 777u);
}

TEST(LatencyHistogramTest, ZeroLandsInBucketZero) {
  LatencyHistogram h;
  h.Record(0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
}

TEST(LatencyHistogramTest, ValuesBeyondTopBucketClampToObservedMax) {
  LatencyHistogram h;
  // bit_width(UINT64_MAX) == 64, one past the last bucket index; the top
  // bucket absorbs it instead of indexing out of range.
  h.Record(UINT64_MAX);
  h.Record(UINT64_MAX - 1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket(LatencyHistogram::kBuckets - 1), 2u);
  EXPECT_EQ(h.max(), UINT64_MAX);
  EXPECT_EQ(h.Quantile(1.0), UINT64_MAX);
  EXPECT_GE(h.Quantile(0.5), UINT64_MAX - 1);
}

TEST(LatencyHistogramTest, QuantilesAreOrderedAndBracketed) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  const std::uint64_t p50 = h.Quantile(0.50);
  const std::uint64_t p90 = h.Quantile(0.90);
  const std::uint64_t p99 = h.Quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // Log-bucket resolution: the p50 answer must come from the bucket that
  // actually holds rank 500, i.e. [256, 511].
  EXPECT_GE(p50, 256u);
  EXPECT_LE(p50, 511u);
  EXPECT_LE(p99, 1000u);
}

TEST(LatencyHistogramTest, MergeIsPointwiseUnion) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.Record(10);
  a.Record(20);
  b.Record(5);
  b.Record(40000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 10u + 20u + 5u + 40000u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 40000u);
  EXPECT_EQ(a.Quantile(1.0), 40000u);
  // Merging an empty histogram changes nothing.
  LatencyHistogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 5u);
}

TEST(MetricsRegistryTest, GetReturnsStablePointer) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("net.bus.sent");
  c->Inc();
  // Creating many other metrics must not move the first one (node-based
  // map) — components cache the pointer for their hot loop.
  for (int i = 0; i < 100; ++i)
    registry.GetCounter("filler." + std::to_string(i));
  EXPECT_EQ(registry.GetCounter("net.bus.sent"), c);
  EXPECT_EQ(c->value(), 1u);
}

TEST(MetricsRegistryTest, SnapshotCarriesEveryKind) {
  MetricsRegistry registry;
  registry.GetCounter("a.count")->Inc(3);
  registry.GetGauge("a.gauge")->Set(2.5);
  registry.GetSummary("a.sum")->Observe(-1.5);
  registry.GetSummary("a.sum")->Observe(4.5);
  registry.GetHistogram("a.hist")->Record(100);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterOr("a.count"), 3u);
  EXPECT_EQ(snapshot.CounterOr("missing", 9u), 9u);
  EXPECT_TRUE(snapshot.HasCounter("a.count"));
  EXPECT_FALSE(snapshot.HasCounter("missing"));
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("a.gauge"), 2.5);
  EXPECT_EQ(snapshot.summaries.at("a.sum").count, 2u);
  EXPECT_DOUBLE_EQ(snapshot.summaries.at("a.sum").min, -1.5);
  EXPECT_DOUBLE_EQ(snapshot.summaries.at("a.sum").mean, 1.5);
  EXPECT_EQ(snapshot.histograms.at("a.hist").count, 1u);
  EXPECT_EQ(snapshot.histograms.at("a.hist").p50, 100u);
}

TEST(SummaryTest, TracksSignedMoments) {
  Summary s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.Observe(-3.0);
  s.Observe(1.0);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 1.0);
  EXPECT_DOUBLE_EQ(s.mean(), -1.0);
}

}  // namespace
}  // namespace gm::telemetry
