// Concurrency tests for the metrics layer: counters and gauges are
// relaxed atomics, summaries/histograms and the registry are mutex-backed.
// These tests are the ones the TSan build stage leans on.
#include <atomic>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/concurrency.hpp"
#include "telemetry/metrics.hpp"

namespace gm::telemetry {
namespace {

constexpr int kThreads = 8;
constexpr int kIters = 5000;

TEST(MetricsConcurrencyTest, CounterIncrementsAreNotLost) {
  Counter counter;
  {
    std::vector<gm::Thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i)
      threads.emplace_back([&counter] {
        for (int j = 0; j < kIters; ++j) counter.Inc();
      });
  }  // join
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(MetricsConcurrencyTest, GaugeAlwaysHoldsAWrittenValue) {
  Gauge gauge;
  gauge.Set(1.0);
  {
    std::vector<gm::Thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i)
      threads.emplace_back([&gauge, i] {
        for (int j = 0; j < kIters; ++j)
          gauge.Set(static_cast<double>(i + 1));
      });
  }
  const double v = gauge.value();
  EXPECT_GE(v, 1.0);
  EXPECT_LE(v, static_cast<double>(kThreads));
}

TEST(MetricsConcurrencyTest, SummaryObservationsAllCounted) {
  Summary summary;
  {
    std::vector<gm::Thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i)
      threads.emplace_back([&summary] {
        for (int j = 0; j < kIters; ++j)
          summary.Observe(static_cast<double>(j));
      });
  }
  EXPECT_EQ(summary.count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(summary.min(), 0.0);
  EXPECT_EQ(summary.max(), static_cast<double>(kIters - 1));
}

TEST(MetricsConcurrencyTest, HistogramRecordsAndConcurrentMerge) {
  LatencyHistogram target;
  LatencyHistogram source;
  {
    std::vector<gm::Thread> threads;
    threads.reserve(kThreads + 1);
    for (int i = 0; i < kThreads; ++i)
      threads.emplace_back([&source] {
        for (int j = 1; j <= kIters; ++j)
          source.Record(static_cast<std::uint64_t>(j));
      });
    // Merge concurrently with the recorders: each merge folds in a
    // consistent point-in-time copy (sequential locking, shared rank).
    threads.emplace_back([&target, &source] {
      for (int m = 0; m < 50; ++m) target.Merge(source);
    });
  }
  EXPECT_EQ(source.count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  target.Merge(source);
  EXPECT_GE(target.count(), source.count());
  EXPECT_GE(source.Quantile(0.5), 1u);
}

TEST(MetricsConcurrencyTest, RegistryLookupsFromManyThreads) {
  MetricsRegistry registry;
  std::atomic<Counter*> first{nullptr};
  {
    std::vector<gm::Thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i)
      threads.emplace_back([&registry, &first, i] {
        Counter* c = registry.GetCounter("shared.counter");
        Counter* expected = nullptr;
        // Every thread must resolve the name to the same object.
        if (!first.compare_exchange_strong(expected, c)) {
          EXPECT_EQ(expected, c);
        }
        for (int j = 0; j < kIters; ++j) {
          c->Inc();
          // Interleave map insertions with increments: node-based maps
          // must never invalidate the pointers other threads hold.
          if ((j & 1023) == 0)
            registry.GetHistogram("h" + std::to_string(i))->Record(1);
        }
      });
  }
  EXPECT_EQ(registry.Snapshot().CounterOr("shared.counter"),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace gm::telemetry
