#include "crypto/prime.hpp"

#include <gtest/gtest.h>

#include "crypto/modmath.hpp"
#include "crypto/schnorr.hpp"

namespace gm::crypto {
namespace {

TEST(PrimeTest, SmallPrimesRecognized) {
  Rng rng(1);
  for (std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 97ull, 251ull,
                          257ull, 65537ull}) {
    EXPECT_TRUE(IsProbablePrime(U256(p), rng)) << p;
  }
}

TEST(PrimeTest, SmallCompositesRejected) {
  Rng rng(2);
  for (std::uint64_t n : {0ull, 1ull, 4ull, 6ull, 9ull, 15ull, 91ull,
                          221ull, 255ull, 65535ull}) {
    EXPECT_FALSE(IsProbablePrime(U256(n), rng)) << n;
  }
}

TEST(PrimeTest, CarmichaelNumbersRejected) {
  // Carmichael numbers fool Fermat tests but not Miller-Rabin.
  Rng rng(3);
  for (std::uint64_t n : {561ull, 1105ull, 1729ull, 2465ull, 6601ull,
                          8911ull, 41041ull, 825265ull}) {
    EXPECT_FALSE(IsProbablePrime(U256(n), rng)) << n;
  }
}

TEST(PrimeTest, KnownLargePrimes) {
  Rng rng(4);
  // Mersenne primes 2^61-1 and 2^89-1, and the NIST P-256 order is too big
  // to hardcode meaningfully; use well-known primes.
  EXPECT_TRUE(IsProbablePrime(U256((std::uint64_t{1} << 61) - 1), rng));
  const auto m89 = U256::FromHex("1ffffffffffffffffffffff");  // 2^89 - 1
  ASSERT_TRUE(m89.ok());
  EXPECT_TRUE(IsProbablePrime(*m89, rng));
  // 2^67 - 1 is famously composite (193707721 * 761838257287).
  const auto m67 = U256::FromHex("7ffffffffffffffff");
  ASSERT_TRUE(m67.ok());
  EXPECT_FALSE(IsProbablePrime(*m67, rng));
}

TEST(PrimeTest, RandomPrimeHasRequestedWidth) {
  Rng rng(5);
  for (std::size_t bits : {16u, 32u, 48u, 64u}) {
    const U256 p = RandomPrime(bits, rng);
    EXPECT_EQ(p.BitLength(), bits);
    EXPECT_TRUE(IsProbablePrime(p, rng));
  }
}

TEST(PrimeTest, RandomPrimesDiffer) {
  Rng rng(6);
  const U256 a = RandomPrime(40, rng);
  const U256 b = RandomPrime(40, rng);
  EXPECT_NE(a, b);
}

TEST(SchnorrGroupTest, GenerateSmallGroup) {
  Rng rng(7);
  const auto group = GenerateSchnorrGroup(64, 32, rng);
  ASSERT_TRUE(group.ok());
  EXPECT_EQ(group->p.BitLength(), 64u);
  EXPECT_EQ(group->q.BitLength(), 32u);
  Rng verify_rng(8);
  EXPECT_TRUE(group->Validate(verify_rng));
}

TEST(SchnorrGroupTest, GeneratorHasOrderQ) {
  Rng rng(9);
  const auto group = GenerateSchnorrGroup(80, 40, rng);
  ASSERT_TRUE(group.ok());
  EXPECT_EQ(ModExp(group->g, group->q, group->p), U256::One());
  EXPECT_NE(group->g, U256::One());
  // g^k for 1 <= k < q should not be 1 (order exactly q). Spot-check.
  EXPECT_NE(ModExp(group->g, U256::One(), group->p), U256::One());
  EXPECT_NE(ModExp(group->g, U256(12345), group->p), U256::One());
}

TEST(SchnorrGroupTest, QDividesPMinusOne) {
  Rng rng(10);
  const auto group = GenerateSchnorrGroup(72, 36, rng);
  ASSERT_TRUE(group.ok());
  EXPECT_TRUE(DivMod(group->p - U256::One(), group->q).remainder.IsZero());
}

TEST(SchnorrGroupTest, BadParametersRejected) {
  Rng rng(11);
  EXPECT_FALSE(GenerateSchnorrGroup(64, 64, rng).ok());   // q_bits >= p_bits
  EXPECT_FALSE(GenerateSchnorrGroup(64, 8, rng).ok());    // q too small
  EXPECT_FALSE(GenerateSchnorrGroup(300, 160, rng).ok()); // p too wide
}

TEST(SchnorrGroupTest, ValidateRejectsTamperedGroup) {
  Rng rng(12);
  auto group = GenerateSchnorrGroup(64, 32, rng);
  ASSERT_TRUE(group.ok());
  SchnorrGroup bad = *group;
  bad.g = U256::One();
  Rng verify_rng(13);
  EXPECT_FALSE(bad.Validate(verify_rng));
  bad = *group;
  bad.q = bad.q + U256(2);
  EXPECT_FALSE(bad.Validate(verify_rng));
}

TEST(SchnorrGroupTest, TestGroupIsValidAndCached) {
  const SchnorrGroup& a = TestGroup();
  const SchnorrGroup& b = TestGroup();
  EXPECT_EQ(&a, &b);  // cached singleton
  Rng rng(14);
  EXPECT_TRUE(a.Validate(rng));
  EXPECT_EQ(a.p.BitLength(), 96u);
  EXPECT_EQ(a.q.BitLength(), 48u);
}

TEST(SchnorrGroupTest, DefaultGroupIsFullSizeAndValid) {
  // The deployment-size parameters: 256-bit p, 160-bit q (DSA-era sizes).
  const SchnorrGroup& group = DefaultGroup();
  EXPECT_EQ(group.p.BitLength(), 256u);
  EXPECT_EQ(group.q.BitLength(), 160u);
  Rng rng(77);
  EXPECT_TRUE(group.Validate(rng));
  // Cached singleton.
  EXPECT_EQ(&group, &DefaultGroup());
  // Signatures over the full-size group round-trip.
  Rng key_rng(78);
  const KeyPair keys = KeyPair::Generate(group, key_rng);
  const Signature sig = keys.Sign("full-size token", key_rng);
  EXPECT_TRUE(keys.public_key().Verify("full-size token", sig));
  EXPECT_FALSE(keys.public_key().Verify("tampered", sig));
}

TEST(SchnorrGroupTest, DeterministicGivenSeed) {
  Rng rng_a(42);
  Rng rng_b(42);
  const auto a = GenerateSchnorrGroup(64, 32, rng_a);
  const auto b = GenerateSchnorrGroup(64, 32, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->p, b->p);
  EXPECT_EQ(a->q, b->q);
  EXPECT_EQ(a->g, b->g);
}

}  // namespace
}  // namespace gm::crypto
