#include "crypto/identity.hpp"

#include <gtest/gtest.h>

namespace gm::crypto {
namespace {

TEST(DistinguishedNameTest, ToStringCanonicalForm) {
  DistinguishedName dn{"SE", "KTH", "PDC", "alice"};
  EXPECT_EQ(dn.ToString(), "/C=SE/O=KTH/OU=PDC/CN=alice");
}

TEST(DistinguishedNameTest, ToStringSkipsEmptyFields) {
  DistinguishedName dn;
  dn.common_name = "bob";
  EXPECT_EQ(dn.ToString(), "/CN=bob");
}

TEST(DistinguishedNameTest, ParseRoundTrip) {
  DistinguishedName dn{"SE", "KTH", "Biotech", "carol"};
  const auto parsed = DistinguishedName::Parse(dn.ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, dn);
}

TEST(DistinguishedNameTest, ParseRejectsMissingSlash) {
  EXPECT_FALSE(DistinguishedName::Parse("CN=alice").ok());
  EXPECT_FALSE(DistinguishedName::Parse("").ok());
}

TEST(DistinguishedNameTest, ParseRejectsMissingCn) {
  EXPECT_FALSE(DistinguishedName::Parse("/C=SE/O=KTH").ok());
}

TEST(DistinguishedNameTest, ParseRejectsUnknownAttribute) {
  EXPECT_FALSE(DistinguishedName::Parse("/CN=a/X=b").ok());
  EXPECT_FALSE(DistinguishedName::Parse("/CN=a/nonsense").ok());
}

class CertificateTest : public ::testing::Test {
 protected:
  CertificateTest()
      : ca_(DistinguishedName{"SE", "SweGrid", "CA", "SweGrid Root"},
            TestGroup(), rng_),
        user_keys_(KeyPair::Generate(TestGroup(), rng_)) {}

  Rng rng_{777};
  CertificateAuthority ca_;
  KeyPair user_keys_;
  DistinguishedName user_dn_{"SE", "KTH", "PDC", "alice"};
};

TEST_F(CertificateTest, IssueAndVerify) {
  const Certificate cert =
      ca_.Issue(user_dn_, user_keys_.public_key(), 0, 1'000'000, rng_);
  EXPECT_TRUE(ca_.Verify(cert, 500'000).ok());
  EXPECT_EQ(cert.subject, user_dn_);
  EXPECT_EQ(cert.issuer, ca_.dn());
}

TEST_F(CertificateTest, SerialNumbersIncrease) {
  const Certificate a =
      ca_.Issue(user_dn_, user_keys_.public_key(), 0, 100, rng_);
  const Certificate b =
      ca_.Issue(user_dn_, user_keys_.public_key(), 0, 100, rng_);
  EXPECT_LT(a.serial, b.serial);
}

TEST_F(CertificateTest, ExpiredCertificateRejected) {
  const Certificate cert =
      ca_.Issue(user_dn_, user_keys_.public_key(), 0, 1000, rng_);
  const Status status = ca_.Verify(cert, 2000);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(CertificateTest, NotYetValidRejected) {
  const Certificate cert =
      ca_.Issue(user_dn_, user_keys_.public_key(), 1000, 2000, rng_);
  EXPECT_FALSE(ca_.Verify(cert, 500).ok());
}

TEST_F(CertificateTest, TamperedSubjectRejected) {
  Certificate cert =
      ca_.Issue(user_dn_, user_keys_.public_key(), 0, 1000, rng_);
  cert.subject.common_name = "mallory";
  const Status status = ca_.Verify(cert, 500);
  EXPECT_EQ(status.code(), StatusCode::kUnauthenticated);
}

TEST_F(CertificateTest, TamperedValidityRejected) {
  Certificate cert =
      ca_.Issue(user_dn_, user_keys_.public_key(), 0, 1000, rng_);
  cert.not_after_us = 10'000'000;  // extend lifetime without re-signing
  EXPECT_FALSE(ca_.Verify(cert, 5000).ok());
}

TEST_F(CertificateTest, DifferentCaRejected) {
  CertificateAuthority other_ca(
      DistinguishedName{"US", "OtherGrid", "CA", "Other Root"}, TestGroup(),
      rng_);
  const Certificate cert =
      other_ca.Issue(user_dn_, user_keys_.public_key(), 0, 1000, rng_);
  const Status status = ca_.Verify(cert, 500);
  EXPECT_EQ(status.code(), StatusCode::kPermissionDenied);
}

}  // namespace
}  // namespace gm::crypto
