#include "crypto/biguint.hpp"

#include <gtest/gtest.h>

namespace gm::crypto {
namespace {

TEST(BigUIntTest, ZeroAndOne) {
  EXPECT_TRUE(U256::Zero().IsZero());
  EXPECT_FALSE(U256::One().IsZero());
  EXPECT_TRUE(U256::One().IsOdd());
  EXPECT_EQ(U256::Zero().BitLength(), 0u);
  EXPECT_EQ(U256::One().BitLength(), 1u);
}

TEST(BigUIntTest, HexRoundTrip) {
  const auto v = U256::FromHex("deadbeef00112233445566778899aabb");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToHex(), "deadbeef00112233445566778899aabb");
}

TEST(BigUIntTest, HexLeadingZerosStripped) {
  const auto v = U256::FromHex("000000ff");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToHex(), "ff");
  EXPECT_EQ(U256::Zero().ToHex(), "0");
}

TEST(BigUIntTest, HexUppercaseAccepted) {
  const auto v = U256::FromHex("ABCDEF");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToHex(), "abcdef");
}

TEST(BigUIntTest, HexRejectsGarbage) {
  EXPECT_FALSE(U256::FromHex("xyz").ok());
  // 65 hex digits = 260 bits with a nonzero top nibble.
  std::string wide(65, 'f');
  EXPECT_FALSE(U256::FromHex(wide).ok());
}

TEST(BigUIntTest, FullWidthHexAccepted) {
  const std::string full(64, 'f');
  const auto v = U256::FromHex(full);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->BitLength(), 256u);
}

TEST(BigUIntTest, BytesRoundTrip) {
  const auto v = U256::FromHex("0102030405060708090a0b0c0d0e0f10");
  ASSERT_TRUE(v.ok());
  const Bytes bytes = v->ToBytes();
  EXPECT_EQ(bytes.size(), 32u);
  const auto back = U256::FromBytes(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, *v);
}

TEST(BigUIntTest, FromBytesRejectsWrongWidth) {
  EXPECT_FALSE(U256::FromBytes(Bytes(31, 0)).ok());
  EXPECT_FALSE(U256::FromBytes(Bytes(33, 0)).ok());
}

TEST(BigUIntTest, AdditionCarriesAcrossLimbs) {
  const auto a = U256::FromHex("ffffffffffffffff");  // 2^64 - 1
  ASSERT_TRUE(a.ok());
  const U256 sum = *a + U256::One();
  EXPECT_EQ(sum.ToHex(), "10000000000000000");
}

TEST(BigUIntTest, AdditionWrapsAtFullWidth) {
  const auto max = U256::FromHex(std::string(64, 'f'));
  ASSERT_TRUE(max.ok());
  U256 v = *max;
  const bool carry = v.AddWithCarry(U256::One());
  EXPECT_TRUE(carry);
  EXPECT_TRUE(v.IsZero());
}

TEST(BigUIntTest, SubtractionBorrowsAcrossLimbs) {
  const auto a = U256::FromHex("10000000000000000");
  ASSERT_TRUE(a.ok());
  const U256 diff = *a - U256::One();
  EXPECT_EQ(diff.ToHex(), "ffffffffffffffff");
}

TEST(BigUIntTest, SubtractionUnderflowReportsBorrow) {
  U256 v = U256::One();
  EXPECT_TRUE(v.SubWithBorrow(U256(2)));
  // Wraparound: 1 - 2 == 2^256 - 1.
  EXPECT_EQ(v.BitLength(), 256u);
}

TEST(BigUIntTest, Comparison) {
  EXPECT_LT(U256(1), U256(2));
  EXPECT_GT(U256(2), U256(1));
  EXPECT_EQ(U256(7), U256(7));
  const auto big = U256::FromHex("100000000000000000000000000000000");
  ASSERT_TRUE(big.ok());
  EXPECT_GT(*big, U256(~std::uint64_t{0}));
}

TEST(BigUIntTest, Shifts) {
  const U256 v(1);
  EXPECT_EQ((v << 1).low64(), 2u);
  EXPECT_EQ((v << 64).limb(1), 1u);
  EXPECT_EQ((v << 70).limb(1), 64u);
  const U256 shifted = v << 200;
  EXPECT_EQ(shifted >> 200, v);
  EXPECT_EQ((U256(0x80) >> 3).low64(), 0x10u);
}

TEST(BigUIntTest, BitAccess) {
  U256 v;
  v.SetBit(0);
  v.SetBit(100);
  EXPECT_TRUE(v.Bit(0));
  EXPECT_TRUE(v.Bit(100));
  EXPECT_FALSE(v.Bit(99));
  EXPECT_EQ(v.BitLength(), 101u);
}

TEST(BigUIntTest, MulKnownValues) {
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1.
  const U256 a(~std::uint64_t{0});
  const U512 product = Mul(a, a);
  EXPECT_EQ(product.ToHex(), "fffffffffffffffe0000000000000001");
}

TEST(BigUIntTest, MulSmallValues) {
  EXPECT_EQ(Mul(U256(12345), U256(67890)).low64(), 12345ull * 67890ull);
  EXPECT_TRUE(Mul(U256(0), U256(999)).IsZero());
}

TEST(BigUIntTest, MulFullWidthNoOverflow) {
  const auto max = U256::FromHex(std::string(64, 'f'));
  ASSERT_TRUE(max.ok());
  const U512 product = Mul(*max, *max);
  // (2^256-1)^2 = 2^512 - 2^257 + 1; top bit is bit 511.
  EXPECT_EQ(product.BitLength(), 512u);
}

TEST(BigUIntTest, DivModKnownValues) {
  const auto r = DivMod(U256(100), U256(7));
  EXPECT_EQ(r.quotient.low64(), 14u);
  EXPECT_EQ(r.remainder.low64(), 2u);
}

TEST(BigUIntTest, DivModDividendSmallerThanDivisor) {
  const auto r = DivMod(U256(3), U256(10));
  EXPECT_TRUE(r.quotient.IsZero());
  EXPECT_EQ(r.remainder.low64(), 3u);
}

TEST(BigUIntTest, DivModExactDivision) {
  const auto r = DivMod(U256(144), U256(12));
  EXPECT_EQ(r.quotient.low64(), 12u);
  EXPECT_TRUE(r.remainder.IsZero());
}

TEST(BigUIntTest, DivModReconstructsDividend) {
  Rng rng(77);
  for (int i = 0; i < 50; ++i) {
    const U256 dividend = U256::RandomWithBits(200, rng);
    const U256 divisor = U256::RandomWithBits(90, rng);
    const auto r = DivMod(dividend, divisor);
    // dividend == quotient * divisor + remainder.
    U512 check = Mul(r.quotient, divisor);
    check.AddWithCarry(r.remainder.Extend<8>());
    EXPECT_EQ(check.Truncate<4>(), dividend);
    EXPECT_LT(r.remainder, divisor);
  }
}

TEST(BigUIntTest, ExtendTruncateRoundTrip) {
  const auto v = U256::FromHex("123456789abcdef0123456789abcdef");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Extend<8>().Truncate<4>(), *v);
}

TEST(BigUIntTest, RandomWithBitsHasExactWidth) {
  Rng rng(88);
  for (std::size_t bits : {1u, 17u, 64u, 65u, 128u, 255u, 256u}) {
    const U256 v = U256::RandomWithBits(bits, rng);
    EXPECT_EQ(v.BitLength(), bits) << "bits=" << bits;
  }
}

TEST(BigUIntTest, RandomBelowRespectsBound) {
  Rng rng(99);
  const U256 bound(1000);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(U256::RandomBelow(bound, rng), bound);
  }
}

TEST(BigUIntTest, RandomBelowCoversSmallRange) {
  Rng rng(100);
  bool seen[5] = {};
  for (int i = 0; i < 200; ++i)
    seen[U256::RandomBelow(U256(5), rng).low64()] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

}  // namespace
}  // namespace gm::crypto
