#include "crypto/token.hpp"

#include <gtest/gtest.h>

namespace gm::crypto {
namespace {

class TokenTest : public ::testing::Test {
 protected:
  TokenTest()
      : bank_keys_(KeyPair::Generate(TestGroup(), rng_)),
        user_keys_(KeyPair::Generate(TestGroup(), rng_)) {}

  TransferReceipt MakeReceipt(Money amount = Money::Dollars(500)) {
    TransferReceipt receipt;
    receipt.receipt_id = "rcpt-0001";
    receipt.from_account = "alice";
    receipt.to_account = "swegrid-broker";
    receipt.amount = amount;
    receipt.issued_at_us = 42;
    receipt.bank_signature = bank_keys_.Sign(receipt.SigningPayload(), rng_);
    return receipt;
  }

  Rng rng_{999};
  KeyPair bank_keys_;
  KeyPair user_keys_;
  const std::string dn_ = "/C=SE/O=KTH/CN=alice";
};

TEST_F(TokenTest, MintAndVerify) {
  const TransferToken token = MintToken(MakeReceipt(), dn_, user_keys_, rng_);
  EXPECT_TRUE(VerifyToken(token, bank_keys_.public_key(),
                          user_keys_.public_key(), "swegrid-broker")
                  .ok());
}

TEST_F(TokenTest, RejectsWrongRecipient) {
  const TransferToken token = MintToken(MakeReceipt(), dn_, user_keys_, rng_);
  const Status status = VerifyToken(token, bank_keys_.public_key(),
                                    user_keys_.public_key(), "other-broker");
  EXPECT_EQ(status.code(), StatusCode::kPermissionDenied);
}

TEST_F(TokenTest, RejectsForgedBankSignature) {
  TransferReceipt receipt = MakeReceipt();
  // Mallory forges a receipt with her own key.
  const KeyPair mallory = KeyPair::Generate(TestGroup(), rng_);
  receipt.bank_signature = mallory.Sign(receipt.SigningPayload(), rng_);
  const TransferToken token = MintToken(receipt, dn_, user_keys_, rng_);
  const Status status = VerifyToken(token, bank_keys_.public_key(),
                                    user_keys_.public_key(), "swegrid-broker");
  EXPECT_EQ(status.code(), StatusCode::kUnauthenticated);
}

TEST_F(TokenTest, RejectsTamperedAmount) {
  TransferToken token = MintToken(MakeReceipt(), dn_, user_keys_, rng_);
  token.receipt.amount += Money::Dollars(4500);  // inflate after signing
  EXPECT_FALSE(VerifyToken(token, bank_keys_.public_key(),
                           user_keys_.public_key(), "swegrid-broker")
                   .ok());
}

TEST_F(TokenTest, RejectsMiddlemanDnSwap) {
  // The attack the paper guards against: a middleman replaces the DN
  // mapping to redirect the capability to their own Grid identity.
  TransferToken token = MintToken(MakeReceipt(), dn_, user_keys_, rng_);
  token.grid_dn = "/C=SE/O=KTH/CN=mallory";
  const Status status = VerifyToken(token, bank_keys_.public_key(),
                                    user_keys_.public_key(), "swegrid-broker");
  EXPECT_EQ(status.code(), StatusCode::kUnauthenticated);
}

TEST_F(TokenTest, RejectsMappingSignedByWrongUser) {
  const KeyPair mallory = KeyPair::Generate(TestGroup(), rng_);
  const TransferToken token = MintToken(MakeReceipt(), dn_, mallory, rng_);
  EXPECT_FALSE(VerifyToken(token, bank_keys_.public_key(),
                           user_keys_.public_key(), "swegrid-broker")
                   .ok());
}

TEST_F(TokenTest, RejectsNonPositiveAmount) {
  const TransferToken token =
      MintToken(MakeReceipt(/*amount=*/Money::Zero()), dn_, user_keys_, rng_);
  const Status status = VerifyToken(token, bank_keys_.public_key(),
                                    user_keys_.public_key(), "swegrid-broker");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(TokenRegistryTest, ClaimOncePerReceipt) {
  TokenRegistry registry;
  EXPECT_FALSE(registry.IsSpent("r1"));
  EXPECT_TRUE(registry.Claim("r1").ok());
  EXPECT_TRUE(registry.IsSpent("r1"));
  const Status replay = registry.Claim("r1");
  EXPECT_EQ(replay.code(), StatusCode::kAlreadyClaimed);
  EXPECT_EQ(registry.size(), 1u);
}

// Regression for the adversary/SLO replay counters: a replayed claim must
// come back as the distinct kAlreadyClaimed code (not kAlreadyExists or a
// generic failure), and repeated replays must keep reporting it without
// growing the registry.
TEST(TokenRegistryTest, ReplayReturnsDistinctAlreadyClaimedStatus) {
  TokenRegistry registry;
  ASSERT_TRUE(registry.Claim("s0-17").ok());
  for (int i = 0; i < 3; ++i) {
    const Status replay = registry.Claim("s0-17");
    EXPECT_EQ(replay.code(), StatusCode::kAlreadyClaimed);
    EXPECT_NE(replay.code(), StatusCode::kAlreadyExists);
    EXPECT_NE(replay.code(), StatusCode::kInternal);
  }
  EXPECT_EQ(registry.size(), 1u);
}

TEST(TokenRegistryTest, IndependentReceipts) {
  TokenRegistry registry;
  EXPECT_TRUE(registry.Claim("r1").ok());
  EXPECT_TRUE(registry.Claim("r2").ok());
  EXPECT_EQ(registry.size(), 2u);
}

}  // namespace
}  // namespace gm::crypto
