#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <string>

namespace gm::crypto {
namespace {

// NIST FIPS 180-4 / well-known test vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha256::HexDigest(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256::HexDigest("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(Sha256::HexDigest(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.Update(chunk);
  const auto digest = hasher.Finalize();
  EXPECT_EQ(HexEncode(digest.data(), digest.size()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, ExactBlockBoundary) {
  // 64 bytes == exactly one block; padding goes into a second block.
  const std::string block(64, 'x');
  EXPECT_EQ(Sha256::HexDigest(block).size(), 64u);
  // 55 and 56 bytes straddle the padding boundary (56 forces a new block).
  const std::string s55(55, 'y');
  const std::string s56(56, 'y');
  EXPECT_NE(Sha256::HexDigest(s55), Sha256::HexDigest(s56));
}

TEST(Sha256Test, StreamingMatchesOneShot) {
  const std::string message =
      "The quick brown fox jumps over the lazy dog, repeatedly and with "
      "great determination, across several update calls.";
  Sha256 streaming;
  for (std::size_t i = 0; i < message.size(); i += 7)
    streaming.Update(std::string_view(message).substr(i, 7));
  const auto digest = streaming.Finalize();
  EXPECT_EQ(HexEncode(digest.data(), digest.size()),
            Sha256::HexDigest(message));
}

TEST(Sha256Test, BytesAndStringAgree) {
  const std::string text = "token payload";
  EXPECT_EQ(Sha256::HexDigest(text), Sha256::HexDigest(ToBytes(text)));
}

TEST(Sha256Test, SingleBitChangesAvalanche) {
  const auto a = Sha256::Hash("payload0");
  const auto b = Sha256::Hash("payload1");
  int differing_bits = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint8_t diff = a[i] ^ b[i];
    while (diff != 0) {
      differing_bits += diff & 1;
      diff >>= 1;
    }
  }
  // Expect roughly half of 256 bits to differ.
  EXPECT_GT(differing_bits, 80);
  EXPECT_LT(differing_bits, 176);
}

TEST(Sha256Test, DigestToBytes) {
  const auto digest = Sha256::Hash("abc");
  const Bytes bytes = DigestToBytes(digest);
  ASSERT_EQ(bytes.size(), 32u);
  EXPECT_EQ(bytes[0], 0xba);
  EXPECT_EQ(bytes[31], 0xad);
}

}  // namespace
}  // namespace gm::crypto
