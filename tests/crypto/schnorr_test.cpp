#include "crypto/schnorr.hpp"

#include <gtest/gtest.h>

namespace gm::crypto {
namespace {

class SchnorrTest : public ::testing::Test {
 protected:
  const SchnorrGroup& group_ = TestGroup();
  Rng rng_{12345};
};

TEST_F(SchnorrTest, SignVerifyRoundTrip) {
  const KeyPair keys = KeyPair::Generate(group_, rng_);
  const Signature sig = keys.Sign("pay the broker 500 dollars", rng_);
  EXPECT_TRUE(keys.public_key().Verify("pay the broker 500 dollars", sig));
}

TEST_F(SchnorrTest, VerifyRejectsWrongMessage) {
  const KeyPair keys = KeyPair::Generate(group_, rng_);
  const Signature sig = keys.Sign("amount=100", rng_);
  EXPECT_FALSE(keys.public_key().Verify("amount=1000", sig));
}

TEST_F(SchnorrTest, VerifyRejectsWrongKey) {
  const KeyPair alice = KeyPair::Generate(group_, rng_);
  const KeyPair mallory = KeyPair::Generate(group_, rng_);
  const Signature sig = alice.Sign("transfer", rng_);
  EXPECT_FALSE(mallory.public_key().Verify("transfer", sig));
}

TEST_F(SchnorrTest, VerifyRejectsTamperedSignature) {
  const KeyPair keys = KeyPair::Generate(group_, rng_);
  Signature sig = keys.Sign("message", rng_);
  sig.s = sig.s + U256::One();
  EXPECT_FALSE(keys.public_key().Verify("message", sig));
  sig = keys.Sign("message", rng_);
  sig.e = sig.e + U256::One();
  EXPECT_FALSE(keys.public_key().Verify("message", sig));
}

TEST_F(SchnorrTest, VerifyRejectsOutOfRangeComponents) {
  const KeyPair keys = KeyPair::Generate(group_, rng_);
  Signature sig = keys.Sign("message", rng_);
  sig.s = group_.q;  // s must be < q
  EXPECT_FALSE(keys.public_key().Verify("message", sig));
}

TEST_F(SchnorrTest, SignaturesAreRandomized) {
  const KeyPair keys = KeyPair::Generate(group_, rng_);
  const Signature a = keys.Sign("same message", rng_);
  const Signature b = keys.Sign("same message", rng_);
  EXPECT_FALSE(a == b);  // fresh nonce each time
  EXPECT_TRUE(keys.public_key().Verify("same message", a));
  EXPECT_TRUE(keys.public_key().Verify("same message", b));
}

TEST_F(SchnorrTest, EmptyMessageSignable) {
  const KeyPair keys = KeyPair::Generate(group_, rng_);
  const Signature sig = keys.Sign("", rng_);
  EXPECT_TRUE(keys.public_key().Verify("", sig));
  EXPECT_FALSE(keys.public_key().Verify("x", sig));
}

TEST_F(SchnorrTest, SignatureEncodeDecodeRoundTrip) {
  const KeyPair keys = KeyPair::Generate(group_, rng_);
  const Signature sig = keys.Sign("encode me", rng_);
  const auto decoded = Signature::Decode(sig.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, sig);
  EXPECT_TRUE(keys.public_key().Verify("encode me", *decoded));
}

TEST_F(SchnorrTest, SignatureDecodeRejectsGarbage) {
  EXPECT_FALSE(Signature::Decode("no-colon").ok());
  EXPECT_FALSE(Signature::Decode("zz:11").ok());
  EXPECT_FALSE(Signature::Decode("11:zz").ok());
}

TEST_F(SchnorrTest, FingerprintStableAndKeyDependent) {
  const KeyPair a = KeyPair::Generate(group_, rng_);
  const KeyPair b = KeyPair::Generate(group_, rng_);
  EXPECT_EQ(a.public_key().Fingerprint(), a.public_key().Fingerprint());
  EXPECT_NE(a.public_key().Fingerprint(), b.public_key().Fingerprint());
  EXPECT_EQ(a.public_key().Fingerprint().size(), 64u);
}

TEST_F(SchnorrTest, HashToZqInRange) {
  for (int i = 0; i < 50; ++i) {
    const U256 r = U256::RandomBelow(group_.p, rng_);
    const U256 e = HashToZq(r, "message", group_.q);
    EXPECT_LT(e, group_.q);
  }
}

TEST_F(SchnorrTest, DefaultConstructedPublicKeyVerifiesNothing) {
  PublicKey empty;
  Signature sig{U256(1), U256(1)};
  EXPECT_FALSE(empty.Verify("anything", sig));
}

}  // namespace
}  // namespace gm::crypto
