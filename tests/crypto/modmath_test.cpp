#include "crypto/modmath.hpp"

#include <gtest/gtest.h>

namespace gm::crypto {
namespace {

TEST(ModMathTest, ModBasics) {
  EXPECT_EQ(Mod(U256(10), U256(7)).low64(), 3u);
  EXPECT_EQ(Mod(U256(7), U256(7)).low64(), 0u);
  EXPECT_EQ(Mod(U256(3), U256(7)).low64(), 3u);
}

TEST(ModMathTest, ModAddWithReduction) {
  EXPECT_EQ(ModAdd(U256(5), U256(6), U256(7)).low64(), 4u);
  EXPECT_EQ(ModAdd(U256(0), U256(0), U256(7)).low64(), 0u);
  // Unreduced inputs.
  EXPECT_EQ(ModAdd(U256(100), U256(100), U256(7)).low64(), 200 % 7);
}

TEST(ModMathTest, ModAddNearFullWidthDoesNotWrap) {
  const auto big = U256::FromHex(std::string(64, 'f'));
  ASSERT_TRUE(big.ok());
  const auto m = U256::FromHex("ffffffffffffffffffffffffffffff61");  // < 2^256
  ASSERT_TRUE(m.ok());
  const U256 sum = ModAdd(*big, *big, *m);
  EXPECT_LT(sum, *m);
}

TEST(ModMathTest, ModSub) {
  EXPECT_EQ(ModSub(U256(3), U256(5), U256(7)).low64(), 5u);
  EXPECT_EQ(ModSub(U256(5), U256(3), U256(7)).low64(), 2u);
  EXPECT_EQ(ModSub(U256(5), U256(5), U256(7)).low64(), 0u);
}

TEST(ModMathTest, ModMulSmall) {
  EXPECT_EQ(ModMul(U256(6), U256(6), U256(7)).low64(), 1u);
  EXPECT_EQ(ModMul(U256(0), U256(5), U256(7)).low64(), 0u);
}

TEST(ModMathTest, ModMulLargeOperands) {
  // Verify against an independently computable case:
  // (2^128 - 1)^2 mod (2^64 - 59).
  const auto a = U256::FromHex(std::string(32, 'f'));
  ASSERT_TRUE(a.ok());
  const U256 m(0xffffffffffffffc5ULL);  // 2^64 - 59
  const U256 r = ModMul(*a, *a, m);
  EXPECT_LT(r, m);
  // Cross-check with DivMod directly.
  const U512 product = Mul(*a, *a);
  EXPECT_EQ(r, DivMod(product, m.Extend<8>()).remainder.Truncate<4>());
}

TEST(ModMathTest, ModExpSmallKnown) {
  EXPECT_EQ(ModExp(U256(2), U256(10), U256(1000)).low64(), 24u);
  EXPECT_EQ(ModExp(U256(3), U256(0), U256(7)).low64(), 1u);
  EXPECT_EQ(ModExp(U256(0), U256(5), U256(7)).low64(), 0u);
  EXPECT_EQ(ModExp(U256(5), U256(1), U256(7)).low64(), 5u);
}

TEST(ModMathTest, FermatLittleTheorem) {
  // a^(p-1) == 1 mod p for prime p and gcd(a, p) = 1.
  const U256 p(1000003);
  for (std::uint64_t a : {2ull, 3ull, 65537ull, 999999ull}) {
    EXPECT_EQ(ModExp(U256(a), p - U256::One(), p), U256::One()) << a;
  }
}

TEST(ModMathTest, ModExpMatchesRepeatedMultiplication) {
  const U256 m(99991);
  U256 acc = U256::One();
  const U256 base(1234);
  for (std::uint64_t e = 0; e < 30; ++e) {
    EXPECT_EQ(ModExp(base, U256(e), m), acc) << "e=" << e;
    acc = ModMul(acc, base, m);
  }
}

TEST(ModMathTest, ModInversePrimeModulus) {
  const U256 p(101);
  for (std::uint64_t a = 1; a < 101; ++a) {
    const U256 inv = ModInverse(U256(a), p);
    EXPECT_EQ(ModMul(U256(a), inv, p), U256::One()) << "a=" << a;
  }
}

TEST(ModMathTest, ModInverseLargePrime) {
  // 2^61 - 1 is a Mersenne prime.
  const U256 p((std::uint64_t{1} << 61) - 1);
  const U256 a(0x123456789abcdefULL);
  const U256 inv = ModInverse(a, p);
  EXPECT_EQ(ModMul(a, inv, p), U256::One());
}

}  // namespace
}  // namespace gm::crypto
