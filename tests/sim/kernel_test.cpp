#include "sim/kernel.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/time.hpp"

namespace gm::sim {
namespace {

TEST(SimTimeTest, ConversionHelpers) {
  EXPECT_EQ(Seconds(1.5), 1'500'000);
  EXPECT_EQ(Minutes(2), 120 * kSecond);
  EXPECT_EQ(Hours(1), 3600 * kSecond);
  EXPECT_DOUBLE_EQ(ToSeconds(kMinute), 60.0);
  EXPECT_DOUBLE_EQ(ToHours(kDay), 24.0);
  EXPECT_DOUBLE_EQ(ToMinutes(Seconds(90)), 1.5);
}

TEST(SimTimeTest, FormatTime) {
  EXPECT_EQ(FormatTime(0), "00:00:00.000");
  EXPECT_EQ(FormatTime(Hours(1) + Minutes(2) + Seconds(3) + 4 * kMillisecond),
            "01:02:03.004");
  EXPECT_EQ(FormatTime(kDay + Hours(2)), "1d 02:00:00.000");
}

TEST(KernelTest, FiresInTimeOrder) {
  Kernel kernel;
  std::vector<int> order;
  kernel.ScheduleAt(30, [&] { order.push_back(3); });
  kernel.ScheduleAt(10, [&] { order.push_back(1); });
  kernel.ScheduleAt(20, [&] { order.push_back(2); });
  EXPECT_EQ(kernel.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(kernel.now(), 30);
}

TEST(KernelTest, SameTimeFiresInScheduleOrder) {
  Kernel kernel;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    kernel.ScheduleAt(100, [&order, i] { order.push_back(i); });
  kernel.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(KernelTest, ScheduleAfterUsesCurrentTime) {
  Kernel kernel;
  SimTime fired_at = -1;
  kernel.ScheduleAt(50, [&] {
    kernel.ScheduleAfter(25, [&] { fired_at = kernel.now(); });
  });
  kernel.Run();
  EXPECT_EQ(fired_at, 75);
}

TEST(KernelTest, RepeatingTimerFiresPeriodically) {
  Kernel kernel;
  std::vector<SimTime> times;
  EventHandle handle = kernel.ScheduleEvery(10, 10, [&] {
    times.push_back(kernel.now());
    if (times.size() == 4) kernel.Cancel(handle);
  });
  kernel.Run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 20, 30, 40}));
}

TEST(KernelTest, RepeatingTimerWithInitialDelayZero) {
  Kernel kernel;
  int count = 0;
  EventHandle handle = kernel.ScheduleEvery(0, 5, [&] { ++count; });
  kernel.RunUntil(17);
  kernel.Cancel(handle);
  // Fires at 0, 5, 10, 15.
  EXPECT_EQ(count, 4);
  EXPECT_EQ(kernel.now(), 17);
}

TEST(KernelTest, CancelPreventsFiring) {
  Kernel kernel;
  bool fired = false;
  EventHandle handle = kernel.ScheduleAt(10, [&] { fired = true; });
  EXPECT_TRUE(kernel.Cancel(handle));
  kernel.Run();
  EXPECT_FALSE(fired);
}

TEST(KernelTest, CancelReturnsFalseForStaleHandle) {
  Kernel kernel;
  EventHandle handle = kernel.ScheduleAt(10, [] {});
  kernel.Run();
  EXPECT_FALSE(kernel.Cancel(handle));
  EXPECT_FALSE(kernel.Cancel(EventHandle{}));
}

TEST(KernelTest, CancelFromInsideCallback) {
  Kernel kernel;
  bool other_fired = false;
  EventHandle other = kernel.ScheduleAt(20, [&] { other_fired = true; });
  kernel.ScheduleAt(10, [&] { kernel.Cancel(other); });
  kernel.Run();
  EXPECT_FALSE(other_fired);
}

TEST(KernelTest, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Kernel kernel;
  std::vector<SimTime> times;
  kernel.ScheduleAt(10, [&] { times.push_back(10); });
  kernel.ScheduleAt(100, [&] { times.push_back(100); });
  EXPECT_EQ(kernel.RunUntil(50), 1u);
  EXPECT_EQ(kernel.now(), 50);
  EXPECT_EQ(times, (std::vector<SimTime>{10}));
  EXPECT_EQ(kernel.Run(), 1u);
  EXPECT_EQ(times, (std::vector<SimTime>{10, 100}));
}

TEST(KernelTest, EventAtDeadlineFiresInRunUntil) {
  Kernel kernel;
  bool fired = false;
  kernel.ScheduleAt(50, [&] { fired = true; });
  kernel.RunUntil(50);
  EXPECT_TRUE(fired);
}

TEST(KernelTest, StepFiresSingleEvent) {
  Kernel kernel;
  int count = 0;
  kernel.ScheduleAt(1, [&] { ++count; });
  kernel.ScheduleAt(2, [&] { ++count; });
  EXPECT_TRUE(kernel.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(kernel.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(kernel.Step());
}

TEST(KernelTest, CallbackSchedulingMoreEventsWorks) {
  Kernel kernel;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) kernel.ScheduleAfter(1, recurse);
  };
  kernel.ScheduleAt(0, recurse);
  kernel.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(kernel.now(), 99);
}

TEST(KernelTest, PendingEventsCountsLiveEvents) {
  Kernel kernel;
  EXPECT_EQ(kernel.pending_events(), 0u);
  EventHandle a = kernel.ScheduleAt(10, [] {});
  kernel.ScheduleAt(20, [] {});
  EXPECT_EQ(kernel.pending_events(), 2u);
  kernel.Cancel(a);
  EXPECT_EQ(kernel.pending_events(), 1u);
  kernel.Run();
  EXPECT_EQ(kernel.pending_events(), 0u);
}

TEST(KernelTest, ManyEventsStressOrdering) {
  Kernel kernel;
  std::vector<SimTime> fired;
  // Schedule in a scrambled but deterministic order.
  for (int i = 0; i < 1000; ++i) {
    const SimTime t = (i * 7919) % 1000;
    kernel.ScheduleAt(t, [&fired, &kernel] { fired.push_back(kernel.now()); });
  }
  kernel.Run();
  ASSERT_EQ(fired.size(), 1000u);
  for (std::size_t i = 1; i < fired.size(); ++i)
    EXPECT_LE(fired[i - 1], fired[i]);
}

}  // namespace
}  // namespace gm::sim
