#include "core/grid_market.hpp"

#include <gtest/gtest.h>

namespace gm {
namespace {

GridMarket::Config SmallConfig() {
  GridMarket::Config config;
  config.hosts = 4;
  config.cpus_per_host = 2;
  config.cycles_per_cpu = 1000.0;  // tiny units for fast tests
  config.virtualization_overhead = 0.0;
  config.vm_boot_time = sim::Seconds(5);
  config.plugin.reference_capacity = 1000.0;
  config.seed = 7;
  return config;
}

grid::JobDescription SmallJob(int count, int chunks,
                              double cpu_minutes = 1.0,
                              double wall_minutes = 120.0) {
  grid::JobDescription description;
  description.executable = "/bin/work";
  description.job_name = "small";
  description.count = count;
  description.chunks = chunks;
  description.cpu_time_minutes = cpu_minutes;
  description.wall_time_minutes = wall_minutes;
  description.input_files = {{"in.dat", 10.0}};
  description.output_files = {{"out.dat", 1.0}};
  return description;
}

TEST(GridMarketTest, ConstructionPublishesHosts) {
  GridMarket grid(SmallConfig());
  EXPECT_EQ(grid.host_count(), 4u);
  // Publishers register immediately.
  EXPECT_EQ(grid.sls().live_count(), 4u);
}

TEST(GridMarketTest, UserRegistration) {
  GridMarket grid(SmallConfig());
  EXPECT_TRUE(grid.RegisterUser("alice", Money::Dollars(500.0)).ok());
  EXPECT_EQ(grid.RegisterUser("alice").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(grid.UserBankBalance("alice").value(), Money::Dollars(500.0));
  EXPECT_FALSE(grid.UserBankBalance("bob").ok());
}

TEST(GridMarketTest, PayBrokerMovesMoneyAndMintsToken) {
  GridMarket grid(SmallConfig());
  ASSERT_TRUE(grid.RegisterUser("alice", Money::Dollars(100.0)).ok());
  const auto token = grid.PayBroker("alice", Money::Dollars(40.0));
  ASSERT_TRUE(token.ok());
  EXPECT_EQ(token->receipt.amount, Money::Dollars(40.0));
  EXPECT_EQ(token->receipt.to_account, "broker");
  EXPECT_EQ(grid.UserBankBalance("alice").value(), Money::Dollars(60.0));
  EXPECT_FALSE(grid.PayBroker("alice", Money::Dollars(1000.0)).ok());  // insufficient
  EXPECT_FALSE(grid.PayBroker("nobody", Money::Dollars(1.0)).ok());
}

TEST(GridMarketTest, SubmitAndFinishJob) {
  GridMarket grid(SmallConfig());
  ASSERT_TRUE(grid.RegisterUser("alice", Money::Dollars(100.0)).ok());
  const auto job_id =
      grid.SubmitJob("alice", SmallJob(2, 4), Money::Dollars(10.0));
  ASSERT_TRUE(job_id.ok()) << job_id.status().ToString();
  grid.RunUntil(sim::Hours(1));
  const auto job = grid.Job(*job_id);
  ASSERT_TRUE(job.ok());
  EXPECT_EQ((*job)->state, grid::JobState::kFinished) << (*job)->failure;
  EXPECT_TRUE(grid.CheckInvariants().ok());
  EXPECT_EQ(grid.Jobs().size(), 1u);
}

TEST(GridMarketTest, SubmitXrslText) {
  GridMarket grid(SmallConfig());
  ASSERT_TRUE(grid.RegisterUser("alice", Money::Dollars(100.0)).ok());
  const auto job_id = grid.SubmitXrsl(
      "alice",
      "&(executable=\"/bin/x\")(count=1)(cpuTime=\"1\")(wallTime=\"60\")", Money::Dollars(5.0));
  ASSERT_TRUE(job_id.ok()) << job_id.status().ToString();
  grid.RunUntil(sim::Minutes(30));
  EXPECT_EQ(grid.Job(*job_id).value()->state, grid::JobState::kFinished);
}

TEST(GridMarketTest, BoostJobAddsBudget) {
  GridMarket grid(SmallConfig());
  ASSERT_TRUE(grid.RegisterUser("alice", Money::Dollars(100.0)).ok());
  const auto job_id =
      grid.SubmitJob("alice", SmallJob(1, 8, 2.0), Money::Dollars(5.0));
  ASSERT_TRUE(job_id.ok());
  grid.RunFor(sim::Minutes(1));
  ASSERT_TRUE(grid.BoostJob("alice", *job_id, Money::Dollars(20.0)).ok());
  EXPECT_EQ(grid.Job(*job_id).value()->budget, Money::Dollars(25.0));
}

TEST(GridMarketTest, HostPriceStatsReflectLoad) {
  GridMarket grid(SmallConfig());
  ASSERT_TRUE(grid.RegisterUser("alice", Money::Dollars(1000.0)).ok());
  const auto job_id =
      grid.SubmitJob("alice", SmallJob(4, 8, 30.0), Money::Dollars(100.0));
  ASSERT_TRUE(job_id.ok());
  grid.RunFor(sim::Minutes(20));
  const auto stats = grid.HostPriceStats("hour");
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->size(), 4u);
  double total_mean = 0.0;
  for (const auto& host : *stats) {
    EXPECT_GT(host.capacity, 0.0);
    total_mean += host.mean_price;
  }
  EXPECT_GT(total_mean, 0.0);  // the job's bids moved prices
  EXPECT_FALSE(grid.HostPriceStats("nonexistent-window").ok());
}

TEST(GridMarketTest, HeterogeneousClusterSpeeds) {
  GridMarket::Config config = SmallConfig();
  config.heterogeneity = 0.5;
  GridMarket grid(config);
  const double slowest =
      grid.auctioneer(0).physical_host().spec().cycles_per_cpu;
  const double fastest =
      grid.auctioneer(3).physical_host().spec().cycles_per_cpu;
  EXPECT_DOUBLE_EQ(slowest, 500.0);
  EXPECT_DOUBLE_EQ(fastest, 1500.0);
}

TEST(GridMarketTest, MonitorOutputsCluster) {
  GridMarket grid(SmallConfig());
  ASSERT_TRUE(grid.RegisterUser("alice", Money::Dollars(100.0)).ok());
  ASSERT_TRUE(
      grid.SubmitJob("alice", SmallJob(1, 1), Money::Dollars(1.0)).ok());
  grid.RunFor(sim::Minutes(1));
  const std::string monitor = grid.Monitor();
  EXPECT_NE(monitor.find("h00"), std::string::npos);
  EXPECT_NE(monitor.find("small"), std::string::npos);
}

TEST(GridMarketTest, DeterministicAcrossRuns) {
  auto run = [] {
    GridMarket grid(SmallConfig());
    EXPECT_TRUE(grid.RegisterUser("alice", Money::Dollars(100.0)).ok());
    const auto job_id =
        grid.SubmitJob("alice", SmallJob(2, 6, 1.5), Money::Dollars(10.0));
    EXPECT_TRUE(job_id.ok());
    grid.RunUntil(sim::Hours(2));
    const auto job = grid.Job(*job_id);
    EXPECT_TRUE(job.ok());
    return std::make_pair((*job)->spent, (*job)->finished_at);
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace gm
