// End-to-end durability tests over the assembled GridMarket: bank crash
// and restart mid-experiment with an exact ledger match, host restarts
// that warm-start the forecaster window, and warm boots of a whole grid
// from an existing storage directory.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/grid_market.hpp"

namespace gm {
namespace {

namespace fs = std::filesystem;

fs::path FreshDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("gm_grid_" + name);
  fs::remove_all(dir);
  return dir;
}

GridMarket::Config DurableConfig(const fs::path& dir) {
  GridMarket::Config config;
  config.hosts = 4;
  config.cpus_per_host = 2;
  config.cycles_per_cpu = 1000.0;
  config.virtualization_overhead = 0.0;
  config.vm_boot_time = sim::Seconds(5);
  config.plugin.reference_capacity = 1000.0;
  config.seed = 7;
  config.storage.durable = true;
  config.storage.dir = dir.string();
  return config;
}

grid::JobDescription SmallJob(int count, int chunks,
                              double cpu_minutes = 1.0) {
  grid::JobDescription description;
  description.executable = "/bin/work";
  description.job_name = "small";
  description.count = count;
  description.chunks = chunks;
  description.cpu_time_minutes = cpu_minutes;
  description.wall_time_minutes = 240.0;
  return description;
}

TEST(GridMarketDurabilityTest, CrashBankRequiresDurableStorage) {
  GridMarket::Config config = DurableConfig(FreshDir("gate"));
  config.storage.durable = false;
  config.storage.dir.clear();
  GridMarket grid(config);
  EXPECT_EQ(grid.CrashBank().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(grid.RestartBank().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(grid.StorageMonitor().find("in-memory"), std::string::npos);
}

TEST(GridMarketDurabilityTest, BankCrashMidExperimentRecoversExactLedger) {
  const fs::path dir = FreshDir("bankcrash");
  GridMarket grid(DurableConfig(dir));
  ASSERT_TRUE(grid.RegisterUser("alice", Money::Dollars(100.0)).ok());
  // Long enough that the crash window below falls mid-run, before any
  // settlement needs the bank.
  const auto job_id =
      grid.SubmitJob("alice", SmallJob(2, 4, /*cpu_minutes=*/30.0), Money::Dollars(10.0));
  ASSERT_TRUE(job_id.ok()) << job_id.status().ToString();
  grid.RunFor(sim::Minutes(2));

  const std::string hash_before = grid.bank().LedgerHash();
  ASSERT_TRUE(grid.CrashBank().ok());
  EXPECT_TRUE(grid.bank_crashed());
  // The bank is down: client-side money flows fail Unavailable.
  EXPECT_EQ(grid.PayBroker("alice", Money::Dollars(1.0)).status().code(),
            StatusCode::kUnavailable);
  grid.RunFor(sim::Minutes(1));

  ASSERT_TRUE(grid.RestartBank().ok());
  EXPECT_FALSE(grid.bank_crashed());
  // The replayed ledger is bit-identical to the pre-crash one.
  EXPECT_EQ(grid.bank().LedgerHash(), hash_before);
  EXPECT_TRUE(grid.CheckInvariants().ok());

  // The experiment carries on: the job still finishes and settles.
  grid.RunUntil(sim::Hours(3));
  const auto job = grid.Job(*job_id);
  ASSERT_TRUE(job.ok());
  EXPECT_EQ((*job)->state, grid::JobState::kFinished) << (*job)->failure;
  EXPECT_TRUE(grid.CheckInvariants().ok());
}

TEST(GridMarketDurabilityTest, RestartedHostWarmStartsPriceWindow) {
  const fs::path dir = FreshDir("hostwarm");
  GridMarket grid(DurableConfig(dir));
  ASSERT_TRUE(grid.RegisterUser("alice", Money::Dollars(100.0)).ok());
  ASSERT_TRUE(
      grid.SubmitJob("alice", SmallJob(2, 4), Money::Dollars(20.0)).ok());
  grid.RunFor(sim::Minutes(10));

  const std::size_t points_before = grid.auctioneer(0).history().size();
  ASSERT_GT(points_before, 0u);

  ASSERT_TRUE(grid.CrashHost(0).ok());
  EXPECT_TRUE(grid.auctioneer(0).history().empty());
  ASSERT_TRUE(grid.RestartHost(0).ok());
  // The journal replays the window the crash wiped.
  EXPECT_GE(grid.auctioneer(0).history().size(), points_before);
  grid.RunFor(sim::Minutes(2));
  EXPECT_GT(grid.auctioneer(0).history().size(), points_before);
}

TEST(GridMarketDurabilityTest, WarmBootRestoresLedgerAndDirectory) {
  const fs::path dir = FreshDir("warmboot");
  std::string hash_before;
  Money alice_balance;
  std::size_t history_points = 0;
  {
    GridMarket grid(DurableConfig(dir));
    ASSERT_TRUE(grid.RegisterUser("alice", Money::Dollars(250.0)).ok());
    ASSERT_TRUE(grid.PayBroker("alice", Money::Dollars(50.0)).ok());
    grid.RunFor(sim::Minutes(5));
    hash_before = grid.bank().LedgerHash();
    alice_balance = grid.UserBankBalance("alice").value();
    history_points = grid.auctioneer(0).history().size();
    ASSERT_GT(history_points, 0u);
  }
  // A brand-new process over the same directory: the ledger, directory
  // and price windows come back; the broker account is not re-created.
  GridMarket grid(DurableConfig(dir));
  EXPECT_EQ(grid.bank().LedgerHash(), hash_before);
  EXPECT_EQ(grid.UserBankBalance("alice").value(), alice_balance);
  EXPECT_GE(grid.auctioneer(0).history().size(), history_points);
  EXPECT_TRUE(grid.CheckInvariants().ok());
  // The clock resumed past the recovered timestamps.
  EXPECT_GE(grid.now(), grid.auctioneer(0).history().back().at);
  // The warm grid keeps working end-to-end.
  ASSERT_TRUE(grid.RegisterUser("bob", Money::Dollars(100.0)).ok());
  const auto job_id =
      grid.SubmitJob("bob", SmallJob(1, 2), Money::Dollars(10.0));
  ASSERT_TRUE(job_id.ok()) << job_id.status().ToString();
  grid.RunFor(sim::Hours(1));
  EXPECT_EQ((*grid.Job(*job_id))->state, grid::JobState::kFinished);
}

TEST(GridMarketDurabilityTest, StorageMonitorRendersPerStoreCounters) {
  const fs::path dir = FreshDir("monitor");
  GridMarket grid(DurableConfig(dir));
  ASSERT_TRUE(grid.RegisterUser("alice", Money::Dollars(10.0)).ok());
  grid.RunFor(sim::Minutes(1));
  const std::string monitor = grid.StorageMonitor();
  EXPECT_NE(monitor.find("bank"), std::string::npos);
  EXPECT_NE(monitor.find("sls"), std::string::npos);
  EXPECT_NE(monitor.find("price/h00"), std::string::npos);
  EXPECT_NE(monitor.find("price/h03"), std::string::npos);
}

}  // namespace
}  // namespace gm
