// Parameterized property sweeps over the host/VM substrate: capacity
// conservation across allocation intervals, completion-time monotonicity,
// and utilization bounds under randomized workloads.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "host/host.hpp"

namespace gm::host {
namespace {

struct HostCase {
  int cpus;
  int vms;
  bool work_conserving;
};

class HostAllocationProperty : public ::testing::TestWithParam<HostCase> {};

TEST_P(HostAllocationProperty, CapacityConservedAndBounded) {
  const HostCase param = GetParam();
  Rng rng(static_cast<std::uint64_t>(param.cpus) * 100 +
          static_cast<std::uint64_t>(param.vms));
  HostSpec spec;
  spec.id = "prop";
  spec.cpus = param.cpus;
  spec.cycles_per_cpu = 100.0;
  spec.virtualization_overhead = 0.0;
  spec.vm_boot_time = 0;
  spec.max_vms = param.vms + 1;
  spec.work_conserving = param.work_conserving;
  PhysicalHost host(spec);

  std::map<std::string, double> weights;
  std::vector<VirtualMachine*> vms;
  for (int v = 0; v < param.vms; ++v) {
    const std::string id = "vm-" + std::to_string(v);
    auto vm = host.CreateVm(id, "u" + std::to_string(v), 0);
    ASSERT_TRUE(vm.ok());
    vms.push_back(*vm);
    // Random finite workloads; some VMs may idle mid-run.
    (*vm)->Enqueue({1, rng.Uniform(500.0, 20000.0), nullptr});
    weights[id] = rng.Uniform(0.1, 10.0);
  }

  const sim::SimDuration interval = 10 * sim::kSecond;
  double delivered_total = 0.0;
  for (int tick = 0; tick < 30; ++tick) {
    const auto slices = host.AdvanceInterval(tick * interval, interval,
                                             weights);
    double interval_used = 0.0;
    for (const AllocationSlice& slice : slices) {
      // No VM above its vCPU cap, nothing negative.
      EXPECT_GE(slice.granted, 0.0);
      EXPECT_LE(slice.granted, host.PerCpuCapacity() + 1e-9);
      EXPECT_GE(slice.used, 0.0);
      EXPECT_LE(slice.used,
                slice.granted * sim::ToSeconds(interval) + 1e-6);
      EXPECT_GE(slice.used_fraction, 0.0);
      EXPECT_LE(slice.used_fraction, 1.0 + 1e-9);
      interval_used += slice.used;
    }
    // Host-wide conservation per interval.
    EXPECT_LE(interval_used,
              host.TotalCapacity() * sim::ToSeconds(interval) + 1e-6);
    delivered_total += interval_used;
  }
  EXPECT_NEAR(host.delivered_cycles(), delivered_total, 1e-6);
  EXPECT_LE(host.Utilization(30 * interval), 1.0 + 1e-9);

  // Total work conservation: delivered == sum of what VMs consumed.
  double vm_total = 0.0;
  for (VirtualMachine* vm : vms) vm_total += vm->delivered_cycles();
  EXPECT_NEAR(vm_total, delivered_total, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HostAllocationProperty,
    ::testing::Values(HostCase{1, 1, true}, HostCase{1, 3, true},
                      HostCase{2, 2, true}, HostCase{2, 5, true},
                      HostCase{4, 10, true}, HostCase{2, 5, false},
                      HostCase{1, 4, false}),
    [](const auto& info) {
      return std::to_string(info.param.cpus) + "cpu" +
             std::to_string(info.param.vms) + "vm" +
             (info.param.work_conserving ? "_wc" : "_nowc");
    });

class VmWorkloadProperty : public ::testing::TestWithParam<int> {};

TEST_P(VmWorkloadProperty, CompletionsOrderedAndExact) {
  const int items = GetParam();
  Rng rng(static_cast<std::uint64_t>(items) * 7 + 1);
  VirtualMachine vm("vm", "owner", 0);
  std::vector<sim::SimTime> completions;
  double total_cycles = 0.0;
  for (int i = 0; i < items; ++i) {
    const double cycles = rng.Uniform(10.0, 500.0);
    total_cycles += cycles;
    vm.Enqueue({static_cast<std::uint64_t>(i), cycles,
                [&](sim::SimTime t) { completions.push_back(t); }});
  }
  // Drive with randomly sized intervals and capacities until drained.
  sim::SimTime now = 0;
  int guard = 0;
  while (vm.HasWork() && ++guard < 10000) {
    const sim::SimDuration dt = sim::Seconds(rng.Uniform(0.5, 5.0));
    vm.Advance(now, dt, rng.Uniform(5.0, 50.0));
    now += dt;
  }
  ASSERT_EQ(completions.size(), static_cast<std::size_t>(items));
  for (std::size_t i = 1; i < completions.size(); ++i)
    EXPECT_LE(completions[i - 1], completions[i]);  // FIFO order
  EXPECT_NEAR(vm.delivered_cycles(), total_cycles, 1e-6);
  EXPECT_EQ(vm.completed_items(), static_cast<std::uint64_t>(items));
}

INSTANTIATE_TEST_SUITE_P(Sweep, VmWorkloadProperty,
                         ::testing::Values(1, 2, 5, 20, 100));

}  // namespace
}  // namespace gm::host
