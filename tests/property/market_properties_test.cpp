// Parameterized property sweeps over the market-side invariants:
// Best Response optimality, proportional-share allocation, slot tables,
// and bank conservation under randomized operation sequences.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>
#include <string>

#include "bank/bank.hpp"
#include "bestresponse/best_response.hpp"
#include "common/rng.hpp"
#include "host/host.hpp"
#include "market/auctioneer.hpp"
#include "market/slot_table.hpp"

namespace gm {
namespace {

// ---------------------------------------------------------------------
// Best Response: for every (host count, budget, price scale) combination,
// the exact solve must bind the budget, satisfy the KKT conditions and
// match the bisection reference.
struct BrCase {
  int hosts;
  double budget;
  double price_scale;
};

class BestResponseProperty : public ::testing::TestWithParam<BrCase> {};

TEST_P(BestResponseProperty, OptimalityInvariants) {
  const BrCase param = GetParam();
  Rng rng(static_cast<std::uint64_t>(param.hosts) * 7919 +
          static_cast<std::uint64_t>(param.budget * 100) + 17);
  br::BestResponseSolver solver;
  std::vector<br::HostBidInput> hosts;
  for (int j = 0; j < param.hosts; ++j) {
    hosts.push_back({"h" + std::to_string(j), rng.Uniform(0.5e9, 4e9),
                     Rate::DollarsPerSec(rng.Uniform(0.0, param.price_scale))});
  }
  const auto result = solver.Solve(hosts, Rate::DollarsPerSec(param.budget));
  ASSERT_TRUE(result.ok());

  // Budget binds exactly.
  double total = 0.0;
  for (const auto& allocation : result->bids) {
    EXPECT_GE(allocation.bid.dollars_per_sec(), 0.0);
    total += allocation.bid.dollars_per_sec();
  }
  EXPECT_NEAR(total, param.budget, 1e-9 * param.budget);

  // KKT: active hosts share the multiplier; inactive fail the threshold.
  for (std::size_t j = 0; j < hosts.size(); ++j) {
    const double y =
        std::max(hosts[j].price, solver.reserve_price()).dollars_per_sec();
    const double x = result->bids[j].bid.dollars_per_sec();
    if (x > 1e-9 * param.budget) {
      const double marginal = hosts[j].weight * y / ((x + y) * (x + y));
      EXPECT_NEAR(marginal, result->lambda, 1e-5 * result->lambda)
          << "host " << j;
    } else {
      EXPECT_LE(hosts[j].weight / y, result->lambda * (1.0 + 1e-6));
    }
  }

  // Agrees with the independent bisection solver.
  const auto reference =
      solver.SolveBisection(hosts, Rate::DollarsPerSec(param.budget));
  ASSERT_TRUE(reference.ok());
  EXPECT_NEAR(result->utility, reference->utility,
              1e-6 * reference->utility);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BestResponseProperty,
    ::testing::Values(BrCase{1, 0.01, 0.001}, BrCase{2, 1.0, 0.1},
                      BrCase{5, 0.5, 1.0}, BrCase{15, 10.0, 0.01},
                      BrCase{30, 0.001, 0.5}, BrCase{100, 100.0, 10.0},
                      BrCase{300, 3.0, 0.0}),
    [](const auto& info) {
      return "hosts" + std::to_string(info.param.hosts) + "_idx" +
             std::to_string(info.index);
    });

// ---------------------------------------------------------------------
// Proportional share: feasibility, caps, work conservation dominance and
// proportionality among uncapped entities, across entity counts.
class ProportionalShareProperty : public ::testing::TestWithParam<int> {};

TEST_P(ProportionalShareProperty, AllocationInvariants) {
  const int entities = GetParam();
  Rng rng(static_cast<std::uint64_t>(entities) + 99);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> weights(static_cast<std::size_t>(entities));
    for (double& w : weights) w = rng.Uniform(0.0, 10.0);
    const double total = rng.Uniform(0.1, 500.0);
    const double cap = rng.Uniform(0.05, 200.0);

    const auto conserving =
        host::ProportionalShareWithCap(weights, total, cap, true);
    const auto wasteful =
        host::ProportionalShareWithCap(weights, total, cap, false);

    double sum_conserving = 0.0;
    double sum_wasteful = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      EXPECT_LE(conserving[i], cap + 1e-9);
      EXPECT_LE(wasteful[i], cap + 1e-9);
      EXPECT_GE(conserving[i], 0.0);
      // Work conservation can only add capacity per entity.
      EXPECT_GE(conserving[i], wasteful[i] - 1e-9);
      if (weights[i] <= 0.0) {
        EXPECT_DOUBLE_EQ(conserving[i], 0.0);
      }
      sum_conserving += conserving[i];
      sum_wasteful += wasteful[i];
    }
    EXPECT_LE(sum_conserving, total + 1e-6);
    EXPECT_LE(sum_wasteful, sum_conserving + 1e-9);

    // Uncapped entities split proportionally to weight.
    for (std::size_t a = 0; a < weights.size(); ++a) {
      for (std::size_t b = a + 1; b < weights.size(); ++b) {
        if (conserving[a] < cap - 1e-9 && conserving[b] < cap - 1e-9 &&
            weights[a] > 1e-9 && weights[b] > 1e-9 &&
            conserving[a] > 0.0 && conserving[b] > 0.0) {
          EXPECT_NEAR(conserving[a] / conserving[b],
                      weights[a] / weights[b], 1e-6);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ProportionalShareProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 15, 40));

// ---------------------------------------------------------------------
// Slot table: across window sizes, proportions always sum to one, the
// two arrays stay offset by exactly one window in steady state, and the
// merge weight stays in [0, 1].
class SlotTableProperty : public ::testing::TestWithParam<int> {};

TEST_P(SlotTableProperty, WindowInvariants) {
  const int window = GetParam();
  Rng rng(static_cast<std::uint64_t>(window) * 31 + 5);
  market::SlotTable table(static_cast<std::size_t>(window), 10, 1.0);
  for (int i = 0; i < window * 7 + 3; ++i) {
    table.Add(rng.NextDouble() * rng.Uniform(0.5, 3.0));
    const auto proportions = table.Proportions();
    const double sum =
        std::accumulate(proportions.begin(), proportions.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "after " << i + 1 << " adds";
    EXPECT_GE(table.Weight1(), 0.0);
    EXPECT_LE(table.Weight1(), 1.0);
    if (i + 1 >= 2 * window) {
      const long diff = static_cast<long>(table.array_count(0)) -
                        static_cast<long>(table.array_count(1));
      EXPECT_EQ(std::labs(diff), window);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SlotTableProperty,
                         ::testing::Values(1, 2, 3, 7, 16, 50, 360));

// ---------------------------------------------------------------------
// Bank conservation under randomized operation sequences of every kind.
class BankConservationProperty : public ::testing::TestWithParam<int> {};

TEST_P(BankConservationProperty, RandomOperationSequences) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  bank::Bank bank(crypto::TestGroup(), static_cast<std::uint64_t>(seed));
  std::vector<std::string> accounts;
  std::vector<crypto::KeyPair> keys;
  for (int i = 0; i < 4; ++i) {
    keys.push_back(crypto::KeyPair::Generate(crypto::TestGroup(), rng));
    accounts.push_back("user" + std::to_string(i));
    ASSERT_TRUE(bank.CreateAccount(accounts.back(),
                                   keys.back().public_key()).ok());
    ASSERT_TRUE(
        bank.Mint(accounts.back(), Money::Dollars(100), 0).ok());
  }
  ASSERT_TRUE(bank.CreateAccount("pool", {}).ok());

  for (int op = 0; op < 60; ++op) {
    const std::size_t actor = rng.NextBelow(accounts.size());
    const Money amount =
        Money::FromMicros(static_cast<Micros>(rng.NextBelow(2'000'000)) + 1);
    switch (rng.NextBelow(3)) {
      case 0: {  // signed transfer to the pool (may fail on funds)
        const auto nonce = bank.TransferNonce(accounts[actor]);
        const auto auth = keys[actor].Sign(
            bank::TransferAuthPayload(accounts[actor], "pool", amount,
                                      *nonce),
            rng);
        (void)bank.Transfer(accounts[actor], "pool", amount, auth, op);
        break;
      }
      case 1: {  // internal transfer out of the pool (may fail)
        (void)bank.InternalTransfer("pool", accounts[actor], amount, op);
        break;
      }
      case 2: {  // mint
        ASSERT_TRUE(bank.Mint(accounts[actor], amount, op).ok());
        break;
      }
    }
    ASSERT_TRUE(bank.CheckInvariants().ok()) << "after op " << op;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BankConservationProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------
// Incremental spot price: after any randomized sequence of bid, funding,
// close/reopen and charging-tick operations, the delta-maintained price
// must equal a full re-sum of the book from first principles — exact
// integer equality, no epsilon. The config also turns on the
// auctioneer's internal debug cross-check, so a divergence aborts even
// if the shadow model here were too forgiving. Escrow-reclaim removals
// (CloseAccount) and charge-to-zero drains are both in the mix.
class IncrementalSpotPriceProperty : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalSpotPriceProperty, MatchesFullResumExactly) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 2654435761ull + 13);

  sim::Kernel kernel;
  host::HostSpec spec;
  spec.id = "h1";
  spec.cpus = 2;
  spec.cycles_per_cpu = 100.0;
  spec.max_vms = 16;
  host::PhysicalHost host(spec);
  market::AuctioneerConfig config;
  config.verify_incremental = true;
  market::Auctioneer auctioneer(host, kernel, config);
  auctioneer.Start();  // ticks charge accounts, draining escrow

  struct ShadowBid {
    Micros rate = 0;
    sim::SimTime deadline = 0;
  };
  std::map<std::string, ShadowBid> shadow;
  const std::vector<std::string> users = {"u0", "u1", "u2", "u3", "u4"};
  std::uint64_t work_id = 1;

  const auto open_user = [&](const std::string& user) {
    ASSERT_TRUE(auctioneer.OpenAccount(user).ok());
    // Small escrow so ticks can drain users to zero: removal from the
    // active sum by charging, not only by deadline.
    ASSERT_TRUE(auctioneer
                    .Fund(user, Money::FromMicros(static_cast<Micros>(
                                    rng.NextBelow(40'000) + 1)))
                    .ok());
    auto vm = auctioneer.AcquireVm(user);
    ASSERT_TRUE(vm.ok());
    (*vm)->Enqueue({work_id++, 1e12, nullptr});
    shadow[user] = {};
  };
  for (const auto& user : users) open_user(user);

  for (int op = 0; op < 200; ++op) {
    const std::string& user = users[rng.NextBelow(users.size())];
    switch (rng.NextBelow(5)) {
      case 0: {  // (re)bid, sometimes to a deadline that is already due
        const auto rate = static_cast<Micros>(rng.NextBelow(1'000));
        const sim::SimTime deadline =
            kernel.now() +
            static_cast<sim::SimTime>(rng.NextBelow(80)) * sim::kSecond;
        ASSERT_TRUE(
            auctioneer.SetBid(user, Rate::MicrosPerSec(rate), deadline)
                .ok());
        shadow[user] = {rate, deadline};
        break;
      }
      case 1: {  // top up (may re-activate a drained bid)
        ASSERT_TRUE(auctioneer
                        .Fund(user, Money::FromMicros(static_cast<Micros>(
                                        rng.NextBelow(20'000) + 1)))
                        .ok());
        break;
      }
      case 2: {  // close (escrow reclaimed) and immediately reopen
        ASSERT_TRUE(auctioneer.CloseAccount(user).ok());
        shadow.erase(user);
        open_user(user);
        break;
      }
      case 3: {  // run the clock: ticks charge, deadlines lapse
        kernel.RunUntil(kernel.now() +
                        static_cast<sim::SimDuration>(rng.NextBelow(25) + 1) *
                            sim::kSecond);
        break;
      }
      case 4:  // read-only probe round
        break;
    }

    // Full re-sum from first principles. Balances are read back from the
    // auctioneer because charging has changed them since funding.
    Micros expected = 0;
    for (const auto& [name, bid] : shadow) {
      const auto balance = auctioneer.Balance(name);
      ASSERT_TRUE(balance.ok());
      if (bid.rate > 0 && balance->is_positive() &&
          kernel.now() < bid.deadline) {
        expected += bid.rate;
      }
    }
    ASSERT_EQ(auctioneer.SpotPriceRate().micros_per_sec(), expected)
        << "seed " << seed << " op " << op;
    // The per-user exclusion must be exact too.
    for (const auto& [name, bid] : shadow) {
      const auto balance = auctioneer.Balance(name);
      ASSERT_TRUE(balance.ok());
      const Micros own = (bid.rate > 0 && balance->is_positive() &&
                          kernel.now() < bid.deadline)
                             ? bid.rate
                             : 0;
      ASSERT_EQ(auctioneer.SpotPriceRateExcluding(name).micros_per_sec(),
                expected - own)
          << "seed " << seed << " op " << op << " user " << name;
    }
  }
  auctioneer.Stop();
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalSpotPriceProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace gm
