// Property sweep over the sharded bank federation: randomized
// create/mint/transfer/crash/restart sequences across 4 shards, checked
// against a single-ledger shadow model with EXACT Money equality — no
// epsilon anywhere. Cross-shard transfers that park on a crashed
// creditor are tracked as in-flight and resolved in the shadow exactly
// when the federation's ResumeSettlements would resolve them.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bank/federation/reconciler.hpp"
#include "bank/federation/router.hpp"
#include "bank/federation/shard.hpp"
#include "common/rng.hpp"
#include "crypto/prime.hpp"
#include "crypto/token.hpp"
#include "store/store.hpp"

namespace gm::bank::federation {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kShards = 4;

std::string AccountOn(std::size_t shard, const std::string& prefix) {
  for (int i = 0;; ++i) {
    const std::string id = prefix + std::to_string(i);
    if (StripeFor(id, kShards) == shard) return id;
  }
}

struct DurableFederation {
  explicit DurableFederation(const fs::path& dir) {
    for (std::size_t i = 0; i < kShards; ++i) {
      shards.push_back(std::make_unique<BankShard>(i));
      auto store = store::DurableStore::Open(
          (dir / ("shard" + std::to_string(i))).string());
      EXPECT_TRUE(store.ok()) << store.status().message();
      stores.push_back(std::move(*store));
      shards.back()->AttachStore(stores.back().get());
    }
    std::vector<BankShard*> ptrs;
    for (const auto& shard : shards) ptrs.push_back(shard.get());
    router = std::make_unique<FederationRouter>(ptrs, &registry);
  }

  std::vector<std::unique_ptr<store::DurableStore>> stores;
  std::vector<std::unique_ptr<BankShard>> shards;
  crypto::TokenRegistry registry;
  std::unique_ptr<FederationRouter> router;
};

/// A cross-shard transfer the federation parked (creditor down at the
/// credit phase); the shadow applies or refunds it when both shards are
/// next live together, exactly as ResumeSettlements does.
struct Parked {
  std::string from;
  std::string to;
  Money amount;
};

class FederationConservationProperty : public ::testing::TestWithParam<int> {
};

TEST_P(FederationConservationProperty, MatchesSingleLedgerShadowExactly) {
  const int seed = GetParam();
  const fs::path dir = fs::path(::testing::TempDir()) /
                       ("gm_fedprop_" + std::to_string(seed));
  fs::remove_all(dir);
  DurableFederation fed(dir);
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 3);

  // The single-ledger shadow: one flat account map plus a minted total.
  std::map<std::string, Money> shadow;
  Money shadow_minted;
  std::vector<Parked> parked;

  // A fixed candidate-name pool spanning every shard, so transfers hit
  // every same-shard / cross-shard combination and missing accounts.
  std::vector<std::string> ids;
  for (std::size_t s = 0; s < kShards; ++s)
    for (int k = 0; k < 4; ++k)
      ids.push_back(AccountOn(s, "p" + std::to_string(k) + "-"));

  const auto pick = [&]() -> const std::string& {
    return ids[rng.Next() % ids.size()];
  };
  const auto live = [&](const std::string& id) {
    return !fed.shards[StripeFor(id, kShards)]->crashed();
  };
  // Mirror of ResumeSettlements over the shadow's parked list: resolve
  // every entry whose debtor and creditor shards are both live —
  // complete when the destination exists, refund (a shadow no-op, since
  // the shadow never debited) when it does not.
  const auto resolve_parked = [&] {
    std::vector<Parked> still;
    for (const Parked& entry : parked) {
      if (live(entry.from) && live(entry.to)) {
        if (shadow.count(entry.to) != 0) {
          shadow[entry.from] -= entry.amount;
          shadow[entry.to] += entry.amount;
        }
      } else {
        still.push_back(entry);
      }
    }
    parked = std::move(still);
  };

  for (int op = 0; op < 150; ++op) {
    const std::int64_t now = 1000 * op;
    switch (rng.Next() % 8) {
      case 0:
      case 1: {  // create, funded
        const std::string& id = pick();
        const Money init =
            Money::FromMicros(1 + static_cast<Micros>(rng.Next() % 100000));
        if (fed.router->CreateAccount(id, init).ok()) {
          shadow[id] = init;
          shadow_minted += init;
        }
        break;
      }
      case 2: {  // mint
        const std::string& id = pick();
        const Money amount =
            Money::FromMicros(1 + static_cast<Micros>(rng.Next() % 50000));
        if (fed.router->Mint(id, amount, now).ok()) {
          shadow[id] += amount;
          shadow_minted += amount;
        }
        break;
      }
      case 3:
      case 4:
      case 5: {  // transfer (intra- or cross-shard)
        const std::string& from = pick();
        const std::string& to = pick();
        if (from == to) break;
        const Money amount =
            Money::FromMicros(1 + static_cast<Micros>(rng.Next() % 30000));
        const bool debtor_was_live = live(from);
        const bool cross =
            StripeFor(from, kShards) != StripeFor(to, kShards);
        const Status status = fed.router->Transfer(from, to, amount, now);
        if (status.ok()) {
          shadow[from] -= amount;
          shadow[to] += amount;
        } else if (status.code() == StatusCode::kUnavailable &&
                   debtor_was_live && cross) {
          // Prepared on the live debtor, parked on the dead creditor.
          parked.push_back({from, to, amount});
        }
        // Every other failure journaled nothing and moved nothing.
        break;
      }
      case 6: {  // crash a shard (holds are durable, they survive)
        fed.shards[rng.Next() % kShards]->SimulateCrash();
        break;
      }
      case 7: {  // restart one shard, then drive parked holds forward
        const std::size_t index = rng.Next() % kShards;
        if (fed.shards[index]->crashed()) {
          ASSERT_TRUE(fed.shards[index]->Restart().ok());
        }
        ASSERT_TRUE(fed.router->ResumeSettlements(now).ok());
        resolve_parked();
        break;
      }
    }
  }

  // Quiesce: everything restarts, every parked settlement resolves.
  for (const auto& shard : fed.shards) {
    if (shard->crashed()) {
      ASSERT_TRUE(shard->Restart().ok());
    }
  }
  ASSERT_TRUE(fed.router->ResumeSettlements(1000 * 1000).ok());
  resolve_parked();
  ASSERT_TRUE(parked.empty());
  EXPECT_EQ(fed.router->PendingSettlements(), 0u);

  // Exact agreement with the shadow, account by account, and exact
  // conservation of every minted micro-dollar.
  Money shadow_total;
  for (const auto& [id, balance] : shadow) {
    const auto actual = fed.router->Balance(id);
    ASSERT_TRUE(actual.ok()) << id;
    EXPECT_EQ(*actual, balance) << "seed " << seed << " account " << id;
    shadow_total += balance;
  }
  EXPECT_EQ(shadow_total, shadow_minted);
  EXPECT_EQ(fed.router->TotalMoney().value(), shadow_minted);
  EXPECT_TRUE(fed.router->CheckConservation().ok());

  // The auditor agrees and signs off.
  Reconciler reconciler(fed.router.get(), crypto::TestGroup(),
                        static_cast<std::uint64_t>(seed));
  const ReconciliationReport report = reconciler.Sweep(2000 * 1000);
  EXPECT_TRUE(report.conserved) << report.detail;
  EXPECT_EQ(report.total_minted, shadow_minted);
  EXPECT_TRUE(reconciler.VerifyReport(report).ok());

  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FederationConservationProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace gm::bank::federation
