// Scenario-engine properties (the tentpole determinism contract):
//
//   1. A flash-crowd scenario run serially and with an 8-thread pool
//      produces bit-identical digests and federation ledger hashes at
//      every tested seed — thread scheduling can never leak into the
//      economy.
//   2. Under active adversaries (flooders, snipers, settlement
//      replayers) money conservation holds EXACTLY every epoch, with
//      the federation Reconciler's signed report verified each time.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/grid_market.hpp"
#include "scenario/engine.hpp"
#include "scenario/parallel_backend.hpp"
#include "sim/time.hpp"

namespace gm::scenario {
namespace {

GridMarket::Config ScaleGrid(std::uint64_t seed) {
  GridMarket::Config config;
  config.hosts = 4;
  config.cpus_per_host = 2;
  config.bank_shards = 4;
  config.seed = seed;
  return config;
}

ScenarioConfig FlashCrowdScenario(std::uint64_t seed) {
  ScenarioConfig config;
  config.seed = seed;
  config.epochs = 3;
  config.epoch_duration = sim::kMinute;

  config.traffic.users = 2'000;
  config.traffic.base_arrivals_per_sec = 2.0;
  // 10x spike across the middle epoch.
  config.traffic.flash_start = sim::kMinute;
  config.traffic.flash_duration = 30 * sim::kSecond;
  config.traffic.flash_multiplier = 10.0;

  config.adversary.snipers = 8;
  config.adversary.snipe_rate_per_sec = 0.5;
  config.adversary.flood_rate_per_sec = 1.0;
  config.adversary.replay_rate_per_sec = 0.5;

  config.slo.enforce_settle_p99 = false;  // wall clock: reported only
  config.slo.max_queue_depth = 100'000;
  return config;
}

ScenarioResult RunOnce(std::uint64_t seed, bool serial,
                       std::string* ledger_hash) {
  const ScenarioConfig scenario = FlashCrowdScenario(seed);
  GridMarket grid(ScaleGrid(seed));
  ParallelScenarioBackend::Options options;
  options.serial = serial;
  options.threads = 8;
  ParallelScenarioBackend backend(grid, scenario, options);
  const ScenarioResult result = ScenarioEngine(scenario).Run(backend);
  if (ledger_hash != nullptr) *ledger_hash = backend.LedgerHash();
  return result;
}

TEST(ScenarioPropertiesTest, SerialAndEightThreadRunsAreBitIdentical) {
  for (const std::uint64_t seed : {7ull, 21ull, 1234ull}) {
    std::string serial_ledger;
    std::string parallel_ledger;
    const ScenarioResult serial = RunOnce(seed, /*serial=*/true,
                                          &serial_ledger);
    const ScenarioResult parallel = RunOnce(seed, /*serial=*/false,
                                            &parallel_ledger);
    // The digest folds every deterministic observable of every epoch
    // plus the ledger hash after each epoch: equality here means the
    // whole economy evolved identically under 8 threads.
    EXPECT_EQ(serial.digest, parallel.digest) << "seed " << seed;
    EXPECT_EQ(serial_ledger, parallel_ledger) << "seed " << seed;
    EXPECT_EQ(serial.total_arrivals, parallel.total_arrivals);
    EXPECT_GT(serial.total_arrivals, 0u) << "seed " << seed;
  }
}

TEST(ScenarioPropertiesTest, AdversariesNeverBreakConservation) {
  for (const std::uint64_t seed : {7ull, 21ull, 1234ull}) {
    const ScenarioResult result = RunOnce(seed, /*serial=*/false, nullptr);
    ASSERT_FALSE(result.epochs.empty());
    for (const EpochTelemetry& telem : result.epochs) {
      // Exact conservation under hostile load, certified by a verified
      // reconciler report at each epoch's quiescent point.
      EXPECT_TRUE(telem.reconciler_clean)
          << "seed " << seed << " epoch " << telem.epoch;
      EXPECT_EQ(telem.total_balance, telem.expected_total)
          << "seed " << seed << " epoch " << telem.epoch;
      // Every settlement-id replay the adversary fired was refused.
      EXPECT_EQ(telem.replay_attempts, telem.replays_rejected)
          << "seed " << seed << " epoch " << telem.epoch;
    }
    EXPECT_TRUE(result.slo.passed) << "seed " << seed << "\n"
                                   << result.slo.Summary();
  }
}

TEST(ScenarioPropertiesTest, DifferentSeedsDiverge) {
  const ScenarioResult a = RunOnce(7, /*serial=*/true, nullptr);
  const ScenarioResult b = RunOnce(8, /*serial=*/true, nullptr);
  EXPECT_NE(a.digest, b.digest);
}

}  // namespace
}  // namespace gm::scenario
