// Parameterized property sweeps over the math and crypto substrates:
// bignum division, SHA-256 lengths, normal quantile inversion, smoothing
// spline behaviour in lambda, and AR fits on synthetic processes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "crypto/biguint.hpp"
#include "crypto/modmath.hpp"
#include "crypto/prime.hpp"
#include "crypto/sha256.hpp"
#include "math/ar_model.hpp"
#include "math/normal.hpp"
#include "math/spline.hpp"
#include "math/stats.hpp"

namespace gm {
namespace {

// ---------------------------------------------------------------------
// BigUInt division: for every (dividend width, divisor width) pair,
// q*d + r == n and r < d on random values.
struct DivCase {
  std::size_t dividend_bits;
  std::size_t divisor_bits;
};

class BigUIntDivisionProperty : public ::testing::TestWithParam<DivCase> {};

TEST_P(BigUIntDivisionProperty, Reconstruction) {
  const DivCase param = GetParam();
  Rng rng(param.dividend_bits * 131 + param.divisor_bits);
  for (int trial = 0; trial < 25; ++trial) {
    const crypto::U256 dividend =
        crypto::U256::RandomWithBits(param.dividend_bits, rng);
    const crypto::U256 divisor =
        crypto::U256::RandomWithBits(param.divisor_bits, rng);
    const auto result = crypto::DivMod(dividend, divisor);
    EXPECT_LT(result.remainder, divisor);
    crypto::U512 check = crypto::Mul(result.quotient, divisor);
    check.AddWithCarry(result.remainder.Extend<8>());
    EXPECT_EQ(check.Truncate<4>(), dividend);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BigUIntDivisionProperty,
    ::testing::Values(DivCase{8, 8}, DivCase{64, 8}, DivCase{64, 64},
                      DivCase{128, 64}, DivCase{200, 30}, DivCase{256, 128},
                      DivCase{256, 255}, DivCase{256, 256}),
    [](const auto& info) {
      return std::to_string(info.param.dividend_bits) + "by" +
             std::to_string(info.param.divisor_bits);
    });

// ---------------------------------------------------------------------
// Modular arithmetic: Fermat and inverse across modulus sizes.
class ModMathProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ModMathProperty, FermatAndInverse) {
  const std::size_t bits = GetParam();
  Rng rng(bits * 7 + 3);
  const crypto::U256 p = crypto::RandomPrime(bits, rng);
  for (int trial = 0; trial < 10; ++trial) {
    crypto::U256 a = crypto::U256::RandomBelow(p, rng);
    if (a.IsZero()) a = crypto::U256(1);
    EXPECT_EQ(crypto::ModExp(a, p - crypto::U256::One(), p),
              crypto::U256::One());
    const crypto::U256 inv = crypto::ModInverse(a, p);
    EXPECT_EQ(crypto::ModMul(a, inv, p), crypto::U256::One());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ModMathProperty,
                         ::testing::Values(8, 16, 24, 32, 48, 64, 96));

// ---------------------------------------------------------------------
// SHA-256: streaming equals one-shot at every boundary-straddling length,
// and distinct inputs give distinct digests.
class Sha256LengthProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256LengthProperty, StreamingMatchesOneShot) {
  const std::size_t length = GetParam();
  Rng rng(length + 1);
  Bytes message(length);
  for (auto& byte : message)
    byte = static_cast<std::uint8_t>(rng.NextBelow(256));

  const auto oneshot = crypto::Sha256::Hash(message);
  crypto::Sha256 streaming;
  std::size_t pos = 0;
  while (pos < message.size()) {
    const std::size_t take =
        std::min<std::size_t>(1 + rng.NextBelow(17), message.size() - pos);
    streaming.Update(message.data() + pos, take);
    pos += take;
  }
  EXPECT_EQ(streaming.Finalize(), oneshot);

  if (!message.empty()) {
    Bytes flipped = message;
    flipped[rng.NextBelow(flipped.size())] ^= 0x01;
    EXPECT_NE(crypto::Sha256::Hash(flipped), oneshot);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Sha256LengthProperty,
                         ::testing::Values(0, 1, 55, 56, 63, 64, 65, 119,
                                           128, 1000));

// ---------------------------------------------------------------------
// Normal quantile: Phi(Phi^-1(p)) == p over a dense probability grid.
class NormalQuantileProperty : public ::testing::TestWithParam<double> {};

TEST_P(NormalQuantileProperty, InverseOfCdf) {
  const double p = GetParam();
  const double x = math::NormalQuantile(p);
  EXPECT_NEAR(math::NormalCdf(x), p, 1e-12);
  // Symmetry.
  EXPECT_NEAR(math::NormalQuantile(1.0 - p), -x, 1e-9 + 1e-9 * std::fabs(x));
}

INSTANTIATE_TEST_SUITE_P(Sweep, NormalQuantileProperty,
                         ::testing::Values(1e-9, 1e-6, 0.001, 0.025, 0.2,
                                           0.5, 0.8, 0.9, 0.99, 0.999999));

// ---------------------------------------------------------------------
// Smoothing spline: across lambda, the fit interpolates at 0, approaches
// the least-squares line as lambda grows, and roughness is monotone.
class SplineLambdaProperty : public ::testing::TestWithParam<double> {};

TEST_P(SplineLambdaProperty, BetweenInterpolationAndLine) {
  const double lambda = GetParam();
  Rng rng(42);
  std::vector<double> x, y;
  for (int i = 0; i <= 60; ++i) {
    x.push_back(static_cast<double>(i));
    y.push_back(std::sin(i * 0.2) + rng.Uniform(-0.2, 0.2));
  }
  const auto fit = math::SmoothingSpline::Fit(x, y, lambda);
  ASSERT_TRUE(fit.ok());
  auto sse = [&](const std::vector<double>& fitted) {
    double sum = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i)
      sum += (fitted[i] - y[i]) * (fitted[i] - y[i]);
    return sum;
  };
  auto roughness = [](const std::vector<double>& fitted) {
    double sum = 0.0;
    for (std::size_t i = 2; i < fitted.size(); ++i) {
      const double second = fitted[i] - 2 * fitted[i - 1] + fitted[i - 2];
      sum += second * second;
    }
    return sum;
  };
  // Compare with a 10x larger lambda: smoother but worse fit.
  const auto smoother = math::SmoothingSpline::Fit(x, y, lambda * 10 + 1.0);
  ASSERT_TRUE(smoother.ok());
  EXPECT_LE(sse(fit->fitted()), sse(smoother->fitted()) + 1e-9);
  EXPECT_GE(roughness(fit->fitted()),
            roughness(smoother->fitted()) - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SplineLambdaProperty,
                         ::testing::Values(0.0, 0.01, 0.1, 1.0, 10.0, 100.0,
                                           1e4));

// ---------------------------------------------------------------------
// AR fits stay stationary (forecasts bounded) for any order on rough data.
class ArOrderProperty : public ::testing::TestWithParam<int> {};

TEST_P(ArOrderProperty, ForecastsRemainBounded) {
  const int order = GetParam();
  Rng rng(static_cast<std::uint64_t>(order) * 13 + 1);
  std::vector<double> series;
  double level = 5.0;
  for (int i = 0; i < 500; ++i) {
    level = 0.8 * level + rng.Uniform(0.0, 2.0);
    if (i % 37 == 0) level *= 2.0;  // spikes
    series.push_back(level);
  }
  const auto model = math::ArModel::Fit(series, order);
  ASSERT_TRUE(model.ok());
  const auto forecast = model->Forecast(series, 500);
  const double lo = *std::min_element(series.begin(), series.end());
  const double hi = *std::max_element(series.begin(), series.end());
  const double span = hi - lo;
  for (const double value : forecast) {
    EXPECT_GT(value, lo - 2.0 * span);
    EXPECT_LT(value, hi + 2.0 * span);
  }
  // Long-horizon forecasts converge to the series mean (stationarity).
  EXPECT_NEAR(forecast.back(), model->mean(), 0.2 * span);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ArOrderProperty,
                         ::testing::Values(1, 2, 3, 6, 10, 20));

}  // namespace
}  // namespace gm
