#!/usr/bin/env python3
"""Unit tests for the gmstatic analysis framework itself (lexer, scope
parser, project index, suppression extents, baseline, JSON report).
Runs under ctest as lint_gmstatic_unit; fixture-level rule behavior is
covered separately by run_fixture_tests.py."""

import json
import pathlib
import sys
import tempfile
import unittest

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO / "scripts"))

from gmstatic import analysis, cppmodel, engine, lexer  # noqa: E402


def parse(text, display="test.cpp"):
    return cppmodel.SourceFile(pathlib.Path(display), display, text)


class LexerTest(unittest.TestCase):
    def kinds(self, text):
        return [(t.kind, t.text) for t in lexer.lex(text)]

    def test_splice_joins_identifier_at_physical_position(self):
        tokens = lexer.lex("int ab\\\ncd = 1;\n")
        idents = [t for t in tokens if t.kind == lexer.IDENT]
        self.assertEqual([t.text for t in idents], ["int", "abcd"])
        self.assertEqual(idents[1].line, 1)
        self.assertEqual(idents[1].col, 5)

    def test_logical_line_spans_spliced_directive(self):
        tokens = lexer.lex("#define A \\\n  B\nint x;\n")
        define = [t for t in tokens if t.text == "define"][0]
        b = [t for t in tokens if t.text == "B"][0]
        x = [t for t in tokens if t.text == "x"][0]
        self.assertEqual(define.logical_line, b.logical_line)
        self.assertNotEqual(b.logical_line, x.logical_line)
        self.assertEqual(b.line, 2)  # physical position preserved

    def test_raw_string_with_delimiter(self):
        tokens = self.kinds('auto s = R"gm(a )" b)gm";')
        self.assertIn((lexer.STRING, 'R"gm(a )" b)gm"'), tokens)

    def test_nested_template_shift_is_two_closers_token(self):
        tokens = self.kinds("std::vector<std::vector<int>> v;")
        self.assertIn((lexer.PUNCT, ">>"), tokens)

    def test_digit_separators_one_number(self):
        tokens = self.kinds("long x = 1'000'000LL;")
        self.assertIn((lexer.NUMBER, "1'000'000LL"), tokens)

    def test_comment_in_string_stays_string(self):
        tokens = self.kinds('const char* s = "// not a comment";')
        self.assertIn((lexer.STRING, '"// not a comment"'), tokens)
        self.assertFalse(any(k == lexer.COMMENT for k, _ in tokens))

    def test_string_in_comment_stays_comment(self):
        tokens = self.kinds('/* "quoted" */ int x;')
        self.assertEqual(tokens[0][0], lexer.COMMENT)

    def test_unterminated_string_raises(self):
        with self.assertRaises(lexer.LexError):
            lexer.lex('const char* s = "oops;\n')


class ScopeParserTest(unittest.TestCase):
    def test_class_fields_and_annotations(self):
        source = parse("""
            class Ledger {
             public:
              void Deposit(long amount);
             private:
              mutable gm::Mutex mu_{"x", gm::lockrank::kBank};
              long balance_ GM_GUARDED_BY(mu_) = 0;
              const int limit_ = 3;
              std::vector<int> history_;
            };
        """)
        self.assertEqual(len(source.classes), 1)
        cls = source.classes[0]
        self.assertEqual(cls.name, "Ledger")
        names = [f.name for f in cls.fields]
        self.assertEqual(names, ["mu_", "balance_", "limit_", "history_"])
        balance = cls.field("balance_")
        self.assertEqual(balance.guard, "mu_")
        self.assertTrue(cls.field("limit_").is_const)
        self.assertEqual(cls.field("mu_").type_tail, "Mutex")
        self.assertEqual(cls.field("history_").type_tail, "vector")

    def test_function_bodies_and_qualified_names(self):
        source = parse("""
            namespace gm {
            class A {
              void Inline() { int x = 0; }
            };
            void A::OutOfLine() { }
            void Free() { }
            }  // namespace gm
        """)
        names = sorted(fn.qualified for fn in source.functions)
        self.assertEqual(names, ["A::OutOfLine", "gm::A::Inline", "gm::Free"])
        for fn in source.functions:
            self.assertIsNotNone(fn.body_end)
        method = [f for f in source.functions if f.name == "OutOfLine"][0]
        self.assertEqual(method.class_name, "A")

    def test_initializer_brace_not_a_scope(self):
        source = parse("""
            void F() {
              for (int x : {1, 2, 3}) { (void)x; }
              std::vector<int> v = {4, 5};
            }
        """)
        self.assertEqual(len(source.functions), 1)

    def test_includes_parsed(self):
        source = parse('#include "market/auctioneer.hpp"\n#include <map>\n')
        paths = [(i.path, i.system) for i in source.includes]
        self.assertEqual(paths, [("market/auctioneer.hpp", False),
                                 ("map", True)])

    def test_hotpath_tag_attaches_to_next_function(self):
        source = parse("""
            // gmlint: hotpath
            void Hot() { }
            void Cold() { }
        """)
        flags = {fn.name: fn.hotpath for fn in source.functions}
        self.assertEqual(flags, {"Hot": True, "Cold": False})


class SuppressionTest(unittest.TestCase):
    def test_allow_covers_following_multiline_statement(self):
        source = parse(
            "void F() {\n"
            "  // gmlint: allow(float-money-eq)\n"
            "  bool same = price_dollars ==\n"
            "              other_dollars;\n"
            "  bool after = a == b;\n"
            "}\n")
        self.assertTrue(source.allowed(3, "float-money-eq"))
        self.assertTrue(source.allowed(4, "float-money-eq"))
        self.assertFalse(source.allowed(5, "float-money-eq"))
        self.assertFalse(source.allowed(3, "nondeterminism"))

    def test_trailing_allow_covers_containing_statement(self):
        source = parse(
            "void F() {\n"
            "  bool same = price_dollars ==  // gmlint: allow(float-money-eq)\n"
            "              other_dollars;\n"
            "}\n")
        self.assertTrue(source.allowed(2, "float-money-eq"))
        self.assertTrue(source.allowed(3, "float-money-eq"))

    def test_allow_does_not_reach_previous_statement(self):
        source = parse(
            "void F() {\n"
            "  bool same = a == b;\n"
            "  // gmlint: allow(float-money-eq)\n"
            "  bool next = c == d;\n"
            "}\n")
        self.assertFalse(source.allowed(2, "float-money-eq"))
        self.assertTrue(source.allowed(4, "float-money-eq"))


class ProjectTest(unittest.TestCase):
    def test_ranks_and_mutex_decls(self):
        source = parse("""
            namespace gm {
            namespace lockrank {
            inline constexpr int kBus = 15;
            inline constexpr int kBank = 30;
            }
            class Bank {
              Mutex mu_{"bank.ledger", lockrank::kBank};
            };
            }
        """)
        project = analysis.Project([source])
        self.assertEqual(project.ranks, {"kBus": 15, "kBank": 30})
        decl = project.mutexes.get(("Bank", "mu_"))
        self.assertIsNotNone(decl)
        self.assertEqual(decl.label, "bank.ledger")
        self.assertEqual(decl.rank_const, "kBank")
        self.assertIn("Bank", project.lock_owning_classes)

    def test_mutex_pointer_member_is_not_lock_owning(self):
        source = parse("""
            struct HeldLock {
              const Mutex* mu;
              int rank;
            };
        """)
        project = analysis.Project([source])
        self.assertNotIn("HeldLock", project.lock_owning_classes)

    def test_rank_table_parsed(self):
        source = parse(
            'constexpr LockRankEntry kLockRankTable[] = {\n'
            '    {"kBus", lockrank::kBus},\n'
            '    {"kBank", lockrank::kBank},\n'
            '};\n', display="src/common/concurrency.cpp")
        project = analysis.Project([source])
        self.assertEqual([(n, c) for n, c, _ in project.rank_table],
                         [("kBus", "kBus"), ("kBank", "kBank")])


class EngineTest(unittest.TestCase):
    def test_baseline_match_and_unused(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "baseline.json"
            path.write_text(json.dumps({"entries": [
                {"rule": "r", "file": "f.cpp", "subject": "s",
                 "reason": "because"},
                {"rule": "r", "file": "f.cpp", "subject": "stale",
                 "reason": "old"},
            ]}))
            baseline = engine.Baseline(path)
            finding = engine.Finding("r", "f.cpp", 1, 1, "s", "m")
            self.assertTrue(baseline.match(finding))
            other = engine.Finding("r", "f.cpp", 1, 1, "t", "m")
            self.assertFalse(baseline.match(other))
            self.assertEqual(baseline.unused({"r"}),
                             [("r", "f.cpp", "stale")])
            self.assertEqual(baseline.unused({"other-rule"}), [])

    def test_json_report_schema(self):
        with tempfile.TemporaryDirectory() as tmp:
            out = pathlib.Path(tmp) / "report.json"
            finding = engine.Finding("lock-order", "a.cpp", 3, 1, "s", "msg")
            engine.write_json_report(out, [finding], 2, [], {"lock-order"},
                                     5, None, 0.25)
            doc = json.loads(out.read_text())
            self.assertEqual(doc["tool"], "gmstatic")
            self.assertEqual(doc["schema_version"], engine.SCHEMA_VERSION)
            self.assertEqual(doc["files_scanned"], 5)
            self.assertEqual(len(doc["findings"]), 1)
            f = doc["findings"][0]
            for key in ("rule", "file", "line", "col", "subject",
                        "message", "baselined"):
                self.assertIn(key, f)

    def test_gather_excludes_and_dedups(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = pathlib.Path(tmp)
            (root / "a.cpp").write_text("int a;\n")
            (root / "skip_me.cpp").write_text("int b;\n")
            (root / "h.hpp").write_text("int h;\n")
            files = engine.gather([root, root / "a.cpp"],
                                  excludes=["skip_me"])
            names = [f.name for f in files]
            self.assertEqual(names, ["h.hpp", "a.cpp"])

    def test_compile_commands_filter(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = pathlib.Path(tmp)
            (root / "in_db.cpp").write_text("int a;\n")
            (root / "orphan.cpp").write_text("int b;\n")
            db = root / "compile_commands.json"
            db.write_text(json.dumps([
                {"directory": str(root), "file": "in_db.cpp",
                 "command": "c++ -c in_db.cpp"},
            ]))
            files = engine.gather([root], compile_commands=db)
            self.assertEqual([f.name for f in files], ["in_db.cpp"])

    def test_lex_error_is_reported_not_fatal(self):
        source = parse('const char* s = "unterminated;\n')
        self.assertEqual(len(source.lex_errors), 1)
        findings, _, errors = engine.run(
            [source], {"nondeterminism"}, path_filter=False, baseline=None)
        self.assertEqual(findings, [])
        self.assertEqual(len(errors), 1)


if __name__ == "__main__":
    unittest.main(verbosity=2)
