#!/usr/bin/env python3
"""Unit tests for the gmstatic analysis framework itself (lexer, scope
parser, project index, suppression extents, baseline, call graph,
changed-only selection, SARIF and JSON reports). Runs under ctest as
lint_gmstatic_unit; fixture-level rule behavior is covered separately
by run_fixture_tests.py."""

import json
import pathlib
import shutil
import subprocess
import sys
import tempfile
import time
import unittest

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO / "scripts"))

from gmstatic import (  # noqa: E402
    analysis, callgraph, changed, cppmodel, engine, lexer, sarif)


def parse(text, display="test.cpp"):
    return cppmodel.SourceFile(pathlib.Path(display), display, text)


class LexerTest(unittest.TestCase):
    def kinds(self, text):
        return [(t.kind, t.text) for t in lexer.lex(text)]

    def test_splice_joins_identifier_at_physical_position(self):
        tokens = lexer.lex("int ab\\\ncd = 1;\n")
        idents = [t for t in tokens if t.kind == lexer.IDENT]
        self.assertEqual([t.text for t in idents], ["int", "abcd"])
        self.assertEqual(idents[1].line, 1)
        self.assertEqual(idents[1].col, 5)

    def test_logical_line_spans_spliced_directive(self):
        tokens = lexer.lex("#define A \\\n  B\nint x;\n")
        define = [t for t in tokens if t.text == "define"][0]
        b = [t for t in tokens if t.text == "B"][0]
        x = [t for t in tokens if t.text == "x"][0]
        self.assertEqual(define.logical_line, b.logical_line)
        self.assertNotEqual(b.logical_line, x.logical_line)
        self.assertEqual(b.line, 2)  # physical position preserved

    def test_raw_string_with_delimiter(self):
        tokens = self.kinds('auto s = R"gm(a )" b)gm";')
        self.assertIn((lexer.STRING, 'R"gm(a )" b)gm"'), tokens)

    def test_nested_template_shift_is_two_closers_token(self):
        tokens = self.kinds("std::vector<std::vector<int>> v;")
        self.assertIn((lexer.PUNCT, ">>"), tokens)

    def test_digit_separators_one_number(self):
        tokens = self.kinds("long x = 1'000'000LL;")
        self.assertIn((lexer.NUMBER, "1'000'000LL"), tokens)

    def test_comment_in_string_stays_string(self):
        tokens = self.kinds('const char* s = "// not a comment";')
        self.assertIn((lexer.STRING, '"// not a comment"'), tokens)
        self.assertFalse(any(k == lexer.COMMENT for k, _ in tokens))

    def test_string_in_comment_stays_comment(self):
        tokens = self.kinds('/* "quoted" */ int x;')
        self.assertEqual(tokens[0][0], lexer.COMMENT)

    def test_unterminated_string_raises(self):
        with self.assertRaises(lexer.LexError):
            lexer.lex('const char* s = "oops;\n')


class ScopeParserTest(unittest.TestCase):
    def test_class_fields_and_annotations(self):
        source = parse("""
            class Ledger {
             public:
              void Deposit(long amount);
             private:
              mutable gm::Mutex mu_{"x", gm::lockrank::kBank};
              long balance_ GM_GUARDED_BY(mu_) = 0;
              const int limit_ = 3;
              std::vector<int> history_;
            };
        """)
        self.assertEqual(len(source.classes), 1)
        cls = source.classes[0]
        self.assertEqual(cls.name, "Ledger")
        names = [f.name for f in cls.fields]
        self.assertEqual(names, ["mu_", "balance_", "limit_", "history_"])
        balance = cls.field("balance_")
        self.assertEqual(balance.guard, "mu_")
        self.assertTrue(cls.field("limit_").is_const)
        self.assertEqual(cls.field("mu_").type_tail, "Mutex")
        self.assertEqual(cls.field("history_").type_tail, "vector")

    def test_function_bodies_and_qualified_names(self):
        source = parse("""
            namespace gm {
            class A {
              void Inline() { int x = 0; }
            };
            void A::OutOfLine() { }
            void Free() { }
            }  // namespace gm
        """)
        names = sorted(fn.qualified for fn in source.functions)
        self.assertEqual(names, ["A::OutOfLine", "gm::A::Inline", "gm::Free"])
        for fn in source.functions:
            self.assertIsNotNone(fn.body_end)
        method = [f for f in source.functions if f.name == "OutOfLine"][0]
        self.assertEqual(method.class_name, "A")

    def test_initializer_brace_not_a_scope(self):
        source = parse("""
            void F() {
              for (int x : {1, 2, 3}) { (void)x; }
              std::vector<int> v = {4, 5};
            }
        """)
        self.assertEqual(len(source.functions), 1)

    def test_includes_parsed(self):
        source = parse('#include "market/auctioneer.hpp"\n#include <map>\n')
        paths = [(i.path, i.system) for i in source.includes]
        self.assertEqual(paths, [("market/auctioneer.hpp", False),
                                 ("map", True)])

    def test_hotpath_tag_attaches_to_next_function(self):
        source = parse("""
            // gmlint: hotpath
            void Hot() { }
            void Cold() { }
        """)
        flags = {fn.name: fn.hotpath for fn in source.functions}
        self.assertEqual(flags, {"Hot": True, "Cold": False})


class SuppressionTest(unittest.TestCase):
    def test_allow_covers_following_multiline_statement(self):
        source = parse(
            "void F() {\n"
            "  // gmlint: allow(float-money-eq)\n"
            "  bool same = price_dollars ==\n"
            "              other_dollars;\n"
            "  bool after = a == b;\n"
            "}\n")
        self.assertTrue(source.allowed(3, "float-money-eq"))
        self.assertTrue(source.allowed(4, "float-money-eq"))
        self.assertFalse(source.allowed(5, "float-money-eq"))
        self.assertFalse(source.allowed(3, "nondeterminism"))

    def test_trailing_allow_covers_containing_statement(self):
        source = parse(
            "void F() {\n"
            "  bool same = price_dollars ==  // gmlint: allow(float-money-eq)\n"
            "              other_dollars;\n"
            "}\n")
        self.assertTrue(source.allowed(2, "float-money-eq"))
        self.assertTrue(source.allowed(3, "float-money-eq"))

    def test_allow_does_not_reach_previous_statement(self):
        source = parse(
            "void F() {\n"
            "  bool same = a == b;\n"
            "  // gmlint: allow(float-money-eq)\n"
            "  bool next = c == d;\n"
            "}\n")
        self.assertFalse(source.allowed(2, "float-money-eq"))
        self.assertTrue(source.allowed(4, "float-money-eq"))


class ProjectTest(unittest.TestCase):
    def test_ranks_and_mutex_decls(self):
        source = parse("""
            namespace gm {
            namespace lockrank {
            inline constexpr int kBus = 15;
            inline constexpr int kBank = 30;
            }
            class Bank {
              Mutex mu_{"bank.ledger", lockrank::kBank};
            };
            }
        """)
        project = analysis.Project([source])
        self.assertEqual(project.ranks, {"kBus": 15, "kBank": 30})
        decl = project.mutexes.get(("Bank", "mu_"))
        self.assertIsNotNone(decl)
        self.assertEqual(decl.label, "bank.ledger")
        self.assertEqual(decl.rank_const, "kBank")
        self.assertIn("Bank", project.lock_owning_classes)

    def test_mutex_pointer_member_is_not_lock_owning(self):
        source = parse("""
            struct HeldLock {
              const Mutex* mu;
              int rank;
            };
        """)
        project = analysis.Project([source])
        self.assertNotIn("HeldLock", project.lock_owning_classes)

    def test_rank_table_parsed(self):
        source = parse(
            'constexpr LockRankEntry kLockRankTable[] = {\n'
            '    {"kBus", lockrank::kBus},\n'
            '    {"kBank", lockrank::kBank},\n'
            '};\n', display="src/common/concurrency.cpp")
        project = analysis.Project([source])
        self.assertEqual([(n, c) for n, c, _ in project.rank_table],
                         [("kBus", "kBus"), ("kBank", "kBank")])


class EngineTest(unittest.TestCase):
    def test_baseline_match_and_unused(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "baseline.json"
            path.write_text(json.dumps({"entries": [
                {"rule": "r", "file": "f.cpp", "subject": "s",
                 "reason": "because"},
                {"rule": "r", "file": "f.cpp", "subject": "stale",
                 "reason": "old"},
            ]}))
            baseline = engine.Baseline(path)
            finding = engine.Finding("r", "f.cpp", 1, 1, "s", "m")
            self.assertTrue(baseline.match(finding))
            other = engine.Finding("r", "f.cpp", 1, 1, "t", "m")
            self.assertFalse(baseline.match(other))
            self.assertEqual(baseline.unused({"r"}),
                             [("r", "f.cpp", "stale")])
            self.assertEqual(baseline.unused({"other-rule"}), [])

    def test_json_report_schema(self):
        with tempfile.TemporaryDirectory() as tmp:
            out = pathlib.Path(tmp) / "report.json"
            finding = engine.Finding("lock-order", "a.cpp", 3, 1, "s", "msg")
            engine.write_json_report(out, [finding], 2, [], {"lock-order"},
                                     5, None, 0.25)
            doc = json.loads(out.read_text())
            self.assertEqual(doc["tool"], "gmstatic")
            self.assertEqual(doc["schema_version"], engine.SCHEMA_VERSION)
            self.assertEqual(doc["files_scanned"], 5)
            self.assertEqual(len(doc["findings"]), 1)
            f = doc["findings"][0]
            for key in ("rule", "file", "line", "col", "subject",
                        "message", "baselined"):
                self.assertIn(key, f)

    def test_gather_excludes_and_dedups(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = pathlib.Path(tmp)
            (root / "a.cpp").write_text("int a;\n")
            (root / "skip_me.cpp").write_text("int b;\n")
            (root / "h.hpp").write_text("int h;\n")
            files = engine.gather([root, root / "a.cpp"],
                                  excludes=["skip_me"])
            names = [f.name for f in files]
            self.assertEqual(names, ["h.hpp", "a.cpp"])

    def test_compile_commands_filter(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = pathlib.Path(tmp)
            (root / "in_db.cpp").write_text("int a;\n")
            (root / "orphan.cpp").write_text("int b;\n")
            db = root / "compile_commands.json"
            db.write_text(json.dumps([
                {"directory": str(root), "file": "in_db.cpp",
                 "command": "c++ -c in_db.cpp"},
            ]))
            files = engine.gather([root], compile_commands=db)
            self.assertEqual([f.name for f in files], ["in_db.cpp"])

    def test_lex_error_is_reported_not_fatal(self):
        source = parse('const char* s = "unterminated;\n')
        self.assertEqual(len(source.lex_errors), 1)
        findings, _, errors = engine.run(
            [source], {"nondeterminism"}, path_filter=False, baseline=None)
        self.assertEqual(findings, [])
        self.assertEqual(len(errors), 1)


class BaselineValidationTest(unittest.TestCase):
    def load(self, entries):
        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "baseline.json"
            path.write_text(json.dumps({"entries": entries}))
            return engine.Baseline(path)

    def test_missing_reason_rejected(self):
        with self.assertRaises(engine.BaselineError):
            self.load([{"rule": "r", "file": "f.cpp", "subject": "s"}])

    def test_blank_reason_rejected(self):
        with self.assertRaises(engine.BaselineError):
            self.load([{"rule": "r", "file": "f.cpp", "subject": "s",
                        "reason": "   "}])

    def test_non_string_reason_rejected(self):
        with self.assertRaises(engine.BaselineError):
            self.load([{"rule": "r", "file": "f.cpp", "subject": "s",
                        "reason": 7}])

    def test_missing_key_fields_rejected(self):
        for field in ("rule", "file", "subject"):
            entry = {"rule": "r", "file": "f.cpp", "subject": "s",
                     "reason": "why"}
            del entry[field]
            with self.assertRaises(engine.BaselineError):
                self.load([entry])

    def test_unused_restricted_to_scanned_files(self):
        baseline = self.load([
            {"rule": "r", "file": "scanned.cpp", "subject": "stale",
             "reason": "x"},
            {"rule": "r", "file": "skipped.cpp", "subject": "other",
             "reason": "y"},
        ])
        # An incremental run that never parsed skipped.cpp cannot call
        # its entry stale; the entry for a scanned file with no match
        # is genuinely unused.
        self.assertEqual(baseline.unused({"r"}, files={"scanned.cpp"}),
                         [("r", "scanned.cpp", "stale")])


class SarifTest(unittest.TestCase):
    def make_findings(self):
        live = engine.Finding("lock-order", "src/a.cpp", 12, 3,
                              "gm::F", "rank inversion")
        waived = engine.Finding("guarded-field", "src/b.hpp", 0, 0,
                                "C::f_", "unguarded read")
        waived.baselined = True
        return [live, waived]

    def report(self):
        findings = self.make_findings()
        return sarif.sarif_report(
            findings, {"lock-order", "guarded-field"}, ["bad.cpp:1: oops"])

    def test_document_skeleton(self):
        doc = self.report()
        self.assertEqual(doc["version"], "2.1.0")
        self.assertIn("sarif-2.1.0", doc["$schema"])
        self.assertEqual(len(doc["runs"]), 1)
        run = doc["runs"][0]
        self.assertEqual(run["tool"]["driver"]["name"], "gmstatic")
        # Round-trips through the JSON encoder (no stray objects).
        json.loads(json.dumps(doc))

    def test_rule_table_and_indices_agree(self):
        run = self.report()["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        ids = [r["id"] for r in rules]
        self.assertEqual(ids, sorted(ids))
        for rule in rules:
            self.assertTrue(rule["shortDescription"]["text"])
        for result in run["results"]:
            idx = result["ruleIndex"]
            self.assertTrue(0 <= idx < len(rules))
            self.assertEqual(rules[idx]["id"], result["ruleId"])

    def test_results_have_valid_locations_and_levels(self):
        run = self.report()["runs"][0]
        self.assertEqual(len(run["results"]), 2)
        for result in run["results"]:
            self.assertIn(result["level"], ("note", "warning", "error"))
            self.assertTrue(result["message"]["text"])
            loc = result["locations"][0]["physicalLocation"]
            self.assertEqual(loc["artifactLocation"]["uriBaseId"],
                             "SRCROOT")
            # SARIF requires 1-based positions even when the analyzer
            # reports a whole-file finding as line 0.
            self.assertGreaterEqual(loc["region"]["startLine"], 1)
            self.assertGreaterEqual(loc["region"]["startColumn"], 1)
            self.assertIn("gmstatic/subject/v1",
                          result["partialFingerprints"])

    def test_baselined_results_suppressed_not_dropped(self):
        results = self.report()["runs"][0]["results"]
        by_rule = {r["ruleId"]: r for r in results}
        self.assertEqual(by_rule["lock-order"]["level"], "error")
        self.assertNotIn("suppressions", by_rule["lock-order"])
        waived = by_rule["guarded-field"]
        self.assertEqual(waived["level"], "note")
        self.assertEqual(waived["suppressions"][0]["kind"], "external")

    def test_lex_errors_become_notifications(self):
        run = self.report()["runs"][0]
        notes = run["invocations"][0]["toolExecutionNotifications"]
        self.assertEqual(len(notes), 1)
        self.assertEqual(notes[0]["descriptor"]["id"], "lex-error")
        self.assertEqual(notes[0]["message"]["text"], "bad.cpp:1: oops")

    def test_every_registered_rule_has_a_description(self):
        for rule in engine.RULE_NAMES:
            self.assertIn(rule, sarif.RULE_DESCRIPTIONS)


class CallGraphTest(unittest.TestCase):
    SOURCE = """
        namespace gm {
        class Base {
         public:
          virtual void Poll();
        };
        class Derived : public Base {
         public:
          void Poll() override { Step(); }
          void Step();
        };
        void Base::Poll() { }
        void Derived::Step() { }
        class Driver {
         public:
          void RunOnce() { base_.Poll(); }
         private:
          Base base_;
        };
        void Ping();
        void Pong() { Ping(); }
        void Ping() { Pong(); }
        void Solo() { Pong(); }
        }  // namespace gm
    """

    def setUp(self):
        self.source = parse(self.SOURCE)
        self.project = analysis.Project([self.source])
        self.graph = callgraph.CallGraph(self.project)

    def fn(self, name, class_name=None):
        for fn in self.source.functions:
            if fn.name == name and fn.class_name == class_name:
                return fn
        raise AssertionError(f"no function {class_name}::{name}")

    def test_member_call_dispatches_to_overrides(self):
        sites = self.graph.calls[self.fn("RunOnce", "Driver")]
        self.assertEqual(len(sites), 1)
        names = {(t.class_name, t.name) for t in sites[0].targets}
        # Static target plus the virtual-dispatch over-approximation:
        # base_.Poll() may run any override of Poll in the hierarchy.
        self.assertEqual(names, {("Base", "Poll"), ("Derived", "Poll")})

    def test_mutual_recursion_is_one_scc(self):
        ping, pong = self.fn("Ping"), self.fn("Pong")
        scc_of = {}
        for scc in self.graph.sccs():
            for fn in scc:
                scc_of[fn] = scc
        self.assertIs(scc_of[ping], scc_of[pong])
        self.assertTrue(self.graph.is_recursive(scc_of[ping]))
        solo_scc = scc_of[self.fn("Solo")]
        self.assertEqual(len(solo_scc), 1)
        self.assertFalse(self.graph.is_recursive(solo_scc))

    def test_scc_order_is_callees_first(self):
        sccs = self.graph.sccs()
        index_of = {fn: i for i, scc in enumerate(sccs) for fn in scc}
        # Solo calls Pong, so Pong's SCC must be emitted before Solo's
        # (dataflow folds callee summaries bottom-up).
        self.assertLess(index_of[self.fn("Pong")],
                        index_of[self.fn("Solo")])

    def test_callers_is_the_reverse_edge_set(self):
        pong = self.fn("Pong")
        caller_names = {fn.name for fn in self.graph.callers[pong]}
        self.assertEqual(caller_names, {"Ping", "Solo"})


class ChangedSelectTest(unittest.TestCase):
    def write_tree(self, root):
        (root / "src").mkdir()
        (root / "src/a.hpp").write_text("struct A {};\n")
        (root / "src/b.hpp").write_text('#include "src/a.hpp"\n')
        (root / "src/c.cpp").write_text('#include "src/b.hpp"\n')
        (root / "src/d.cpp").write_text("int d;\n")
        return [root / "src/a.hpp", root / "src/b.hpp",
                root / "src/c.cpp", root / "src/d.cpp"]

    def names(self, files):
        return [f.name for f in files]

    def test_header_edit_selects_reverse_include_closure(self):
        with tempfile.TemporaryDirectory() as tmp:
            files = self.write_tree(pathlib.Path(tmp))
            picked = changed.select(files, ["src/a.hpp"])
            # b.hpp includes a.hpp and c.cpp includes b.hpp: both are
            # re-checked; the unrelated d.cpp is not.
            self.assertEqual(self.names(picked),
                             ["a.hpp", "b.hpp", "c.cpp"])

    def test_leaf_edit_pulls_forward_includes_for_resolution(self):
        with tempfile.TemporaryDirectory() as tmp:
            files = self.write_tree(pathlib.Path(tmp))
            picked = changed.select(files, ["src/c.cpp"])
            # c.cpp needs b.hpp and (transitively) a.hpp parsed so the
            # project index still resolves the types it refers to.
            self.assertEqual(self.names(picked),
                             ["a.hpp", "b.hpp", "c.cpp"])

    def test_isolated_edit_selects_only_itself(self):
        with tempfile.TemporaryDirectory() as tmp:
            files = self.write_tree(pathlib.Path(tmp))
            picked = changed.select(files, ["src/d.cpp"])
            self.assertEqual(self.names(picked), ["d.cpp"])

    def test_no_match_selects_nothing(self):
        with tempfile.TemporaryDirectory() as tmp:
            files = self.write_tree(pathlib.Path(tmp))
            self.assertEqual(changed.select(files, ["src/gone.cpp"]), [])
            self.assertEqual(changed.select(files, []), [])

    def test_changed_names_match_by_path_suffix(self):
        with tempfile.TemporaryDirectory() as tmp:
            files = self.write_tree(pathlib.Path(tmp))
            # A repo-relative name matches the absolute gathered path.
            picked = changed.select(files, ["a.hpp"])
            self.assertIn("a.hpp", self.names(picked))

    @unittest.skipIf(shutil.which("git") is None, "git not installed")
    def test_git_changed_files_sees_diff_and_untracked(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = pathlib.Path(tmp)
            env_git = ["git", "-c", "user.email=t@t", "-c", "user.name=t"]
            subprocess.run(["git", "init", "-q"], cwd=tmp, check=True)
            (root / "tracked.cpp").write_text("int x;\n")
            subprocess.run(["git", "add", "tracked.cpp"], cwd=tmp,
                           check=True)
            subprocess.run(env_git + ["commit", "-qm", "seed"], cwd=tmp,
                           check=True)
            (root / "tracked.cpp").write_text("int x = 1;\n")
            (root / "fresh.cpp").write_text("int y;\n")
            got = changed.git_changed_files("HEAD", root)
            self.assertEqual(sorted(got), ["fresh.cpp", "tracked.cpp"])

    def test_git_failure_raises(self):
        with tempfile.TemporaryDirectory() as tmp:
            with self.assertRaises(RuntimeError):
                changed.git_changed_files("HEAD", pathlib.Path(tmp))


class ChangedOnlyTimingTest(unittest.TestCase):
    """The incremental mode must be cheap enough for a save hook: a
    one-file diff over the whole tree stays under 2 s and beats the
    full run it replaces."""

    GMLINT = [sys.executable, str(REPO / "scripts/gmlint.py"),
              "--all-rules", "src", "tests",
              "--exclude", "tests/lint/fixtures"]

    def run_lint(self, extra):
        start = time.monotonic()
        proc = subprocess.run(self.GMLINT + extra, cwd=str(REPO),
                              capture_output=True, text=True)
        duration = time.monotonic() - start
        self.assertIn(proc.returncode, (0, 1),
                      f"gmlint crashed: {proc.stderr}")
        return duration

    def test_one_file_diff_is_fast(self):
        incremental = self.run_lint(
            ["--changed-files", "src/grid/plugin.cpp"])
        full = self.run_lint([])
        self.assertLess(incremental, 2.0,
                        f"changed-only run took {incremental:.2f}s")
        self.assertLess(incremental, full,
                        f"changed-only ({incremental:.2f}s) not faster "
                        f"than full run ({full:.2f}s)")


if __name__ == "__main__":
    unittest.main(verbosity=2)
