#!/usr/bin/env python3
"""Fixture tests for scripts/gmlint.py, run via ctest.

Every rule has a must-trigger fixture (bad_*) and a must-pass fixture
(good_*). The bad fixtures must produce at least the expected number of
findings, all tagged with the right rule; the good fixtures must be
completely clean. Fixtures are scanned with --no-path-filter so the rules
apply regardless of where the fixture lives.
"""

import pathlib
import subprocess
import sys

HERE = pathlib.Path(__file__).resolve().parent
GMLINT = HERE.parent.parent / "scripts" / "gmlint.py"
FIXTURES = HERE / "fixtures"

# (fixture, rule, minimum findings expected; 0 == must be clean)
CASES = [
    ("bad_nondeterminism.cpp", "nondeterminism", 3),
    ("good_nondeterminism.cpp", "nondeterminism", 0),
    ("bad_unordered_iteration.cpp", "unordered-iteration", 2),
    ("good_unordered_iteration.cpp", "unordered-iteration", 0),
    ("bad_float_money_eq.cpp", "float-money-eq", 3),
    ("good_float_money_eq.cpp", "float-money-eq", 0),
    ("bad_raw_threading.cpp", "raw-threading", 4),
    ("good_raw_threading.cpp", "raw-threading", 0),
    ("bad_include_layering.cpp", "include-layering", 2),
    ("good_include_layering.cpp", "include-layering", 0),
    ("bad_federation_layering.cpp", "include-layering", 2),
    ("good_federation_layering.cpp", "include-layering", 0),
    ("bad_scenario_layering.cpp", "include-layering", 2),
    ("good_scenario_layering.cpp", "include-layering", 0),
    ("bad_hotpath_map.cpp", "hotpath-map-iteration", 3),
    ("good_hotpath_map.cpp", "hotpath-map-iteration", 0),
]


def run_case(fixture, rule, minimum):
    result = subprocess.run(
        [sys.executable, str(GMLINT), "--no-path-filter",
         "--rules", rule, str(FIXTURES / fixture)],
        capture_output=True, text=True)
    findings = [line for line in result.stdout.splitlines() if line.strip()]
    errors = []
    if minimum == 0:
        if result.returncode != 0 or findings:
            errors.append(f"{fixture}: expected clean, got rc="
                          f"{result.returncode}:\n" + result.stdout)
    else:
        if result.returncode != 1:
            errors.append(f"{fixture}: expected rc=1, got "
                          f"{result.returncode}\n{result.stdout}"
                          f"{result.stderr}")
        if len(findings) < minimum:
            errors.append(f"{fixture}: expected >= {minimum} findings, got "
                          f"{len(findings)}:\n" + result.stdout)
        untagged = [f for f in findings if f"[{rule}]" not in f]
        if untagged:
            errors.append(f"{fixture}: findings with wrong rule tag:\n"
                          + "\n".join(untagged))
    return errors


def main():
    failures = []
    for fixture, rule, minimum in CASES:
        failures.extend(run_case(fixture, rule, minimum))

    # The full rule set over the good fixtures must also be clean: rules
    # must not bleed into each other's fixtures.
    result = subprocess.run(
        [sys.executable, str(GMLINT), "--no-path-filter"]
        + [str(FIXTURES / name) for name, _, minimum in CASES
           if minimum == 0],
        capture_output=True, text=True)
    if result.returncode != 0:
        failures.append("good fixtures not clean under all rules:\n"
                        + result.stdout)

    if failures:
        print("\n".join(failures))
        print(f"gmlint fixture tests: {len(failures)} failure(s)")
        return 1
    print(f"gmlint fixture tests: {len(CASES)} cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
