#!/usr/bin/env python3
"""Fixture tests for the gmstatic engine (via the gmlint shim), run
under ctest.

Three layers:
  * rule fixtures: every rule has a must-trigger fixture (bad_*) and a
    must-pass fixture (good_*). The bad fixtures must produce at least
    the expected number of findings, all tagged with the right rule;
    the good fixtures must be completely clean.
  * an aggregate pass: the full rule set (legacy + structural) over all
    good fixtures must be clean — rules must not bleed into each
    other's fixtures.
  * lexer goldens: every fixtures/lexer/*.cpp has a committed .tokens
    dump; --dump-tokens output must match byte for byte.

Fixtures are scanned with --no-path-filter so the rules apply
regardless of where the fixture lives, and with --baseline none so the
repo baseline cannot mask fixture findings.
"""

import pathlib
import subprocess
import sys

HERE = pathlib.Path(__file__).resolve().parent
GMLINT = HERE.parent.parent / "scripts" / "gmlint.py"
FIXTURES = HERE / "fixtures"
LEXER_FIXTURES = FIXTURES / "lexer"

# (fixture, rule, minimum findings expected; 0 == must be clean)
CASES = [
    ("bad_nondeterminism.cpp", "nondeterminism", 3),
    ("good_nondeterminism.cpp", "nondeterminism", 0),
    ("bad_unordered_iteration.cpp", "unordered-iteration", 2),
    ("good_unordered_iteration.cpp", "unordered-iteration", 0),
    ("bad_float_money_eq.cpp", "float-money-eq", 3),
    ("good_float_money_eq.cpp", "float-money-eq", 0),
    ("bad_raw_threading.cpp", "raw-threading", 4),
    ("good_raw_threading.cpp", "raw-threading", 0),
    ("bad_include_layering.cpp", "include-layering", 2),
    ("good_include_layering.cpp", "include-layering", 0),
    ("bad_federation_layering.cpp", "include-layering", 2),
    ("good_federation_layering.cpp", "include-layering", 0),
    ("bad_scenario_layering.cpp", "include-layering", 2),
    ("good_scenario_layering.cpp", "include-layering", 0),
    ("bad_hotpath_map.cpp", "hotpath-map-iteration", 3),
    ("good_hotpath_map.cpp", "hotpath-map-iteration", 0),
    # Structural rules (gmstatic engine).
    ("bad_lock_order.cpp", "lock-order", 3),
    ("good_lock_order.cpp", "lock-order", 0),
    ("bad_guarded_field.cpp", "guarded-field", 3),
    ("good_guarded_field.cpp", "guarded-field", 0),
    ("bad_hotpath_alloc.cpp", "hotpath-allocation", 4),
    ("good_hotpath_alloc.cpp", "hotpath-allocation", 0),
    ("bad_dropped_status.cpp", "dropped-status", 2),
    ("good_dropped_status.cpp", "dropped-status", 0),
    # Interprocedural rules (call graph + fixpoint summaries).
    ("bad_lock_order_transitive.cpp", "lock-order", 1),
    ("bad_status_propagation.cpp", "status-propagation", 4),
    ("good_status_propagation.cpp", "status-propagation", 0),
    ("bad_money_conservation.cpp", "money-conservation", 4),
    ("good_money_conservation.cpp", "money-conservation", 0),
    # Suppression extents: allow() covers the whole statement, but only
    # for the named rule and never a statement above the directive.
    ("good_multiline_allow.cpp", "float-money-eq", 0),
    ("bad_multiline_allow.cpp", "float-money-eq", 2),
]


def run_gmlint(args):
    return subprocess.run(
        [sys.executable, str(GMLINT), "--baseline", "none"] + args,
        capture_output=True, text=True)


def run_case(fixture, rule, minimum):
    result = run_gmlint(["--no-path-filter", "--rules", rule,
                         str(FIXTURES / fixture)])
    findings = [line for line in result.stdout.splitlines() if line.strip()]
    errors = []
    if minimum == 0:
        if result.returncode != 0 or findings:
            errors.append(f"{fixture}: expected clean, got rc="
                          f"{result.returncode}:\n" + result.stdout)
    else:
        if result.returncode != 1:
            errors.append(f"{fixture}: expected rc=1, got "
                          f"{result.returncode}\n{result.stdout}"
                          f"{result.stderr}")
        if len(findings) < minimum:
            errors.append(f"{fixture}: expected >= {minimum} findings, got "
                          f"{len(findings)}:\n" + result.stdout)
        untagged = [f for f in findings if f"[{rule}]" not in f]
        if untagged:
            errors.append(f"{fixture}: findings with wrong rule tag:\n"
                          + "\n".join(untagged))
    return errors


def run_lock_order_message_check():
    """The inversion report must carry both lock names (so the reader
    can fix the order without re-deriving it) and the fixture path."""
    result = run_gmlint(["--no-path-filter", "--rules", "lock-order",
                         str(FIXTURES / "bad_lock_order.cpp")])
    errors = []
    direct = [line for line in result.stdout.splitlines()
              if "fixture.ledger" in line and "fixture.bus" in line]
    if not direct:
        errors.append("bad_lock_order.cpp: no finding names both"
                      " 'fixture.ledger' and 'fixture.bus':\n"
                      + result.stdout)
    if not any("bad_lock_order.cpp:" in line
               for line in result.stdout.splitlines()):
        errors.append("bad_lock_order.cpp: findings missing the source"
                      " path prefix:\n" + result.stdout)
    if not any("via call to" in line for line in result.stdout.splitlines()):
        errors.append("bad_lock_order.cpp: no finding reports the"
                      " call-graph-expanded inversion ('via call to'):\n"
                      + result.stdout)
    return errors


def run_transitive_chain_check():
    """The depth-2 inversion must spell out the full call chain with an
    arrow between the hops, not just the first callee."""
    result = run_gmlint(["--no-path-filter", "--rules", "lock-order",
                         str(FIXTURES / "bad_lock_order_transitive.cpp")])
    errors = []
    chained = [line for line in result.stdout.splitlines()
               if "via call to" in line and " → " in line
               and "transitive.bus" in line and "transitive.ledger" in line]
    if not chained:
        errors.append("bad_lock_order_transitive.cpp: no finding reports"
                      " the multi-hop chain ('via call to a() → b()') with"
                      " both lock names:\n" + result.stdout)
    return errors


def run_lexer_goldens():
    errors = []
    sources = sorted(LEXER_FIXTURES.glob("*.cpp"))
    if not sources:
        return ["no lexer corpus found under fixtures/lexer/"]
    for source in sources:
        golden = source.with_suffix(".tokens")
        if not golden.exists():
            errors.append(f"{source.name}: missing golden {golden.name}")
            continue
        result = run_gmlint(["--dump-tokens", str(source)])
        if result.returncode != 0:
            errors.append(f"{source.name}: --dump-tokens rc="
                          f"{result.returncode}\n{result.stderr}")
            continue
        if result.stdout != golden.read_text():
            errors.append(f"{source.name}: token dump differs from"
                          f" {golden.name}; regenerate with\n  "
                          f"python3 scripts/gmlint.py --dump-tokens"
                          f" {source} > {golden}")
    return errors


def main():
    failures = []
    for fixture, rule, minimum in CASES:
        failures.extend(run_case(fixture, rule, minimum))
    failures.extend(run_lock_order_message_check())
    failures.extend(run_transitive_chain_check())

    # Every rule over the good fixtures must also be clean: rules must
    # not bleed into each other's fixtures.
    result = run_gmlint(["--no-path-filter", "--all-rules"]
                        + [str(FIXTURES / name) for name, _, minimum in CASES
                           if minimum == 0])
    if result.returncode != 0:
        failures.append("good fixtures not clean under all rules:\n"
                        + result.stdout)

    failures.extend(run_lexer_goldens())

    if failures:
        print("\n".join(failures))
        print(f"gmlint fixture tests: {len(failures)} failure(s)")
        return 1
    lexer_count = len(list(LEXER_FIXTURES.glob("*.cpp")))
    print(f"gmlint fixture tests: {len(CASES)} cases and"
          f" {lexer_count} lexer goldens passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
