// Thread-safety negative fixture: two ways of lying about lock state
// that the analysis must reject — calling a GM_REQUIRES method without
// the mutex, and returning from an unannotated function with the mutex
// still held (a leaked acquisition the caller cannot see).
#include "common/concurrency.hpp"

namespace {

class Ledger {
 public:
  void Rotate() {
    RotateLocked();  // caller holds nothing: must not compile
  }

  // Leaks mu_ without a GM_ACQUIRE annotation: must not compile.
  void Seize() { mu_.Lock(); }

 private:
  void RotateLocked() GM_REQUIRES(mu_) { epoch_ += 1; }

  gm::Mutex mu_{"fixture.ledger", gm::lockrank::kBank};
  int epoch_ GM_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Ledger ledger;
  ledger.Rotate();
  ledger.Seize();
  return 0;
}
