// Thread-safety negative fixture: reading and writing a GM_GUARDED_BY
// field without the mutex held must be a compile error under
// `-Wthread-safety -Werror`. This is the exact bug class the annotation
// sweep exists to make unwritable.
#include "common/concurrency.hpp"

namespace {

class Account {
 public:
  void Deposit(long micros) {
    balance_micros_ += micros;  // no lock: must not compile
  }

  long balance() const {
    return balance_micros_;  // no lock: must not compile
  }

 private:
  mutable gm::Mutex mu_{"fixture.account", gm::lockrank::kBank};
  long balance_micros_ GM_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(5);
  return account.balance() == 5 ? 0 : 1;
}
