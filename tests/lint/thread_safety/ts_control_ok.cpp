// Thread-safety control fixture: the sanctioned locking idioms must
// compile cleanly under `-Wthread-safety -Werror`. If this file breaks,
// the negative fixtures are failing for the wrong reason (include path,
// flag, macro drift), not because the analysis works.
#include "common/concurrency.hpp"

namespace {

class Account {
 public:
  // Scoped lock: the analysis sees GM_SCOPED_CAPABILITY MutexLock
  // acquire in its constructor and release in its destructor.
  void Deposit(long micros) {
    gm::MutexLock lock(&mu_);
    balance_micros_ += micros;
  }

  long balance() const {
    gm::MutexLock lock(&mu_);
    return balance_micros_;
  }

  // Public-locking + private *Locked split, the codebase convention.
  void Roll() {
    gm::MutexLock lock(&mu_);
    RollLocked();
  }

 private:
  void RollLocked() GM_REQUIRES(mu_) { balance_micros_ = 0; }

  mutable gm::Mutex mu_{"fixture.account", gm::lockrank::kBank};
  long balance_micros_ GM_GUARDED_BY(mu_) = 0;
};

// Manual Lock/Unlock is also provable when balanced.
class Queue {
 public:
  void Push(int v) {
    mu_.Lock();
    head_ = v;
    mu_.Unlock();
  }

 private:
  gm::Mutex mu_{"fixture.queue", gm::lockrank::kStore};
  int head_ GM_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(5);
  Queue queue;
  queue.Push(1);
  return account.balance() == 5 ? 0 : 1;
}
