#!/usr/bin/env bash
# Negative-compile harness: each bad fixture under negative_compile/ must
# FAIL to compile with the project's warning regime, and the control
# fixture must succeed (so failures are attributable to the guard under
# test, not a broken include path or flag).
#
# Usage: check_negative_compile.sh <c++-compiler> <repo-src-dir>
set -u

if [ "$#" -ne 2 ]; then
  echo "usage: $0 <c++-compiler> <repo-src-dir>" >&2
  exit 2
fi

CXX="$1"
SRC="$2"
HERE="$(cd "$(dirname "$0")" && pwd)"
FIXTURES="$HERE/negative_compile"
FLAGS=(-std=c++20 "-I$SRC" -fsyntax-only -Werror=unused-result)

fail=0

compile() {
  "$CXX" "${FLAGS[@]}" "$1" 2>/dev/null
}

# Control must compile.
if compile "$FIXTURES/control_ok.cpp"; then
  echo "PASS control_ok.cpp (compiles)"
else
  echo "FAIL control_ok.cpp: control fixture does not compile; harness is broken" >&2
  "$CXX" "${FLAGS[@]}" "$FIXTURES/control_ok.cpp" >&2 || true
  fail=1
fi

# Every other fixture must NOT compile.
for f in "$FIXTURES"/*.cpp; do
  base="$(basename "$f")"
  [ "$base" = "control_ok.cpp" ] && continue
  if compile "$f"; then
    echo "FAIL $base: expected a compile error, but it compiled" >&2
    fail=1
  else
    echo "PASS $base (rejected)"
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "negative-compile tests FAILED" >&2
  exit 1
fi
echo "negative-compile tests passed"
