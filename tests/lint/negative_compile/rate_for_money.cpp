// Negative-compile fixture: funding an account with a $/s rate where
// Money (dollars) is expected must not build.
#include "common/status.hpp"
#include "common/units.hpp"

namespace {

gm::Status Fund(gm::Money amount) {
  return amount.is_positive() ? gm::Status::Ok()
                              : gm::Status::InvalidArgument("amount");
}

}  // namespace

int main() {
  const gm::Rate bid = gm::Rate::MicrosPerSec(500);
  return Fund(bid).ok() ? 0 : 1;  // error: Rate is not Money
}
