// Negative-compile fixture: raw == on Rate (floating-point $/s) must not
// build — operator== is deleted; callers use ApproxEq or ordering.
#include "common/units.hpp"

int main() {
  const gm::Rate a = gm::Rate::DollarsPerSec(0.1);
  const gm::Rate b = gm::Rate::MicrosPerSec(100000);
  return a == b ? 0 : 1;  // error: Rate equality is deleted
}
