// Negative-compile fixture: passing Money (dollars) where Rate ($/s) is
// expected must not build — the bug class the strong types exist to kill
// (e.g. placing a bid with an account balance).
#include "common/status.hpp"
#include "common/units.hpp"

namespace {

gm::Status SetBid(gm::Rate rate) {
  return rate.is_positive() ? gm::Status::Ok()
                            : gm::Status::InvalidArgument("bid");
}

}  // namespace

int main() {
  const gm::Money balance = gm::Money::Dollars(100);
  return SetBid(balance).ok() ? 0 : 1;  // error: Money is not a Rate
}
