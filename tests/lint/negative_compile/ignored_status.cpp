// Negative-compile fixture: silently dropping a Status must not build.
// check_negative_compile.sh compiles this with -Werror=unused-result and
// asserts failure ([[nodiscard]] on common::Status makes it an error).
#include "common/status.hpp"

namespace {

gm::Status Withdraw() { return gm::Status::FailedPrecondition("broke"); }

}  // namespace

int main() {
  Withdraw();  // error: ignoring a [[nodiscard]] Status
  return 0;
}
