// Negative-compile fixture: dropping a Result<T> (e.g. a bank balance
// lookup whose error case carries the failure) must not build.
#include "common/status.hpp"

namespace {

gm::Result<long> Balance() { return 42L; }

}  // namespace

int main() {
  Balance();  // error: ignoring a [[nodiscard]] Result<T>
  return 0;
}
