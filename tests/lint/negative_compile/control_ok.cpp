// Control fixture: the sanctioned idioms must keep compiling under the
// same flags the negative fixtures fail under (-Werror=unused-result).
// If this file breaks, the negative tests are failing for the wrong
// reason (missing header, bad flag), not because the guards work.
#include "common/status.hpp"
#include "common/units.hpp"

namespace {

gm::Status Withdraw() { return gm::Status::Ok(); }

gm::Result<gm::Money> Balance() { return gm::Money::Dollars(5); }

gm::Status Fund(gm::Money amount) {
  return amount.is_positive() ? gm::Status::Ok()
                              : gm::Status::InvalidArgument("amount");
}

gm::Status SetBid(gm::Rate rate) {
  return rate.is_positive() ? gm::Status::Ok()
                            : gm::Status::InvalidArgument("bid");
}

}  // namespace

int main() {
  // Checked use.
  if (!Withdraw().ok()) return 1;
  const auto balance = Balance();
  if (!balance.ok()) return 1;

  // Deliberate discard: the (void) cast with a justifying comment is the
  // sanctioned escape hatch and must stay warning-free.
  (void)Withdraw();

  // Right units in the right places.
  if (!Fund(gm::Money::Dollars(10)).ok()) return 1;
  if (!SetBid(gm::Rate::MicrosPerSec(500)).ok()) return 1;

  // Rate comparisons: ordering and ApproxEq are allowed (== is not).
  const gm::Rate a = gm::Rate::DollarsPerSec(0.1);
  const gm::Rate b = gm::Rate::MicrosPerSec(100000);
  if (a < b) return 1;
  return gm::ApproxEq(a, b) ? 0 : 1;
}
