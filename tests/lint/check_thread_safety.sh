#!/usr/bin/env bash
# Negative-compile harness for the Clang thread-safety annotations: the
# control fixture must compile under `-Wthread-safety -Werror`, and each
# ts_* negative fixture must fail — proving the capability attributes in
# common/concurrency.hpp actually reject unlocked access to guarded state
# rather than expanding to nothing.
#
# Self-skips (exit 0) when the compiler is not clang: GCC has no
# -Wthread-safety and the GM_* attribute macros expand empty there, so
# there is nothing to verify.
#
# Usage: check_thread_safety.sh <c++-compiler> <repo-src-dir>
set -u

if [ "$#" -ne 2 ]; then
  echo "usage: $0 <c++-compiler> <repo-src-dir>" >&2
  exit 2
fi

CXX="$1"
SRC="$2"
HERE="$(cd "$(dirname "$0")" && pwd)"
FIXTURES="$HERE/thread_safety"

if ! echo | "$CXX" -dM -E -x c++ - 2>/dev/null | grep -q '__clang__'; then
  echo "SKIP: $CXX is not clang; thread-safety analysis is unavailable"
  exit 0
fi

FLAGS=(-std=c++20 "-I$SRC" -fsyntax-only -Wthread-safety -Werror)

fail=0

compile() {
  "$CXX" "${FLAGS[@]}" "$1" 2>/dev/null
}

# Control must compile.
if compile "$FIXTURES/ts_control_ok.cpp"; then
  echo "PASS ts_control_ok.cpp (compiles)"
else
  echo "FAIL ts_control_ok.cpp: control fixture does not compile; harness is broken" >&2
  "$CXX" "${FLAGS[@]}" "$FIXTURES/ts_control_ok.cpp" >&2 || true
  fail=1
fi

# Every other fixture must NOT compile.
for f in "$FIXTURES"/*.cpp; do
  base="$(basename "$f")"
  [ "$base" = "ts_control_ok.cpp" ] && continue
  if compile "$f"; then
    echo "FAIL $base: expected a thread-safety error, but it compiled" >&2
    fail=1
  else
    echo "PASS $base (rejected)"
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "thread-safety negative-compile tests FAILED" >&2
  exit 1
fi
echo "thread-safety negative-compile tests passed"
