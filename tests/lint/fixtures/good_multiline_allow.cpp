// gmlint fixture: allow() directives must cover the entire statement
// they precede (or whose first lines they trail), not just one physical
// line. Every comparison here is suppressed; the file must be clean.
namespace fixture {

inline double price_dollars = 0.0;
inline double other_price_dollars = 0.0;

bool CommentAboveCoversWholeStatement() {
  // gmlint: allow(float-money-eq)
  return price_dollars ==
         other_price_dollars;
}

bool TrailingOnOperatorLine() {
  return price_dollars ==  // gmlint: allow(float-money-eq)
         other_price_dollars;
}

bool TrailingBeforeOperatorLine() {
  return price_dollars  // gmlint: allow(float-money-eq)
         == other_price_dollars;
}

}  // namespace fixture
