// gmlint fixture: must pass the unordered-iteration rule. Ordered maps
// iterate deterministically; unordered containers are fine for lookups.
#include <map>
#include <string>
#include <unordered_map>

struct Account {
  long balance_micros = 0;
};

class Ledger {
 public:
  void ChargeAll(long amount) {
    for (auto& [user, account] : accounts_) {  // std::map: sorted order
      account.balance_micros -= amount;
    }
  }

  long Lookup(const std::string& user) const {
    const auto it = cache_.find(user);  // point lookup, no iteration
    return it == cache_.end() ? 0 : it->second;
  }

 private:
  std::map<std::string, Account> accounts_;
  std::unordered_map<std::string, long> cache_;
};
