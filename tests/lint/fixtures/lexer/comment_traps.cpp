// Lexer corpus: comment-in-string and string-in-comment traps.
const char* not_a_comment = "/* still a string */ // also a string";
const char* url = "https://example.test/path";
/* block comment with "a quote" and 'a char' inside */
int after_block = 1;
// line comment with "quote" and /* opener
int after_line = 2;
/* multi-line
   block // with a line comment marker
   and a "string" */
int after_multiline = 3;
int divided = 6 / 2; /**/ int tight = 7;
