// Lexer corpus: raw strings, custom delimiters, escaped quotes and
// encoding prefixes.
const char* plain = R"(no escapes \n here ")";
const char* tricky = R"gm(contains )" and )x" inside)gm";
const char* prefixed = u8R"x(utf-8 raw)x";
const wchar_t* wide = LR"(wide raw)";
const char* escaped = "quote \" backslash \\ tab \t";
const char* two = "a" "b";
char quote_char = '\'';
char dquote_char = '"';
const char* multi = R"(line one
line two)";
int after_multi = 1;
