// Lexer corpus: line splices. The macro body spans four physical lines
// but one logical line; the spliced identifier re-joins across the
// backslash-newline.
#define GM_RETURN_IF_ERROR(expr)          \
  do {                                    \
    if (!(expr).ok()) return (expr);      \
  } while (0)

int spli\
ced = 3;

const char* s = "not \
spliced apart";

int plain_after = 4;
