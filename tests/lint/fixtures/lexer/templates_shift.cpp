// Lexer corpus: nested template closers lex as '>>' (maximal munch —
// the parser layers reinterpret), shift operators, digit separators,
// floats, hex floats and pp-number suffixes.
#include <map>
#include <string>
#include <vector>

std::map<std::string, std::vector<int>> nested;
std::vector<std::vector<std::vector<int>>> deeper;
int shifted = 1 << 4 >> 2;
long long big = 1'000'000'007LL;
double small = 1.5e-3;
double hexf = 0x1.8p3;
unsigned hex_mask = 0xFFu;
auto cmp = 1 <=> 2;
