﻿// Lexer corpus: the UTF-8 byte-order mark must be skipped, not
// lexed into the first token or reported as an error.
int first_token_after_bom = 1;
const char* text = "café";  // non-ASCII payload in a string
