// Lexer corpus: preprocessor conditionals. Directives lex as plain
// '#' + identifier tokens, and the bodies of #if 0 / #ifdef blocks
// still lex as ordinary code (gmstatic analyses all branches, it does
// not evaluate the preprocessor).
#if 0
int dead_code = 1;  // inside #if 0: still tokenised
const char* tricky = "#endif inside a string";
#endif
#ifdef GM_NEVER_DEFINED
int maybe_code = 2;
#else
int else_code = 3;
#endif
#if defined(GM_A) && \
    defined(GM_B)
int spliced_condition = 4;
#endif
int after_conditionals = 5;
