// gmlint fixture: everything the hotpath-allocation rule must NOT
// flag — arena-backed containers in tagged functions, arbitrary
// allocation in cold functions, and non-growing container calls.
#include <memory>
#include <string>
#include <vector>

namespace fixture {

struct Arena {
  char storage[4096];
};

template <typename T>
struct ArenaVector {
  explicit ArenaVector(Arena* arena) : arena_(arena) {}
  void push_back(const T&) {}
  Arena* arena_;
};

struct Entry {
  double price = 0.0;
};

class Matcher {
 public:
  // gmlint: hotpath
  void Tick() {
    scratch_.push_back(1.0);  // member ArenaVector: exempt
    ArenaVector<int> local(&arena_);
    local.push_back(3);       // local arena container: exempt
    total_ += pending_.size();  // size() is not a growth call
  }

  void Rebuild() {  // cold path: allocation is fine here
    pending_.push_back(2.0);
    auto owned = std::make_unique<Entry>();
    name_ = std::string("rebuilt");
  }

 private:
  Arena arena_;
  ArenaVector<double> scratch_{&arena_};
  std::vector<double> pending_;
  std::string name_;
  double total_ = 0.0;
};

}  // namespace fixture
