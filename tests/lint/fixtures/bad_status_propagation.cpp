// gmlint fixture: must trigger the status-propagation rule — results
// of fallible *project* callees dropped, captured-and-never-read,
// overwritten before a read, or (void)-cast without a justification.
#include "common/status.hpp"

namespace fixture {

gm::Status Flush() { return gm::Status::Ok(); }
gm::Result<int> Parse() { return 7; }
void Log(const char* message);

void DropOnFloor() {
  Flush();  // finding: Status discarded outright
  Log("ticked");
}

void CastWithoutReason() {
  (void)Flush();
  Log("cast");
}

void CaptureNeverRead() {
  auto flushed = Parse();  // finding: bound, then never looked at
  Log("captured");
}

void OverwriteBeforeRead() {
  auto st = Flush();  // finding: overwritten before anyone reads it
  st = Flush();
  if (!st.ok()) Log("late");
}

}  // namespace fixture
