// gmlint fixture: everything the lock-order rule must NOT flag —
// ascending chains, scoped release, manual Lock/Unlock pairs, and
// lambdas (whose bodies run on other threads with a fresh lock stack).
#include <functional>

#include "common/concurrency.hpp"

namespace gm {
namespace lockrank {
inline constexpr int kBus = 15;
inline constexpr int kBank = 30;
inline constexpr int kLogger = 70;
}  // namespace lockrank

class Pipeline {
 public:
  void AscendingIsFine() {
    MutexLock bus(&bus_mu_);     // kBus = 15
    MutexLock ledger(&bank_mu_);  // kBank = 30: strictly ascending
  }

  void ScopedReleaseThenLower() {
    {
      MutexLock ledger(&bank_mu_);
    }  // released at block close
    MutexLock bus(&bus_mu_);  // fresh chain, fine
  }

  void ManualPairThenLower() {
    log_mu_.Lock();
    log_mu_.Unlock();
    MutexLock bus(&bus_mu_);  // nothing held any more
  }

  void LambdaBodyHasFreshStack() {
    MutexLock ledger(&bank_mu_);
    task_ = [this] {
      MutexLock bus(&bus_mu_);  // runs on a worker, not under ledger
    };
  }

 private:
  Mutex bus_mu_{"fixture.bus", lockrank::kBus};
  Mutex bank_mu_{"fixture.ledger", lockrank::kBank};
  Mutex log_mu_{"fixture.logger", lockrank::kLogger};
  std::function<void()> task_ GM_GUARDED_BY(bank_mu_);
};

}  // namespace gm
