// gmlint fixture: must pass the nondeterminism rule. Randomness comes
// from the seeded simulation RNG, time from the kernel.
#include <cstdint>

namespace gm {
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t Next() { return state_ += 0x9e3779b97f4a7c15ULL; }

 private:
  std::uint64_t state_;
};
}  // namespace gm

std::uint64_t SeededDraw(gm::Rng& rng) { return rng.Next(); }

// Mentions in comments and strings must not trigger: std::rand,
// std::random_device, system_clock.
const char* kDoc = "never call std::rand or system_clock in simulation code";

// A suppressed use with justification is also clean:
// fixture exercising the escape hatch. gmlint: allow(nondeterminism)
long Suppressed() { return std::rand(); }
