// gmlint fixture: every construct here must trigger the nondeterminism
// rule. Not compiled — scanned by run_fixture_tests.py.
#include <chrono>
#include <cstdlib>
#include <random>

int UnseededEntropy() {
  std::random_device device;  // breaks replay
  return static_cast<int>(device());
}

int LibcRand() { return std::rand(); }

long WallClockNow() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}
