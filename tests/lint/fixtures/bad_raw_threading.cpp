// gmlint fixture: every construct here must trigger the raw-threading
// rule. Not compiled — scanned by run_fixture_tests.py.
#include <condition_variable>
#include <mutex>
#include <thread>

class UnrankedQueue {
 public:
  void Push(int value) {
    std::lock_guard<std::mutex> lock(mu_);  // bypasses MutexLock
    last_ = value;
    cv_.notify_one();
  }

  int WaitPop() {
    std::unique_lock<std::mutex> lock(mu_);  // bypasses MutexLock
    cv_.wait(lock);
    return last_;
  }

 private:
  std::mutex mu_;  // no rank, no capability annotation
  std::condition_variable cv_;  // bypasses gm::CondVar
  int last_ = 0;
};

void SpawnDetached() {
  std::thread worker([] {});  // bypasses gm::Thread join-on-destruction
  worker.detach();
}
