// gmlint fixture: must pass the raw-threading rule. The wrapped
// primitives, atomics and std::this_thread are all legal everywhere.
#include <atomic>
#include <chrono>
#include <thread>

#include "common/concurrency.hpp"

class RankedCounter {
 public:
  void Add(int delta) {
    gm::MutexLock lock(&mu_);
    value_ += delta;
    cv_.NotifyOne();
  }

  void SpinBriefly() const {
    // std::this_thread is not a raw primitive; only std::thread is.
    std::this_thread::sleep_for(std::chrono::microseconds(1));
  }

 private:
  mutable gm::Mutex mu_{"fixture.counter", gm::lockrank::kBank};
  gm::CondVar cv_;
  int value_ GM_GUARDED_BY(mu_) = 0;
  std::atomic<bool> stop_{false};  // atomics need no lock at all
};

void SpawnJoined() {
  gm::Thread worker([] {});  // joins on destruction
}
