// Fixture: everything the hotpath-map-iteration rule must NOT flag —
// map iteration in untagged (cold) functions, flat-array iteration in
// tagged functions, point lookups, and a justified suppression.
#include <map>
#include <string>
#include <vector>

namespace fixture {

std::map<std::string, double> cold_index;
std::vector<double> rates;

// Cold path: no tag, map iteration is fine here.
double ColdSum() {
  double total = 0.0;
  for (const auto& [user, weight] : cold_index) total += weight;
  return total;
}

// gmlint: hotpath
double HotSum() {
  double total = 0.0;
  for (const double rate : rates) total += rate;
  return total;
}

// gmlint: hotpath
double Lookup(const std::string& key) {
  // Point lookups stay legal; only iteration is flagged.
  const auto it = cold_index.find(key);
  return it == cold_index.end() ? 0.0 : it->second;
}

// gmlint: hotpath
double FirstCold() {
  // Justified: one-element peek, not an O(n) walk of the book.
  return cold_index.begin()->second;  // gmlint: allow(hotpath-map-iteration)
}

}  // namespace fixture
