// gmlint fixture: must pass the float-money-eq rule. Exact comparisons
// ride the integer micro-dollar grid; approximate ones use a tolerance.
#include <cmath>
#include <cstdint>

using Micros = std::int64_t;

struct Money {
  Micros micros() const { return value; }
  Micros value = 0;
};

bool SameAmount(const Money& a, const Money& b) {
  return a.micros() == b.micros();  // exact integer grid
}

bool NearPrice(double a_price, double b_price) {
  return std::fabs(a_price - b_price) < 1e-9;  // tolerance, not ==
}

bool SpanMatches(std::uint64_t refund_span, std::uint64_t id) {
  return refund_span == id;  // trace ids, not money
}

bool CountsEqual(int price_count, int other) {
  return price_count == other;  // a size, not an amount
}
