// gmlint fixture: must pass include-layering under the federation
// sublayer's rules. Everything here is a sanctioned dependency: the bank
// layer it shards, the durability and telemetry layers it wires through,
// and the crypto layer backing settlement ids and signed reports.
//
// gmlint: layer(federation)
#include <map>
#include <string>

#include "bank/bank.hpp"
#include "common/status.hpp"
#include "common/units.hpp"
#include "crypto/token.hpp"
#include "store/store.hpp"
#include "telemetry/metrics.hpp"

namespace gm::bank::federation {

std::string DescribeLayer() { return "federation sits beside the bank"; }

}  // namespace gm::bank::federation
