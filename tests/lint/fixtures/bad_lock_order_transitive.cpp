// gmlint fixture: must trigger the lock-order rule through a depth-2
// call chain — the inversion is invisible in any single function and
// only appears once acquisition summaries flow bottom-up through the
// call graph. Carries its own rank DAG so it is self-contained under
// --no-path-filter.
#include "common/concurrency.hpp"

namespace gm {
namespace lockrank {
inline constexpr int kBus = 15;
inline constexpr int kBank = 30;
}  // namespace lockrank

// Leaf: acquires the bus rank. On its own this is fine.
class Publisher {
 public:
  void Publish() { MutexLock lock(&bus_mu_); }

 private:
  Mutex bus_mu_{"transitive.bus", lockrank::kBus};
};

// Middle layer: acquires nothing itself, only forwards. The summary
// must carry Publisher's acquisition up through this hop.
class Ticker {
 public:
  void Emit() { publisher_.Publish(); }

 private:
  Publisher publisher_;
};

class Settlement {
 public:
  void Settle() {
    MutexLock ledger(&bank_mu_);  // kBank = 30
    ticker_.Emit();               // → Publish() → kBus = 15: inversion
  }

 private:
  Mutex bank_mu_{"transitive.ledger", lockrank::kBank};
  Ticker ticker_;
};

}  // namespace gm
