// gmlint fixture: suppression must stay scoped — an allow() for a
// different rule, or placed after the statement, covers nothing.
namespace fixture {

inline double price_dollars = 0.0;
inline double other_price_dollars = 0.0;

bool WrongRuleDoesNotCover() {
  // gmlint: allow(nondeterminism)
  return price_dollars ==
         other_price_dollars;
}

bool AllowBelowDoesNotCover() {
  return price_dollars ==
         other_price_dollars;
  // gmlint: allow(float-money-eq)
}

}  // namespace fixture
