// gmlint fixture: must pass the money-conservation rule — every
// control-flow outcome settles the hold, exits guarded on the open's
// own result are exempt, and a justified sink is annotated.
#include "common/status.hpp"

namespace fixture {

class Bank {
 public:
  gm::Status PrepareDebit(const char* account);
  gm::Status Refund(const char* account);
  gm::Status Validate(const char* account);
};

gm::Status SettleBothPaths(Bank& bank, bool fast) {
  GM_RETURN_IF_ERROR(bank.Validate("alice"));  // exits before the open
  GM_RETURN_IF_ERROR(bank.PrepareDebit("alice"));
  if (fast) {
    GM_RETURN_IF_ERROR(bank.Refund("alice"));
    return gm::Status::Ok();
  }
  return bank.Refund("alice");
}

gm::Status GuardedOpen(Bank& bank) {
  const auto hold = bank.PrepareDebit("bob");
  if (!hold.ok()) {
    return hold;  // the failed open holds no money: exempt exit
  }
  return bank.Refund("bob");
}

// The hold funds a long-lived session; its owner settles at teardown.
// gmlint: money-sink(hold outlives the call; session owner settles it)
gm::Status OpenForSession(Bank& bank) {
  GM_RETURN_IF_ERROR(bank.PrepareDebit("carol"));
  return gm::Status::Ok();
}

gm::Status SettleOnFailure(Bank& bank) {
  const auto hold = bank.PrepareDebit("dave");
  if (!hold.ok()) {
    return hold;
  }
  const auto used = bank.Validate("dave");
  if (!used.ok()) {
    GM_RETURN_IF_ERROR(bank.Refund("dave"));
    return used;
  }
  return bank.Refund("dave");
}

}  // namespace fixture
