// gmlint fixture: must trigger the hotpath-allocation rule — heap
// allocation and container growth inside a hotpath-tagged function.
#include <memory>
#include <string>
#include <vector>

namespace fixture {

struct Entry {
  double price = 0.0;
};

class Matcher {
 public:
  // gmlint: hotpath
  void Tick() {
    Entry* entry = new Entry();              // finding: operator new
    auto owned = std::make_unique<Entry>();  // finding: make_unique
    std::string label("bid-");               // finding: std::string ctor
    pending_.push_back(entry->price);        // finding: growth call
    delete entry;
  }

 private:
  std::vector<double> pending_;
};

}  // namespace fixture
