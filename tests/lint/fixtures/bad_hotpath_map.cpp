// Fixture: std::map iteration inside '// gmlint: hotpath' functions.
// Every loop here walks a node-based ordered map on what the tag
// declares to be per-tick market code — each must be flagged.
#include <map>
#include <string>

namespace fixture {

std::map<std::string, double> weights;

// gmlint: hotpath
double SumWeights() {
  double total = 0.0;
  for (const auto& [user, weight] : weights) {
    total += weight;
  }
  return total;
}

// gmlint: hotpath
double FirstWeight() {
  const auto it = weights.begin();
  return it->second;
}

// gmlint: hotpath
int SumTemporaryMap(const std::map<int, int>& source) {
  int total = 0;
  for (const auto& [key, value] : std::map<int, int>(source)) total += value;
  return total;
}

}  // namespace fixture
