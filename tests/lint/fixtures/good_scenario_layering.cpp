// gmlint fixture: must pass include-layering under the scenario layer's
// rules. The scenario engine may drive the system through the core/
// facade and the host/ parallel runtime, model load with math/, and read
// telemetry — all sanctioned dependencies.
//
// gmlint: layer(scenario)
#include <string>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/grid_market.hpp"
#include "host/parallel_runner.hpp"
#include "math/distributions.hpp"
#include "sim/time.hpp"
#include "telemetry/metrics.hpp"

namespace gm::scenario {

std::string DescribeLayer() {
  return "scenarios attack the market through its public surfaces";
}

}  // namespace gm::scenario
