// gmlint fixture: must pass include-layering under market/'s rules.
// Everything here is a sanctioned downward (or sideways) dependency, and
// system includes are out of scope entirely.
//
// gmlint: layer(market)
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "host/host.hpp"       // market drives hosts: allowed
#include "sim/kernel.hpp"
#include "telemetry/metrics.hpp"

namespace gm::market {

std::string DescribeLayer() { return "market sits below grid"; }

}  // namespace gm::market
