// gmlint fixture: checked under market/'s layering rules via the
// directive below; both grid/ includes must trigger include-layering.
// Not compiled — scanned by run_fixture_tests.py.
//
// gmlint: layer(market)
#include <string>

#include "common/status.hpp"     // fine: market may use common
#include "grid/broker.hpp"       // market reaching up into the broker
#include "grid/job.hpp"          // same violation, second witness

namespace gm::market {

std::string DescribeBroker() { return "market must not know the broker"; }

}  // namespace gm::market
