// gmlint fixture: must trigger the guarded-field rule — mutable members
// of a lock-owning class with no GM_GUARDED_BY / GM_PT_GUARDED_BY.
#include <string>
#include <vector>

#include "common/concurrency.hpp"

namespace fixture {

class Ledger {
 public:
  void Deposit(long amount_micros) {
    gm::MutexLock lock(&mu_);
    balance_micros_ += amount_micros;
  }

 private:
  mutable gm::Mutex mu_{"fixture.ledger", gm::lockrank::kBank};
  long balance_micros_ = 0;        // unguarded: finding
  std::vector<long> history_;      // unguarded: finding
  std::string owner_;              // unguarded: finding
};

}  // namespace fixture
