// gmlint fixture: must trigger the unordered-iteration rule. Modeled on
// an auctioneer-style ledger mutation driven by hash order.
#include <string>
#include <unordered_map>
#include <unordered_set>

struct Account {
  long balance_micros = 0;
};

class Ledger {
 public:
  void ChargeAll(long amount) {
    for (auto& [user, account] : accounts_) {  // hash order!
      account.balance_micros -= amount;
    }
  }

  void DropMarked() {
    for (const std::string& user : marked_) {  // hash order!
      accounts_.erase(user);
    }
  }

 private:
  std::unordered_map<std::string, Account> accounts_;
  std::unordered_set<std::string> marked_;
};
