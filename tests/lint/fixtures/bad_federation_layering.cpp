// gmlint fixture: checked under the federation sublayer's rules via the
// directive below; the federation may build on bank/store/telemetry but
// must never reach up into the facade (core/) or broker (grid/) layers.
// Not compiled — scanned by run_fixture_tests.py.
//
// gmlint: layer(federation)
#include <string>

#include "bank/bank.hpp"          // fine: federation is a bank sublayer
#include "core/grid_market.hpp"   // federation reaching up into the facade
#include "grid/broker.hpp"        // same violation, second witness

namespace gm::bank::federation {

std::string DescribeFacade() {
  return "the federation must not know the market facade";
}

}  // namespace gm::bank::federation
