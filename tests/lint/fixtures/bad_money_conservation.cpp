// gmlint fixture: must trigger the money-conservation rule — escrow
// opened through a bank surface and then leaked on an early exit, a
// macro exit, or at the end of the function.
#include "common/status.hpp"

namespace fixture {

class Bank {
 public:
  gm::Status PrepareDebit(const char* account);
  gm::Status Refund(const char* account);
  gm::Status Validate(const char* account);
};

gm::Status LeakOnMacroExit(Bank& bank) {
  GM_RETURN_IF_ERROR(bank.PrepareDebit("alice"));
  GM_RETURN_IF_ERROR(bank.Validate("alice"));  // finding: exits with the hold open
  return bank.Refund("alice");
}

gm::Status LeakAtEnd(Bank& bank) {
  GM_RETURN_IF_ERROR(bank.PrepareDebit("bob"));
  return gm::Status::Ok();  // finding: hold never settled
}

gm::Status LeakOnFastPath(Bank& bank, bool fast) {
  GM_RETURN_IF_ERROR(bank.PrepareDebit("carol"));
  if (fast) {
    return gm::Status::Ok();  // finding: fast path skips the refund
  }
  return bank.Refund("carol");
}

}  // namespace fixture
