// gmlint fixture: everything the guarded-field rule must NOT flag —
// annotated members, const / static / atomic members, the concurrency
// primitives themselves, internally-synchronized member types, and
// classes that own no lock at all.
#include <atomic>
#include <memory>
#include <string>

#include "common/concurrency.hpp"

namespace fixture {

// Lock-owning type: members of other classes typed on it are exempt.
class InternallySynced {
 public:
  void Touch() { gm::MutexLock lock(&mu_); }

 private:
  mutable gm::Mutex mu_{"fixture.synced", gm::lockrank::kStore};
};

class Ledger {
 private:
  mutable gm::Mutex mu_{"fixture.ledger", gm::lockrank::kBank};
  long balance_micros_ GM_GUARDED_BY(mu_) = 0;
  std::unique_ptr<long> cache_ GM_PT_GUARDED_BY(mu_);
  const long limit_micros_ = 0;      // const: exempt
  static int instances_;             // static: exempt
  std::atomic<bool> closed_{false};  // atomic: exempt
  gm::CondVar cv_;                   // sync primitive: exempt
  InternallySynced store_;           // internally synchronized: exempt
};

// No mutex anywhere: plain structs need no annotations.
struct Quote {
  double price_dollars = 0.0;
  std::string user;
};

}  // namespace fixture
