// gmlint fixture: must trigger the lock-order rule. Carries its own
// copy of the rank DAG (mirroring src/common/concurrency.hpp) so the
// fixture is self-contained under --no-path-filter.
#include "common/concurrency.hpp"

namespace gm {
namespace lockrank {
inline constexpr int kBus = 15;
inline constexpr int kAuctioneer = 25;
inline constexpr int kBank = 30;
}  // namespace lockrank

// Internally-locked member class: its Record() acquires the bus rank,
// which the call-graph expansion must see through Market::book_.
class PriceBook {
 public:
  void Record() { MutexLock lock(&mu_); }

 private:
  Mutex mu_{"fixture.price_book", lockrank::kBus};
};

class Market {
 public:
  void TickWrongOrder() {
    MutexLock ledger(&bank_mu_);  // kBank = 30
    MutexLock bus(&bus_mu_);      // kBus = 15: direct inversion
  }

  void TickEqualRank() {
    MutexLock a(&bank_mu_);
    MutexLock b(&reserve_mu_);  // equal rank: inversion by rule
  }

  void TickThroughCallee() {
    MutexLock ledger(&bank_mu_);  // kBank = 30
    book_.Record();               // acquires kBus inside the callee
  }

 private:
  Mutex bank_mu_{"fixture.ledger", lockrank::kBank};
  Mutex reserve_mu_{"fixture.reserve", lockrank::kBank};
  Mutex bus_mu_{"fixture.bus", lockrank::kBus};
  PriceBook book_;
};

}  // namespace gm
