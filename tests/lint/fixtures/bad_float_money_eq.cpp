// gmlint fixture: must trigger the float-money-eq rule. Floating-point
// money compared with raw == / != loses cents to rounding.
struct Quote {
  double price = 0.0;
  double budget_dollars = 0.0;
};

bool SamePrice(const Quote& a, const Quote& b) {
  return a.price == b.price;  // bad: raw == on dollars
}

bool BudgetDiffers(const Quote& a, const Quote& b) {
  return a.budget_dollars != b.budget_dollars;  // bad: raw !=
}

struct Money {
  double dollars() const { return value; }
  double value = 0.0;
};

bool Broke(const Money& m) {
  return m.dollars() == 0.0;  // bad: accessor returns floating dollars
}
