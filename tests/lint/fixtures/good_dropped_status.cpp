// gmlint fixture: everything the dropped-status rule must NOT flag —
// checked locals, propagated locals, and member calls that merely have
// 'Status' in their name.
#include "common/status.hpp"

namespace fixture {

struct Connection {
  int Status() const { return 0; }
};

gm::Status Flush();
gm::Result<int> Parse();
void Log(const gm::Status& status);

void Checked() {
  gm::Status flush_error = Flush();
  if (!flush_error.ok()) Log(flush_error);
}

gm::Status Propagated() {
  gm::Status status = Flush();
  return status;
}

int UsedValue() {
  gm::Result<int> parsed = Parse();
  return parsed.ok() ? *parsed : 0;
}

int MemberCallNotADecl(const Connection& connection) {
  return connection.Status();  // member access, not a binding
}

}  // namespace fixture
