// gmlint fixture: must pass the status-propagation rule — every
// fallible result is returned, checked, consumed by a GM_* macro, or
// (void)-cast with a justifying comment.
#include "common/status.hpp"

namespace fixture {

gm::Status Flush() { return gm::Status::Ok(); }
gm::Result<int> Parse() { return 7; }
void Log(const char* message);

gm::Status Propagate() {
  return Flush();  // handed straight to the caller
}

gm::Status Checked() {
  const auto st = Flush();
  if (!st.ok()) return st;
  return gm::Status::Ok();
}

gm::Status ThroughMacros() {
  GM_RETURN_IF_ERROR(Flush());
  GM_ASSIGN_OR_RETURN(const int parsed, Parse());
  Log(parsed > 0 ? "positive" : "other");
  return gm::Status::Ok();
}

void Justified() {
  // Best-effort flush on shutdown; a failure here is harmless.
  (void)Flush();
}

void ReadThroughMember() {
  auto parsed = Parse();
  if (parsed.ok()) Log("parsed");
}

}  // namespace fixture
