// gmlint fixture: checked under the scenario layer's rules via the
// directive below. Scenarios drive the economy through the core/ facade
// and host/ runtime; reaching directly into market/ or bank/ internals
// would let an adversary model bypass the surfaces it claims to attack.
// Not compiled — scanned by run_fixture_tests.py.
//
// gmlint: layer(scenario)
#include <string>

#include "core/grid_market.hpp"          // fine: the sanctioned facade
#include "market/auctioneer.hpp"         // market internals, forbidden
#include "bank/federation/router.hpp"    // bank internals, forbidden

namespace gm::scenario {

std::string DescribeViolation() {
  return "the scenario layer must not see market or bank internals";
}

}  // namespace gm::scenario
