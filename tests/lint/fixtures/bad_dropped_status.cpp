// gmlint fixture: must trigger the dropped-status rule — Status /
// Result locals that are bound and then never read again.
#include "common/status.hpp"

namespace fixture {

gm::Status Flush();
gm::Result<int> Parse();
void Log(const char* message);

void Tick() {
  gm::Status flush_error = Flush();  // finding: never read afterwards
  Log("ticked");
}

void Load() {
  gm::Result<int> parsed = Parse();  // finding: never read afterwards
  Log("loaded");
}

}  // namespace fixture
