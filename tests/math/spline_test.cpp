#include "math/spline.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "math/stats.hpp"

namespace gm::math {
namespace {

TEST(CubicSplineTest, PassesThroughKnots) {
  const std::vector<double> x{0.0, 1.0, 2.5, 4.0};
  const std::vector<double> y{1.0, 3.0, -2.0, 0.5};
  const auto s = CubicSpline::Interpolate(x, y);
  ASSERT_TRUE(s.ok());
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(s->Evaluate(x[i]), y[i], 1e-12);
}

TEST(CubicSplineTest, TwoPointsIsLinear) {
  const auto s = CubicSpline::Interpolate({0.0, 2.0}, {1.0, 5.0});
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s->Evaluate(1.0), 3.0, 1e-12);
  EXPECT_NEAR(s->Derivative(1.0), 2.0, 1e-12);
}

TEST(CubicSplineTest, ReproducesLinearFunctionExactly) {
  std::vector<double> x, y;
  for (int i = 0; i <= 10; ++i) {
    x.push_back(i * 0.5);
    y.push_back(2.0 * x.back() - 1.0);
  }
  const auto s = CubicSpline::Interpolate(x, y);
  ASSERT_TRUE(s.ok());
  for (double t = 0.0; t <= 5.0; t += 0.113)
    EXPECT_NEAR(s->Evaluate(t), 2.0 * t - 1.0, 1e-10);
}

TEST(CubicSplineTest, ApproximatesSmoothFunction) {
  std::vector<double> x, y;
  for (int i = 0; i <= 40; ++i) {
    x.push_back(i * 0.1);
    y.push_back(std::sin(x.back()));
  }
  const auto s = CubicSpline::Interpolate(x, y);
  ASSERT_TRUE(s.ok());
  // Natural boundary conditions cost accuracy near the ends; check the
  // interior tightly and the boundary region loosely.
  for (double t = 0.5; t < 3.5; t += 0.07)
    EXPECT_NEAR(s->Evaluate(t), std::sin(t), 1e-4);
  for (double t = 0.05; t < 0.5; t += 0.07)
    EXPECT_NEAR(s->Evaluate(t), std::sin(t), 5e-3);
}

TEST(CubicSplineTest, DerivativeApproximatesCosine) {
  std::vector<double> x, y;
  for (int i = 0; i <= 60; ++i) {
    x.push_back(i * 0.1);
    y.push_back(std::sin(x.back()));
  }
  const auto s = CubicSpline::Interpolate(x, y);
  ASSERT_TRUE(s.ok());
  for (double t = 0.5; t < 5.5; t += 0.17)
    EXPECT_NEAR(s->Derivative(t), std::cos(t), 1e-3);
}

TEST(CubicSplineTest, LinearExtrapolationOutsideRange) {
  const auto s = CubicSpline::Interpolate({0.0, 1.0, 2.0}, {0.0, 1.0, 2.0});
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s->Evaluate(-1.0), -1.0, 1e-10);
  EXPECT_NEAR(s->Evaluate(3.0), 3.0, 1e-10);
}

TEST(CubicSplineTest, RejectsBadInput) {
  EXPECT_FALSE(CubicSpline::Interpolate({0.0, 0.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(CubicSpline::Interpolate({1.0, 0.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(CubicSpline::Interpolate({0.0}, {1.0}).ok());
  EXPECT_FALSE(CubicSpline::Interpolate({0.0, 1.0}, {1.0}).ok());
}

TEST(SmoothingSplineTest, LambdaZeroInterpolates) {
  const std::vector<double> x{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y{0.0, 2.0, 1.0, 3.0};
  const auto s = SmoothingSpline::Fit(x, y, 0.0);
  ASSERT_TRUE(s.ok());
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(s->Evaluate(x[i]), y[i], 1e-10);
}

TEST(SmoothingSplineTest, LargeLambdaApproachesLeastSquaresLine) {
  // Noisy samples of y = 2x + 1.
  Rng rng(21);
  std::vector<double> x, y;
  for (int i = 0; i <= 30; ++i) {
    x.push_back(i * 0.2);
    y.push_back(2.0 * x.back() + 1.0 + rng.Uniform(-0.3, 0.3));
  }
  const auto s = SmoothingSpline::Fit(x, y, 1e9);
  ASSERT_TRUE(s.ok());
  // Compare against the closed-form least-squares line.
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
  }
  const double slope = sxy / sxx;
  const double intercept = my - slope * mx;
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(s->fitted()[i], slope * x[i] + intercept, 1e-3);
}

TEST(SmoothingSplineTest, IntermediateLambdaReducesNoiseVariance) {
  Rng rng(5);
  std::vector<double> x, y, truth;
  for (int i = 0; i <= 200; ++i) {
    x.push_back(i * 0.05);
    truth.push_back(std::sin(x.back()));
    y.push_back(truth.back() + rng.Uniform(-0.4, 0.4));
  }
  // The right lambda is scale dependent; a well-chosen value should at
  // least halve the squared error of the noisy samples.
  double err_raw = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    err_raw += (y[i] - truth[i]) * (y[i] - truth[i]);
  double best_err = err_raw;
  for (double lambda : {1e-4, 1e-3, 1e-2, 1e-1}) {
    const auto s = SmoothingSpline::Fit(x, y, lambda);
    ASSERT_TRUE(s.ok());
    double err_smooth = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
      err_smooth += (s->fitted()[i] - truth[i]) * (s->fitted()[i] - truth[i]);
    best_err = std::min(best_err, err_smooth);
  }
  EXPECT_LT(best_err, 0.5 * err_raw);
}

TEST(SmoothingSplineTest, MonotoneInLambda) {
  // Penalized roughness should decrease as lambda grows.
  Rng rng(13);
  std::vector<double> x, y;
  for (int i = 0; i <= 50; ++i) {
    x.push_back(static_cast<double>(i));
    y.push_back(rng.Uniform(0.0, 1.0));
  }
  auto roughness = [&](double lambda) {
    const auto s = SmoothingSpline::Fit(x, y, lambda);
    EXPECT_TRUE(s.ok());
    double sum = 0.0;
    const auto& f = s->fitted();
    for (std::size_t i = 2; i < f.size(); ++i) {
      const double second = f[i] - 2.0 * f[i - 1] + f[i - 2];
      sum += second * second;
    }
    return sum;
  };
  const double r0 = roughness(0.0);
  const double r1 = roughness(1.0);
  const double r2 = roughness(100.0);
  EXPECT_GT(r0, r1);
  EXPECT_GT(r1, r2);
}

TEST(SmoothingSplineTest, NegativeLambdaRejected) {
  EXPECT_FALSE(
      SmoothingSpline::Fit({0.0, 1.0, 2.0}, {0.0, 1.0, 0.0}, -1.0).ok());
}

TEST(SmoothingSplineTest, SmoothSeriesConvenience) {
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) y.push_back(i % 2 == 0 ? 1.0 : 0.0);
  const auto smoothed = SmoothingSpline::SmoothSeries(y, 50.0);
  ASSERT_TRUE(smoothed.ok());
  ASSERT_EQ(smoothed->size(), y.size());
  // Alternating series smooths toward 0.5.
  for (std::size_t i = 5; i + 5 < smoothed->size(); ++i)
    EXPECT_NEAR((*smoothed)[i], 0.5, 0.1);
}

}  // namespace
}  // namespace gm::math
