#include "math/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace gm::math {
namespace {

TEST(RunningMomentsTest, EmptyIsZero) {
  RunningMoments m;
  EXPECT_EQ(m.count(), 0);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
}

TEST(RunningMomentsTest, SingleValue) {
  RunningMoments m;
  m.Add(4.2);
  EXPECT_EQ(m.count(), 1);
  EXPECT_DOUBLE_EQ(m.mean(), 4.2);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
  EXPECT_DOUBLE_EQ(m.min(), 4.2);
  EXPECT_DOUBLE_EQ(m.max(), 4.2);
}

TEST(RunningMomentsTest, KnownSmallSample) {
  RunningMoments m;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.Add(v);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_DOUBLE_EQ(m.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(m.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(m.min(), 2.0);
  EXPECT_DOUBLE_EQ(m.max(), 9.0);
}

TEST(RunningMomentsTest, SampleVarianceUsesNMinusOne) {
  RunningMoments m;
  for (double v : {1.0, 2.0, 3.0}) m.Add(v);
  EXPECT_DOUBLE_EQ(m.variance(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.sample_variance(), 1.0);
}

TEST(RunningMomentsTest, SymmetricSampleHasZeroSkew) {
  RunningMoments m;
  for (double v : {-2.0, -1.0, 0.0, 1.0, 2.0}) m.Add(v);
  EXPECT_NEAR(m.skewness(), 0.0, 1e-12);
}

TEST(RunningMomentsTest, RightSkewedSamplePositiveSkew) {
  RunningMoments m;
  for (double v : {1.0, 1.0, 1.0, 1.0, 10.0}) m.Add(v);
  EXPECT_GT(m.skewness(), 1.0);
}

TEST(RunningMomentsTest, NormalSampleMomentsMatchTheory) {
  Rng rng(42);
  RunningMoments m;
  // Sum of 12 uniforms - 6 is approximately N(0,1) — good enough to test
  // that skewness ~ 0 and excess kurtosis ~ 0 at n = 200k.
  for (int i = 0; i < 200000; ++i) {
    double sum = 0.0;
    for (int j = 0; j < 12; ++j) sum += rng.NextDouble();
    m.Add(sum - 6.0);
  }
  EXPECT_NEAR(m.mean(), 0.0, 0.01);
  EXPECT_NEAR(m.variance(), 1.0, 0.02);
  EXPECT_NEAR(m.skewness(), 0.0, 0.03);
  EXPECT_NEAR(m.kurtosis(), 0.0, 0.1);
}

TEST(RunningMomentsTest, ConstantSeriesHasZeroHigherMoments) {
  RunningMoments m;
  for (int i = 0; i < 10; ++i) m.Add(3.0);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
  EXPECT_DOUBLE_EQ(m.skewness(), 0.0);
  EXPECT_DOUBLE_EQ(m.kurtosis(), 0.0);
}

TEST(RunningMomentsTest, MergeMatchesSequential) {
  Rng rng(7);
  RunningMoments all;
  RunningMoments a;
  RunningMoments b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-5.0, 10.0);
    all.Add(v);
    (i < 400 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_NEAR(a.skewness(), all.skewness(), 1e-9);
  EXPECT_NEAR(a.kurtosis(), all.kurtosis(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningMomentsTest, MergeWithEmpty) {
  RunningMoments a;
  a.Add(1.0);
  a.Add(2.0);
  RunningMoments empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(StatsTest, MeanVarianceCovariance) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b{2.0, 4.0, 6.0, 8.0};
  EXPECT_DOUBLE_EQ(Mean(a), 2.5);
  EXPECT_NEAR(Variance(a), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(Covariance(a, b), 2.0 * Variance(a), 1e-12);
  EXPECT_NEAR(Covariance(a, a), Variance(a), 1e-12);
}

TEST(StatsTest, CovarianceOfAntitheticSeriesIsNegative) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{3.0, 2.0, 1.0};
  EXPECT_LT(Covariance(a, b), 0.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0 / 3.0), 2.0);
}

TEST(StatsTest, QuantileUnsortedInput) {
  std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
}

TEST(StatsTest, SummarizeBasics) {
  const Summary s = Summarize({1.0, 2.0, 3.0, 4.0, 100.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 22.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_GT(s.stddev, 0.0);
}

TEST(StatsTest, SummarizeEmpty) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

}  // namespace
}  // namespace gm::math
