#include "math/tridiag.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "math/matrix.hpp"

namespace gm::math {
namespace {

TEST(TridiagonalTest, SolvesKnownSystem) {
  // [2 1 0][x0]   [4]
  // [1 2 1][x1] = [8]
  // [0 1 2][x2]   [8]
  const auto x = SolveTridiagonal({1.0, 1.0}, {2.0, 2.0, 2.0}, {1.0, 1.0},
                                  {4.0, 8.0, 8.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
  EXPECT_NEAR((*x)[2], 3.0, 1e-12);
}

TEST(TridiagonalTest, SizeOneSystem) {
  const auto x = SolveTridiagonal({}, {4.0}, {}, {8.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 2.0, 1e-12);
}

TEST(TridiagonalTest, EmptySystem) {
  const auto x = SolveTridiagonal({}, {}, {}, {});
  ASSERT_TRUE(x.ok());
  EXPECT_TRUE(x->empty());
}

TEST(TridiagonalTest, ZeroPivotFails) {
  EXPECT_FALSE(SolveTridiagonal({}, {0.0}, {}, {1.0}).ok());
}

TEST(TridiagonalTest, MatchesDenseSolve) {
  Rng rng(3);
  const std::size_t n = 12;
  std::vector<double> lower(n - 1), diag(n), upper(n - 1), rhs(n);
  Matrix dense(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    diag[i] = rng.Uniform(4.0, 8.0);
    dense(i, i) = diag[i];
    rhs[i] = rng.Uniform(-3.0, 3.0);
    if (i + 1 < n) {
      lower[i] = rng.Uniform(-1.0, 1.0);
      upper[i] = rng.Uniform(-1.0, 1.0);
      dense(i + 1, i) = lower[i];
      dense(i, i + 1) = upper[i];
    }
  }
  const auto banded = SolveTridiagonal(lower, diag, upper, rhs);
  const auto reference = SolveLinear(dense, rhs);
  ASSERT_TRUE(banded.ok());
  ASSERT_TRUE(reference.ok());
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR((*banded)[i], (*reference)[i], 1e-10);
}

TEST(BandedSpdTest, AccessAndMultiply) {
  BandedSpd a(4, 1);
  for (std::size_t i = 0; i < 4; ++i) a.at(i, 0) = 2.0;
  for (std::size_t i = 0; i < 3; ++i) a.at(i, 1) = 1.0;
  const std::vector<double> y = a.Multiply({1.0, 1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 4.0);
  EXPECT_DOUBLE_EQ(y[2], 4.0);
  EXPECT_DOUBLE_EQ(y[3], 3.0);
}

TEST(BandedSpdTest, SolveTridiagonalCase) {
  BandedSpd a(3, 1);
  for (std::size_t i = 0; i < 3; ++i) a.at(i, 0) = 2.0;
  for (std::size_t i = 0; i < 2; ++i) a.at(i, 1) = 1.0;
  const auto x = a.Solve({4.0, 8.0, 8.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
  EXPECT_NEAR((*x)[2], 3.0, 1e-12);
}

TEST(BandedSpdTest, PentadiagonalMatchesDense) {
  Rng rng(11);
  const std::size_t n = 15;
  BandedSpd a(n, 2);
  Matrix dense(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a.at(i, 0) = rng.Uniform(8.0, 12.0);
    dense(i, i) = a.at(i, 0);
    for (std::size_t k = 1; k <= 2 && i + k < n; ++k) {
      a.at(i, k) = rng.Uniform(-1.0, 1.0);
      dense(i, i + k) = a.at(i, k);
      dense(i + k, i) = a.at(i, k);
    }
  }
  std::vector<double> rhs(n);
  for (auto& v : rhs) v = rng.Uniform(-5.0, 5.0);
  const auto banded = a.Solve(rhs);
  const auto reference = SolveLinear(dense, rhs);
  ASSERT_TRUE(banded.ok());
  ASSERT_TRUE(reference.ok());
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR((*banded)[i], (*reference)[i], 1e-9);
}

TEST(BandedSpdTest, SolveVerifiedByMultiply) {
  BandedSpd a(5, 2);
  for (std::size_t i = 0; i < 5; ++i) a.at(i, 0) = 6.0;
  for (std::size_t i = 0; i < 4; ++i) a.at(i, 1) = -1.0;
  for (std::size_t i = 0; i < 3; ++i) a.at(i, 2) = 0.5;
  const std::vector<double> rhs{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto x = a.Solve(rhs);
  ASSERT_TRUE(x.ok());
  const std::vector<double> back = a.Multiply(*x);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(back[i], rhs[i], 1e-11);
}

TEST(BandedSpdTest, NotSpdFails) {
  BandedSpd a(2, 1);
  a.at(0, 0) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(0, 1) = 2.0;  // off-diagonal dominates -> indefinite
  EXPECT_FALSE(a.Solve({1.0, 1.0}).ok());
}

}  // namespace
}  // namespace gm::math
