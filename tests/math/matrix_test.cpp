#include "math/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace gm::math {
namespace {

TEST(VectorOpsTest, DotNormAddSubtractScale) {
  const Vector a{1.0, 2.0, 3.0};
  const Vector b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(Norm2({3.0, 4.0}), 5.0);
  EXPECT_EQ(Add(a, b), (Vector{5.0, 7.0, 9.0}));
  EXPECT_EQ(Subtract(b, a), (Vector{3.0, 3.0, 3.0}));
  EXPECT_EQ(Scale(a, 2.0), (Vector{2.0, 4.0, 6.0}));
}

TEST(MatrixTest, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(MatrixTest, InitializerList) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(MatrixTest, IdentityAndDiagonal) {
  const Matrix i = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
  const Matrix d = Matrix::Diagonal({2.0, 3.0});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(MatrixTest, Transpose) {
  const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, Arithmetic) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(1, 1), 12.0);
  const Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(0, 0), 4.0);
  const Matrix prod = a * b;
  EXPECT_DOUBLE_EQ(prod(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(prod(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(prod(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(prod(1, 1), 50.0);
  const Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
}

TEST(MatrixTest, MatVec) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Vector v = a * Vector{1.0, 1.0};
  EXPECT_EQ(v, (Vector{3.0, 7.0}));
}

TEST(MatrixTest, IdentityIsMultiplicativeNeutral) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_TRUE((a * Matrix::Identity(2)).ApproxEquals(a, 1e-15));
  EXPECT_TRUE((Matrix::Identity(2) * a).ApproxEquals(a, 1e-15));
}

TEST(LuTest, SolveKnownSystem) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const auto x = SolveLinear(a, {5.0, 10.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(LuTest, SolveRequiresPivoting) {
  // Zero on the diagonal forces a row swap.
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const auto x = SolveLinear(a, {2.0, 3.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(LuTest, SingularMatrixFails) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_FALSE(SolveLinear(a, {1.0, 2.0}).ok());
  EXPECT_FALSE(Invert(a).ok());
}

TEST(LuTest, InverseTimesOriginalIsIdentity) {
  Rng rng(99);
  Matrix a(5, 5);
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 5; ++c) a(r, c) = rng.Uniform(-2.0, 2.0);
  // Diagonal dominance guarantees invertibility.
  for (std::size_t i = 0; i < 5; ++i) a(i, i) += 5.0;
  const auto inv = Invert(a);
  ASSERT_TRUE(inv.ok());
  EXPECT_TRUE((a * *inv).ApproxEquals(Matrix::Identity(5), 1e-10));
  EXPECT_TRUE((*inv * a).ApproxEquals(Matrix::Identity(5), 1e-10));
}

TEST(LuTest, DeterminantKnownValues) {
  const auto lu1 = LuDecomposition::Compute({{3.0}});
  ASSERT_TRUE(lu1.ok());
  EXPECT_NEAR(lu1->Determinant(), 3.0, 1e-12);

  const auto lu2 = LuDecomposition::Compute({{1.0, 2.0}, {3.0, 4.0}});
  ASSERT_TRUE(lu2.ok());
  EXPECT_NEAR(lu2->Determinant(), -2.0, 1e-12);

  // Permutation matrix has determinant -1.
  const auto lu3 = LuDecomposition::Compute({{0.0, 1.0}, {1.0, 0.0}});
  ASSERT_TRUE(lu3.ok());
  EXPECT_NEAR(lu3->Determinant(), -1.0, 1e-12);
}

TEST(LuTest, SolveMatrixRhs) {
  const Matrix a{{2.0, 0.0}, {0.0, 4.0}};
  const auto lu = LuDecomposition::Compute(a);
  ASSERT_TRUE(lu.ok());
  const Matrix x = lu->Solve(Matrix::Identity(2));
  EXPECT_NEAR(x(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(x(1, 1), 0.25, 1e-12);
}

TEST(CholeskyTest, FactorKnownMatrix) {
  const Matrix a{{4.0, 2.0}, {2.0, 5.0}};
  const auto l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR((*l)(0, 0), 2.0, 1e-12);
  EXPECT_NEAR((*l)(1, 0), 1.0, 1e-12);
  EXPECT_NEAR((*l)(1, 1), 2.0, 1e-12);
  EXPECT_TRUE((*l * l->Transpose()).ApproxEquals(a, 1e-12));
}

TEST(CholeskyTest, RejectsIndefinite) {
  const Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3 and -1
  EXPECT_FALSE(CholeskyFactor(a).ok());
}

TEST(CholeskyTest, SolveMatchesLu) {
  Rng rng(5);
  Matrix b(6, 6);
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = 0; c < 6; ++c) b(r, c) = rng.Uniform(-1.0, 1.0);
  // A = B^T B + I is SPD.
  const Matrix a = b.Transpose() * b + Matrix::Identity(6);
  Vector rhs(6);
  for (auto& v : rhs) v = rng.Uniform(-2.0, 2.0);
  const auto x_chol = SolveCholesky(a, rhs);
  const auto x_lu = SolveLinear(a, rhs);
  ASSERT_TRUE(x_chol.ok());
  ASSERT_TRUE(x_lu.ok());
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_NEAR((*x_chol)[i], (*x_lu)[i], 1e-10);
}

}  // namespace
}  // namespace gm::math
