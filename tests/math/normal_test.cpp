#include "math/normal.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gm::math {
namespace {

TEST(NormalTest, PdfPeakAtZero) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804014327, 1e-15);
  EXPECT_NEAR(NormalPdf(1.0), 0.24197072451914337, 1e-15);
  EXPECT_DOUBLE_EQ(NormalPdf(3.0), NormalPdf(-3.0));
}

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(NormalCdf(-1.0), 1.0 - 0.8413447460685429, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-12);
  EXPECT_NEAR(NormalCdf(2.3263478740408408), 0.99, 1e-12);
}

TEST(NormalTest, CdfMonotone) {
  double prev = -1.0;
  for (double x = -6.0; x <= 6.0; x += 0.01) {
    const double c = NormalCdf(x);
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(NormalTest, QuantileKnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(NormalQuantile(0.8413447460685429), 1.0, 1e-10);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963984540054, 1e-10);
  EXPECT_NEAR(NormalQuantile(0.99), 2.3263478740408408, 1e-10);
  // The paper's guarantee levels.
  EXPECT_NEAR(NormalQuantile(0.80), 0.8416212335729143, 1e-10);
  EXPECT_NEAR(NormalQuantile(0.90), 1.2815515655446004, 1e-10);
}

TEST(NormalTest, QuantileIsInverseOfCdf) {
  for (double p = 0.001; p < 0.9995; p += 0.0007) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-12) << "p=" << p;
  }
}

TEST(NormalTest, QuantileExtremeTails) {
  EXPECT_NEAR(NormalCdf(NormalQuantile(1e-10)), 1e-10, 1e-13);
  EXPECT_NEAR(NormalCdf(NormalQuantile(1.0 - 1e-10)), 1.0 - 1e-10, 1e-13);
}

TEST(NormalTest, QuantileSymmetry) {
  for (double p = 0.01; p < 0.5; p += 0.03) {
    EXPECT_NEAR(NormalQuantile(p), -NormalQuantile(1.0 - p), 1e-11);
  }
}

TEST(NormalTest, GeneralParameterization) {
  const double mu = 10.0;
  const double sigma = 2.5;
  EXPECT_NEAR(NormalCdf(mu, mu, sigma), 0.5, 1e-15);
  EXPECT_NEAR(NormalQuantile(0.5, mu, sigma), mu, 1e-10);
  EXPECT_NEAR(NormalQuantile(0.8413447460685429, mu, sigma), mu + sigma,
              1e-9);
  // Round trip.
  for (double p : {0.1, 0.25, 0.8, 0.99}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p, mu, sigma), mu, sigma), p, 1e-12);
  }
}

}  // namespace
}  // namespace gm::math
