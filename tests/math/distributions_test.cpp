#include "math/distributions.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "math/stats.hpp"

namespace gm::math {
namespace {

constexpr int kSamples = 200000;

TEST(NormalSamplerTest, MomentsMatch) {
  Rng rng(1);
  NormalSampler sampler(2.0, 1.5);
  RunningMoments m;
  for (int i = 0; i < kSamples; ++i) m.Add(sampler.Sample(rng));
  EXPECT_NEAR(m.mean(), 2.0, 0.02);
  EXPECT_NEAR(m.stddev(), 1.5, 0.02);
  EXPECT_NEAR(m.skewness(), 0.0, 0.03);
  EXPECT_NEAR(m.kurtosis(), 0.0, 0.08);
}

TEST(NormalSamplerTest, ZeroSigmaIsDeterministic) {
  Rng rng(2);
  NormalSampler sampler(5.0, 0.0);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(sampler.Sample(rng), 5.0);
}

TEST(ExponentialSamplerTest, MomentsMatch) {
  Rng rng(3);
  ExponentialSampler sampler(2.0);  // mean 0.5, stddev 0.5
  RunningMoments m;
  for (int i = 0; i < kSamples; ++i) {
    const double v = sampler.Sample(rng);
    EXPECT_GE(v, 0.0);
    m.Add(v);
  }
  EXPECT_NEAR(m.mean(), 0.5, 0.01);
  EXPECT_NEAR(m.stddev(), 0.5, 0.01);
  EXPECT_NEAR(m.skewness(), 2.0, 0.1);  // exponential skewness is 2
}

TEST(GammaSamplerTest, ShapeAboveOneMomentsMatch) {
  Rng rng(4);
  GammaSampler sampler(3.0);  // mean 3, var 3
  RunningMoments m;
  for (int i = 0; i < kSamples; ++i) m.Add(sampler.Sample(rng));
  EXPECT_NEAR(m.mean(), 3.0, 0.03);
  EXPECT_NEAR(m.variance(), 3.0, 0.1);
}

TEST(GammaSamplerTest, ShapeBelowOneMomentsMatch) {
  Rng rng(5);
  GammaSampler sampler(0.5);  // mean 0.5, var 0.5
  RunningMoments m;
  for (int i = 0; i < kSamples; ++i) {
    const double v = sampler.Sample(rng);
    EXPECT_GE(v, 0.0);
    m.Add(v);
  }
  EXPECT_NEAR(m.mean(), 0.5, 0.02);
  EXPECT_NEAR(m.variance(), 0.5, 0.05);
}

TEST(BetaSamplerTest, MomentsMatch) {
  Rng rng(6);
  // Beta(5, 1): mean 5/6, var 5/(36*7).
  BetaSampler sampler(5.0, 1.0);
  RunningMoments m;
  for (int i = 0; i < kSamples; ++i) {
    const double v = sampler.Sample(rng);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    m.Add(v);
  }
  EXPECT_NEAR(m.mean(), 5.0 / 6.0, 0.01);
  EXPECT_NEAR(m.variance(), 5.0 / (36.0 * 7.0), 0.005);
  EXPECT_LT(m.skewness(), 0.0);  // Beta(5,1) is left-skewed
}

TEST(BetaSamplerTest, SymmetricCase) {
  Rng rng(7);
  BetaSampler sampler(2.0, 2.0);
  RunningMoments m;
  for (int i = 0; i < kSamples; ++i) m.Add(sampler.Sample(rng));
  EXPECT_NEAR(m.mean(), 0.5, 0.01);
  EXPECT_NEAR(m.skewness(), 0.0, 0.05);
}

TEST(ParetoSamplerTest, MomentsAndSupport) {
  Rng rng(8);
  // Pareto(alpha=3, x_m=2): mean = alpha*x_m/(alpha-1) = 3, finite var.
  ParetoSampler sampler(3.0, 2.0);
  RunningMoments m;
  for (int i = 0; i < kSamples; ++i) {
    const double v = sampler.Sample(rng);
    EXPECT_GE(v, 2.0);  // support is [x_m, inf)
    m.Add(v);
  }
  EXPECT_NEAR(m.mean(), 3.0, 0.05);
  EXPECT_GT(m.skewness(), 0.0);  // heavy right tail
}

TEST(ParetoSamplerTest, HeavyTailExceedsExponential) {
  Rng rng(9);
  // With alpha=1.1 the tail is near-infinite-mean: the max over 100k
  // draws must dwarf the scale by orders of magnitude.
  ParetoSampler sampler(1.1, 1.0);
  double max_seen = 0.0;
  for (int i = 0; i < kSamples; ++i)
    max_seen = std::max(max_seen, sampler.Sample(rng));
  EXPECT_GT(max_seen, 1000.0);
}

TEST(LognormalSamplerTest, MomentsMatch) {
  Rng rng(10);
  // LN(mu=1, sigma=0.5): mean = exp(mu + sigma^2/2).
  LognormalSampler sampler(1.0, 0.5);
  RunningMoments m;
  for (int i = 0; i < kSamples; ++i) {
    const double v = sampler.Sample(rng);
    EXPECT_GT(v, 0.0);
    m.Add(v);
  }
  EXPECT_NEAR(m.mean(), std::exp(1.0 + 0.125), 0.05);
}

TEST(PoissonSamplerTest, SmallMeanMatches) {
  Rng rng(11);
  PoissonSampler sampler(3.0);
  RunningMoments m;
  for (int i = 0; i < kSamples; ++i)
    m.Add(static_cast<double>(sampler.Sample(rng)));
  // Poisson mean == variance.
  EXPECT_NEAR(m.mean(), 3.0, 0.05);
  EXPECT_NEAR(m.variance(), 3.0, 0.1);
}

TEST(PoissonSamplerTest, LargeMeanUsesChunking) {
  Rng rng(12);
  // 200 > the Knuth chunk, so this exercises the additive split; the
  // result must still have Poisson moments.
  PoissonSampler sampler(200.0);
  RunningMoments m;
  for (int i = 0; i < 20'000; ++i)
    m.Add(static_cast<double>(sampler.Sample(rng)));
  EXPECT_NEAR(m.mean(), 200.0, 1.0);
  EXPECT_NEAR(m.variance(), 200.0, 10.0);
}

TEST(PoissonSamplerTest, ZeroMeanIsZero) {
  Rng rng(13);
  PoissonSampler sampler(0.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(rng), 0u);
}

TEST(SamplersTest, DeterministicGivenSeed) {
  Rng rng_a(42);
  Rng rng_b(42);
  NormalSampler na(0.0, 1.0);
  NormalSampler nb(0.0, 1.0);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(na.Sample(rng_a), nb.Sample(rng_b));
}

}  // namespace
}  // namespace gm::math
