#include "math/autocorr.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace gm::math {
namespace {

TEST(AutocorrTest, RawAutocorrelationLagZeroIsMeanSquare) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  EXPECT_NEAR(RawAutocorrelation(x, 0), (1.0 + 4.0 + 9.0) / 3.0, 1e-12);
}

TEST(AutocorrTest, RawAutocorrelationKnownLag) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  // lag 1: (2*1 + 3*2 + 4*3)/3
  EXPECT_NEAR(RawAutocorrelation(x, 1), 20.0 / 3.0, 1e-12);
  // lag is symmetric
  EXPECT_NEAR(RawAutocorrelation(x, -1), RawAutocorrelation(x, 1), 1e-12);
}

TEST(AutocorrTest, AutocovarianceOfConstantIsZero) {
  const std::vector<double> x(50, 3.14);
  EXPECT_NEAR(Autocovariance(x, 0), 0.0, 1e-12);
  EXPECT_NEAR(Autocovariance(x, 3), 0.0, 1e-12);
}

TEST(AutocorrTest, WhiteNoiseUncorrelatedAtPositiveLags) {
  Rng rng(101);
  std::vector<double> x(20000);
  for (auto& v : x) v = rng.Uniform(-1.0, 1.0);
  const auto rho = AutocorrelationFunction(x, 5);
  EXPECT_DOUBLE_EQ(rho[0], 1.0);
  for (int k = 1; k <= 5; ++k)
    EXPECT_NEAR(rho[static_cast<std::size_t>(k)], 0.0, 0.03) << "lag " << k;
}

TEST(AutocorrTest, Ar1SeriesHasGeometricAcf) {
  // x_t = phi x_{t-1} + e_t has rho(k) = phi^k.
  const double phi = 0.8;
  Rng rng(7);
  std::vector<double> x;
  x.reserve(60000);
  double prev = 0.0;
  for (int i = 0; i < 60000; ++i) {
    const double e = rng.Uniform(-1.0, 1.0);
    prev = phi * prev + e;
    x.push_back(prev);
  }
  const auto rho = AutocorrelationFunction(x, 3);
  EXPECT_NEAR(rho[1], phi, 0.02);
  EXPECT_NEAR(rho[2], phi * phi, 0.03);
  EXPECT_NEAR(rho[3], phi * phi * phi, 0.03);
}

TEST(AutocorrTest, AlternatingSeriesNegativeLagOne) {
  std::vector<double> x;
  for (int i = 0; i < 1000; ++i) x.push_back(i % 2 == 0 ? 1.0 : -1.0);
  const auto rho = AutocorrelationFunction(x, 2);
  EXPECT_NEAR(rho[1], -1.0, 1e-3);
  EXPECT_NEAR(rho[2], 1.0, 1e-2);
}

TEST(AutocorrTest, ConstantSeriesAcfReportsZeros) {
  const std::vector<double> x(10, 5.0);
  const auto rho = AutocorrelationFunction(x, 3);
  EXPECT_DOUBLE_EQ(rho[0], 1.0);
  EXPECT_DOUBLE_EQ(rho[1], 0.0);
}

TEST(AutocorrTest, MaxLagBeyondDataIsZeroFilled) {
  const std::vector<double> x{1.0, -1.0, 1.0};
  const auto rho = AutocorrelationFunction(x, 10);
  EXPECT_EQ(rho.size(), 11u);
  EXPECT_DOUBLE_EQ(rho[5], 0.0);
}

}  // namespace
}  // namespace gm::math
