#include "math/histogram.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace gm::math {
namespace {

TEST(HistogramTest, BinGeometry) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
}

TEST(HistogramTest, AddPlacesInCorrectBin) {
  Histogram h(0.0, 10.0, 5);
  h.Add(1.0);   // bin 0
  h.Add(3.5);   // bin 1
  h.Add(9.99);  // bin 4
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.count(4), 1.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 3.0);
}

TEST(HistogramTest, OutOfRangeClampsToEndBins) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-5.0);
  h.Add(42.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(3), 1.0);
}

TEST(HistogramTest, BoundaryValues) {
  Histogram h(0.0, 1.0, 2);
  h.Add(0.0);  // lower edge -> bin 0
  h.Add(0.5);  // boundary -> bin 1
  h.Add(1.0);  // upper edge -> last bin
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 2.0);
}

TEST(HistogramTest, ProportionsSumToOne) {
  Rng rng(8);
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 1000; ++i) h.Add(rng.NextDouble());
  double sum = 0.0;
  for (double p : h.Proportions()) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(HistogramTest, EmptyHistogramProportionsAreZero) {
  Histogram h(0.0, 1.0, 3);
  EXPECT_DOUBLE_EQ(h.Proportion(0), 0.0);
  EXPECT_DOUBLE_EQ(h.Density(1), 0.0);
}

TEST(HistogramTest, DensityIntegratesToOne) {
  Rng rng(9);
  Histogram h(0.0, 2.0, 8);
  for (int i = 0; i < 5000; ++i) h.Add(rng.Uniform(0.0, 2.0));
  double integral = 0.0;
  for (std::size_t i = 0; i < h.bin_count(); ++i)
    integral += h.Density(i) * h.bin_width();
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(HistogramTest, WeightedAdd) {
  Histogram h(0.0, 1.0, 2);
  h.AddWeighted(0.25, 3.0);
  h.AddWeighted(0.75, 1.0);
  EXPECT_DOUBLE_EQ(h.Proportion(0), 0.75);
  EXPECT_DOUBLE_EQ(h.Proportion(1), 0.25);
}

TEST(HistogramTest, ResetClears) {
  Histogram h(0.0, 1.0, 2);
  h.Add(0.2);
  h.Reset();
  EXPECT_DOUBLE_EQ(h.total_weight(), 0.0);
  EXPECT_DOUBLE_EQ(h.count(0), 0.0);
}

TEST(HistogramTest, TotalVariationDistanceIdentical) {
  Rng rng(10);
  Histogram a(0.0, 1.0, 10);
  Histogram b(0.0, 1.0, 10);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.NextDouble();
    a.Add(v);
    b.Add(v);
  }
  EXPECT_DOUBLE_EQ(Histogram::TotalVariationDistance(a, b), 0.0);
}

TEST(HistogramTest, TotalVariationDistanceDisjointIsOne) {
  Histogram a(0.0, 1.0, 2);
  Histogram b(0.0, 1.0, 2);
  a.Add(0.1);
  b.Add(0.9);
  EXPECT_DOUBLE_EQ(Histogram::TotalVariationDistance(a, b), 1.0);
}

TEST(HistogramTest, TotalVariationDistanceSimilarDistributionsSmall) {
  Rng rng(11);
  Histogram a(0.0, 1.0, 10);
  Histogram b(0.0, 1.0, 10);
  for (int i = 0; i < 50000; ++i) {
    a.Add(rng.NextDouble());
    b.Add(rng.NextDouble());
  }
  EXPECT_LT(Histogram::TotalVariationDistance(a, b), 0.05);
}

}  // namespace
}  // namespace gm::math
