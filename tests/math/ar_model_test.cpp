#include "math/ar_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "math/autocorr.hpp"
#include "math/matrix.hpp"

namespace gm::math {
namespace {

std::vector<double> SimulateAr(const std::vector<double>& coeffs, double mean,
                               double noise_sigma, int n, std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t k = coeffs.size();
  std::vector<double> x(static_cast<std::size_t>(n), mean);
  for (std::size_t t = k; t < x.size(); ++t) {
    double v = mean;
    for (std::size_t j = 0; j < k; ++j)
      v += coeffs[j] * (x[t - 1 - j] - mean);
    // Irwin-Hall approximate normal noise (12 uniforms).
    double e = 0.0;
    for (int u = 0; u < 12; ++u) e += rng.NextDouble();
    v += noise_sigma * (e - 6.0);
    x[t] = v;
  }
  return x;
}

TEST(LevinsonTest, MatchesDenseToeplitzSolve) {
  // Autocovariance sequence of an AR(2)-like process.
  const std::vector<double> acov{4.0, 2.4, 1.7, 1.1};
  const auto levinson = LevinsonDurbin(acov);
  ASSERT_TRUE(levinson.ok());

  // Dense reference: L(i,j) = acov(|i-j|), r_i = acov(i+1).
  const std::size_t k = acov.size() - 1;
  Matrix l(k, k);
  Vector r(k);
  for (std::size_t i = 0; i < k; ++i) {
    r[i] = acov[i + 1];
    for (std::size_t j = 0; j < k; ++j)
      l(i, j) = acov[static_cast<std::size_t>(
          std::abs(static_cast<int>(i) - static_cast<int>(j)))];
  }
  const auto dense = SolveLinear(l, r);
  ASSERT_TRUE(dense.ok());
  ASSERT_EQ(levinson->size(), dense->size());
  for (std::size_t i = 0; i < k; ++i)
    EXPECT_NEAR((*levinson)[i], (*dense)[i], 1e-10) << "coef " << i;
}

TEST(LevinsonTest, Order1KnownAnswer) {
  // AR(1): a1 = C(1)/C(0).
  const auto a = LevinsonDurbin({2.0, 1.0});
  ASSERT_TRUE(a.ok());
  ASSERT_EQ(a->size(), 1u);
  EXPECT_NEAR((*a)[0], 0.5, 1e-12);
}

TEST(LevinsonTest, ZeroVarianceFails) {
  EXPECT_FALSE(LevinsonDurbin({0.0, 0.0}).ok());
}

TEST(ArModelTest, RecoversAr1Coefficient) {
  const std::vector<double> truth{0.7};
  const auto series = SimulateAr(truth, 10.0, 0.5, 20000, 42);
  const auto model = ArModel::Fit(series, 1);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->coefficients()[0], 0.7, 0.03);
  EXPECT_NEAR(model->mean(), 10.0, 0.2);
  EXPECT_GT(model->noise_variance(), 0.0);
}

TEST(ArModelTest, RecoversAr2Coefficients) {
  const std::vector<double> truth{0.5, -0.3};
  const auto series = SimulateAr(truth, 0.0, 1.0, 50000, 17);
  const auto model = ArModel::Fit(series, 2);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->coefficients()[0], 0.5, 0.03);
  EXPECT_NEAR(model->coefficients()[1], -0.3, 0.03);
}

TEST(ArModelTest, PredictNextUsesRecentHistory) {
  const auto series = SimulateAr({0.9}, 5.0, 0.3, 5000, 3);
  const auto model = ArModel::Fit(series, 1);
  ASSERT_TRUE(model.ok());
  // Prediction from a point far above the mean reverts toward the mean.
  const double high = 20.0;
  const double pred = model->PredictNext({high});
  EXPECT_LT(pred, high);
  EXPECT_GT(pred, model->mean());
}

TEST(ArModelTest, ForecastConvergesToMean) {
  const auto series = SimulateAr({0.8}, 3.0, 0.2, 10000, 9);
  const auto model = ArModel::Fit(series, 1);
  ASSERT_TRUE(model.ok());
  const auto forecast = model->Forecast({10.0}, 100);
  ASSERT_EQ(forecast.size(), 100u);
  // Stable AR(1) forecasts decay geometrically to the mean.
  EXPECT_NEAR(forecast.back(), model->mean(), 0.05);
  for (std::size_t i = 1; i < forecast.size(); ++i) {
    EXPECT_LE(forecast[i], forecast[i - 1] + 1e-12);
  }
}

TEST(ArModelTest, ForecastZeroStepsIsEmpty) {
  const auto series = SimulateAr({0.5}, 0.0, 0.1, 1000, 1);
  const auto model = ArModel::Fit(series, 1);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->Forecast({0.0}, 0).empty());
}

TEST(ArModelTest, TooShortSeriesFails) {
  EXPECT_FALSE(ArModel::Fit({1.0, 2.0, 3.0}, 6).ok());
}

TEST(ArModelTest, ConstantSeriesFails) {
  const std::vector<double> series(100, 2.5);
  EXPECT_FALSE(ArModel::Fit(series, 2).ok());
}

TEST(ArModelTest, Ar6OnSinusoidPredictsWell) {
  // Nearly periodic series (tiny noise keeps the Yule-Walker system
  // positive definite): a rich AR model should track it closely.
  Rng rng(55);
  std::vector<double> series;
  for (int i = 0; i < 2000; ++i)
    series.push_back(5.0 + std::sin(i * 0.3) + 0.5 * std::cos(i * 0.7) +
                     rng.Uniform(-0.01, 0.01));
  const auto model = ArModel::Fit(series, 6);
  ASSERT_TRUE(model.ok());
  // One-step prediction should beat naive persistence (predict the previous
  // value) and stay well below the signal amplitude. Yule-Walker on nearly
  // noiseless sinusoids is ill-conditioned, so we don't demand perfection.
  double err = 0.0;
  double naive_err = 0.0;
  int count = 0;
  for (int t = 1000; t < 1500; ++t) {
    std::vector<double> history(series.begin(), series.begin() + t);
    const double pred = model->PredictNext(history);
    const double actual = series[static_cast<std::size_t>(t)];
    err += std::fabs(pred - actual);
    naive_err += std::fabs(history.back() - actual);
    ++count;
  }
  EXPECT_LT(err / count, 0.3);
  EXPECT_LT(err, naive_err);
}

}  // namespace
}  // namespace gm::math
