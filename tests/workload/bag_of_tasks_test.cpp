#include "workload/bag_of_tasks.hpp"

#include <gtest/gtest.h>

namespace gm::workload {
namespace {

TEST(BagOfTasksTest, DefaultScanJob) {
  ScanJobParams params;
  const auto job = BuildScanJob(params);
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(job->count, 15);
  EXPECT_EQ(job->TotalChunks(), 30);
  EXPECT_DOUBLE_EQ(job->cpu_time_minutes, 212.0);
  EXPECT_FALSE(job->runtime_environments.empty());
  EXPECT_FALSE(job->input_files.empty());
  // Must round-trip through XRSL (that's how it reaches the broker).
  EXPECT_TRUE(grid::JobDescription::FromXrsl(job->ToXrsl()).ok());
}

TEST(BagOfTasksTest, Validation) {
  ScanJobParams params;
  params.nodes = 0;
  EXPECT_FALSE(BuildScanJob(params).ok());
  params.nodes = 10;
  params.chunks = 5;  // fewer chunks than nodes
  EXPECT_FALSE(BuildScanJob(params).ok());
  params.chunks = 10;
  params.chunk_cpu_minutes = 0.0;
  EXPECT_FALSE(BuildScanJob(params).ok());
}

TEST(BagOfTasksTest, FromPartitionDerivesSizes) {
  const ProteomeModel model = ProteomeModel::Calibrated(20, 50.0, GHz(2.0));
  const auto chunks = PartitionProteome(model, 20);
  ASSERT_TRUE(chunks.ok());
  ScanJobParams params;
  params.nodes = 10;
  const auto job = BuildScanJob(params, *chunks, GHz(2.0));
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  EXPECT_EQ(job->TotalChunks(), 20);
  EXPECT_NEAR(job->cpu_time_minutes, 50.0, 0.5);
  ASSERT_EQ(job->input_files.size(), 20u);
  EXPECT_EQ(job->input_files[3].name, "proteome-chunk-003.fasta");
  EXPECT_GT(job->input_files[3].size_mb, 0.0);
}

TEST(BagOfTasksTest, FromPartitionValidation) {
  ScanJobParams params;
  EXPECT_FALSE(BuildScanJob(params, {}, GHz(1.0)).ok());
  const ProteomeModel model = ProteomeModel::Calibrated(5, 10.0, GHz(1.0));
  const auto chunks = PartitionProteome(model, 5);
  ASSERT_TRUE(chunks.ok());
  EXPECT_FALSE(BuildScanJob(params, *chunks, 0.0).ok());
}

}  // namespace
}  // namespace gm::workload
