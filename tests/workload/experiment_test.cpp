#include "workload/experiment.hpp"

#include <gtest/gtest.h>

namespace gm::workload {
namespace {

/// Scaled-down best-response experiment (minutes instead of hours) so the
/// suite stays fast while exercising the full Table 1/2 machinery.
BestResponseExperimentConfig SmallConfig() {
  BestResponseExperimentConfig config;
  config.grid.hosts = 6;
  config.grid.cpus_per_host = 2;
  config.grid.cycles_per_cpu = 1000.0;
  config.grid.virtualization_overhead = 0.0;
  config.grid.vm_boot_time = sim::Seconds(5);
  config.grid.heterogeneity = 0.3;
  config.grid.plugin.reference_capacity = 1000.0;
  config.budgets = {Money::Dollars(10), Money::Dollars(10), Money::Dollars(10)};
  config.job.nodes = 3;
  config.job.chunks = 6;
  config.job.chunk_cpu_minutes = 2.0;
  config.job.wall_time_minutes = 120.0;
  config.stagger = sim::Seconds(60);
  config.horizon = sim::Hours(6);
  return config;
}

TEST(BestResponseExperimentTest, AllJobsFinish) {
  BestResponseExperiment experiment(SmallConfig());
  const auto outcomes = experiment.Run();
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  ASSERT_EQ(outcomes->size(), 3u);
  for (const UserOutcome& outcome : *outcomes) {
    EXPECT_EQ(outcome.state, grid::JobState::kFinished) << outcome.user;
    EXPECT_EQ(outcome.completed_chunks, 6);
    EXPECT_GT(outcome.time_hours, 0.0);
    EXPECT_GT(outcome.latency_minutes, 0.0);
    EXPECT_GT(outcome.nodes, 0);
    EXPECT_LE(outcome.nodes, 3);
    EXPECT_GT(outcome.spent_dollars, 0.0);
    EXPECT_LE(outcome.spent_dollars, outcome.budget_dollars + 1e-9);
  }
}

TEST(BestResponseExperimentTest, HigherFundingBuysBetterService) {
  BestResponseExperimentConfig config = SmallConfig();
  // Force contention: single-CPU hosts, all users overlap, and a wall
  // time tight enough that agents must bid hard to hold their shares.
  config.grid.cpus_per_host = 1;
  config.job.wall_time_minutes = 10.0;
  config.budgets = {Money::Dollars(2), Money::Dollars(2), Money::Dollars(20)};
  const auto outcomes = BestResponseExperiment(config).Run();
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  const UserOutcome& poor = (*outcomes)[0];
  const UserOutcome& rich = (*outcomes)[2];
  ASSERT_EQ(poor.state, grid::JobState::kFinished);
  ASSERT_EQ(rich.state, grid::JobState::kFinished);
  // The paper's Table 2 shape: more money, faster chunks, higher $/h.
  EXPECT_LT(rich.latency_minutes, poor.latency_minutes);
  EXPECT_GT(rich.cost_per_hour, poor.cost_per_hour);
}

TEST(BestResponseExperimentTest, SummarizeAveragesGroups) {
  std::vector<UserOutcome> outcomes(4);
  for (std::size_t i = 0; i < 4; ++i) {
    outcomes[i].time_hours = static_cast<double>(i + 1);
    outcomes[i].cost_per_hour = 2.0 * static_cast<double>(i + 1);
    outcomes[i].latency_minutes = 10.0 * static_cast<double>(i + 1);
    outcomes[i].nodes = static_cast<int>(i + 1);
  }
  const GroupSummary summary =
      BestResponseExperiment::Summarize(outcomes, 1, 2, "Users 2-3");
  EXPECT_EQ(summary.label, "Users 2-3");
  EXPECT_DOUBLE_EQ(summary.time_hours, 2.5);
  EXPECT_DOUBLE_EQ(summary.cost_per_hour, 5.0);
  EXPECT_DOUBLE_EQ(summary.latency_minutes, 25.0);
  EXPECT_DOUBLE_EQ(summary.nodes, 2.5);
}

TEST(BestResponseExperimentTest, RenderTableFormatsRows) {
  const std::vector<GroupSummary> groups{
      {"1-2", 7.16, 4.19, 28.66, 15.0},
      {"3-5", 6.36, 4.28, 45.49, 8.7},
  };
  const std::string table = BestResponseExperiment::RenderTable(groups);
  EXPECT_NE(table.find("Time(h)"), std::string::npos);
  EXPECT_NE(table.find("1-2"), std::string::npos);
  EXPECT_NE(table.find("45.49"), std::string::npos);
  EXPECT_NE(table.find("8.7"), std::string::npos);
}

}  // namespace
}  // namespace gm::workload
