#include "workload/proteome.hpp"

#include <gtest/gtest.h>

namespace gm::workload {
namespace {

TEST(ProteomeModelTest, CalibrationHitsChunkTarget) {
  // Paper: one of ~95 chunks takes 212 minutes on a 3 GHz node.
  const ProteomeModel model = ProteomeModel::Calibrated(95, 212.0, GHz(3.0));
  EXPECT_GT(model.cycles_per_comparison, 0.0);
  const auto chunks = PartitionProteome(model, 95);
  ASSERT_TRUE(chunks.ok());
  // Every chunk should take ~212 minutes at 3 GHz.
  for (const ProteomeChunk& chunk : *chunks) {
    EXPECT_NEAR(chunk.cycles / GHz(3.0) / 60.0, 212.0, 1.0);
  }
}

TEST(ProteomeModelTest, TotalCyclesMatchesPartitionSum) {
  const ProteomeModel model = ProteomeModel::Calibrated(30, 100.0, GHz(3.0));
  const auto chunks = PartitionProteome(model, 30);
  ASSERT_TRUE(chunks.ok());
  Cycles sum = 0;
  for (const ProteomeChunk& chunk : *chunks) sum += chunk.cycles;
  EXPECT_NEAR(sum, model.TotalCycles(), model.TotalCycles() * 1e-9);
}

TEST(ProteomeModelTest, SingleNodeScanTakesWeeks) {
  // Paper: a full scan takes about 8 weeks on a single node.
  const ProteomeModel model = ProteomeModel::Calibrated(95, 212.0, GHz(3.0));
  const double weeks = model.TotalCycles() / GHz(3.0) / 3600.0 / 24.0 / 7.0;
  EXPECT_GT(weeks, 1.5);
  EXPECT_LT(weeks, 8.0);
}

TEST(PartitionTest, ResiduesConserved) {
  const ProteomeModel model = ProteomeModel::Calibrated(7, 10.0, GHz(1.0));
  const auto chunks = PartitionProteome(model, 7);
  ASSERT_TRUE(chunks.ok());
  std::int64_t residues = 0;
  for (const ProteomeChunk& chunk : *chunks) residues += chunk.residues;
  EXPECT_EQ(residues, model.total_residues);
}

TEST(PartitionTest, NearEqualChunks) {
  const ProteomeModel model = ProteomeModel::Calibrated(13, 10.0, GHz(1.0));
  const auto chunks = PartitionProteome(model, 13);
  ASSERT_TRUE(chunks.ok());
  std::int64_t min_residues = chunks->front().residues;
  std::int64_t max_residues = chunks->front().residues;
  for (const ProteomeChunk& chunk : *chunks) {
    min_residues = std::min(min_residues, chunk.residues);
    max_residues = std::max(max_residues, chunk.residues);
    EXPECT_GT(chunk.data_mb, 0.0);
  }
  EXPECT_LE(max_residues - min_residues, 1);
}

TEST(PartitionTest, FileNamesIndexed) {
  ProteomeChunk chunk;
  chunk.index = 7;
  EXPECT_EQ(chunk.FileName(), "proteome-chunk-007.fasta");
}

TEST(PartitionTest, Validation) {
  const ProteomeModel uncalibrated;
  EXPECT_FALSE(PartitionProteome(uncalibrated, 5).ok());
  const ProteomeModel model = ProteomeModel::Calibrated(5, 10.0, GHz(1.0));
  EXPECT_FALSE(PartitionProteome(model, 0).ok());
  EXPECT_FALSE(PartitionProteome(model, -3).ok());
}

}  // namespace
}  // namespace gm::workload
