#include "market/bid_table.hpp"

#include <gtest/gtest.h>

#include <string>

namespace gm::market {
namespace {

using sim::Seconds;

TEST(BidTableTest, AddFindRemove) {
  BidTable table;
  const auto a = table.Add("alice", "h1/alice");
  const auto b = table.Add("bob", "h1/bob");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.Find("alice"), a);
  EXPECT_EQ(table.Find("bob"), b);
  EXPECT_EQ(table.Find("carol"), BidTable::kNoSlot);
  EXPECT_EQ(table.cold(a).vm_id, "h1/alice");
  table.Remove(a);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.Find("alice"), BidTable::kNoSlot);
  EXPECT_FALSE(table.occupied(a));
}

TEST(BidTableTest, SlotsAreRecycledButStable) {
  BidTable table;
  const auto a = table.Add("alice", "v");
  const auto b = table.Add("bob", "v");
  table.Remove(a);
  // The freed slot is reused; bob's slot is untouched.
  const auto c = table.Add("carol", "v");
  EXPECT_EQ(c, a);
  EXPECT_EQ(table.Find("bob"), b);
  EXPECT_EQ(table.span(), 2u);
}

TEST(BidTableTest, ActiveSumTracksSetBid) {
  BidTable table;
  const auto a = table.Add("alice", "v");
  const auto b = table.Add("bob", "v");
  table.AddBalance(a, 1'000'000, 0);
  table.AddBalance(b, 1'000'000, 0);
  table.SetBid(a, 500, Seconds(100), 0);
  table.SetBid(b, 300, Seconds(100), 0);
  EXPECT_EQ(table.active_sum_micros(), 800);
  // Re-bid replaces, not accumulates.
  table.SetBid(a, 200, Seconds(100), 0);
  EXPECT_EQ(table.active_sum_micros(), 500);
  // Zero rate deactivates.
  table.SetBid(b, 0, Seconds(100), 0);
  EXPECT_EQ(table.active_sum_micros(), 200);
  EXPECT_FALSE(table.active(b));
}

TEST(BidTableTest, UnfundedBidIsInactiveUntilFunded) {
  BidTable table;
  const auto a = table.Add("alice", "v");
  table.SetBid(a, 500, Seconds(100), 0);
  EXPECT_EQ(table.active_sum_micros(), 0);
  table.AddBalance(a, 10, 0);
  EXPECT_EQ(table.active_sum_micros(), 500);
  // Charging it to zero deactivates again.
  table.AddBalance(a, -10, 0);
  EXPECT_EQ(table.active_sum_micros(), 0);
  // Re-funding after the drain re-activates (and re-arms expiry).
  table.AddBalance(a, 5, 0);
  EXPECT_EQ(table.active_sum_micros(), 500);
}

TEST(BidTableTest, ExpireUntilDropsLapsedDeadlines) {
  BidTable table;
  const auto a = table.Add("alice", "v");
  const auto b = table.Add("bob", "v");
  table.AddBalance(a, 100, 0);
  table.AddBalance(b, 100, 0);
  table.SetBid(a, 500, Seconds(10), 0);
  table.SetBid(b, 300, Seconds(20), 0);
  EXPECT_EQ(table.active_sum_micros(), 800);
  table.ExpireUntil(Seconds(10));  // deadline is exclusive: now < deadline
  EXPECT_EQ(table.active_sum_micros(), 300);
  table.ExpireUntil(Seconds(25));
  EXPECT_EQ(table.active_sum_micros(), 0);
  EXPECT_EQ(table.FullResumMicros(Seconds(25)), 0);
}

TEST(BidTableTest, ReBidToLaterDeadlineSurvivesStaleHeapEntry) {
  BidTable table;
  const auto a = table.Add("alice", "v");
  table.AddBalance(a, 100, 0);
  table.SetBid(a, 500, Seconds(10), 0);
  // Extend before expiry; the old (10s, a) heap entry goes stale.
  table.SetBid(a, 500, Seconds(50), Seconds(5));
  table.ExpireUntil(Seconds(12));  // pops the stale entry
  EXPECT_EQ(table.active_sum_micros(), 500);
  EXPECT_EQ(table.FullResumMicros(Seconds(12)), 500);
  table.ExpireUntil(Seconds(50));
  EXPECT_EQ(table.active_sum_micros(), 0);
}

TEST(BidTableTest, SlotReuseInvalidatesOldHeapEntries) {
  BidTable table;
  const auto a = table.Add("alice", "v");
  table.AddBalance(a, 100, 0);
  table.SetBid(a, 500, Seconds(10), 0);
  table.Remove(a);  // heap entry for (10s, a) is now stale
  // Same slot, new occupant with a later deadline.
  const auto c = table.Add("carol", "v");
  ASSERT_EQ(c, a);
  table.AddBalance(c, 100, 0);
  table.SetBid(c, 700, Seconds(100), 0);
  // Popping the stale alice entry must not deactivate carol.
  table.ExpireUntil(Seconds(20));
  EXPECT_EQ(table.active_sum_micros(), 700);
  EXPECT_EQ(table.FullResumMicros(Seconds(20)), 700);
}

TEST(BidTableTest, RemoveDropsContributionImmediately) {
  BidTable table;
  const auto a = table.Add("alice", "v");
  const auto b = table.Add("bob", "v");
  table.AddBalance(a, 100, 0);
  table.AddBalance(b, 100, 0);
  table.SetBid(a, 500, Seconds(100), 0);
  table.SetBid(b, 300, Seconds(100), 0);
  table.Remove(a);
  EXPECT_EQ(table.active_sum_micros(), 300);
  EXPECT_EQ(table.FullResumMicros(0), 300);
}

TEST(BidTableTest, LazyHeapStaysBoundedUnderReBidding) {
  BidTable table;
  const auto a = table.Add("alice", "v");
  table.AddBalance(a, 100, 0);
  // Many re-bids each push an entry; draining past every deadline must
  // empty the heap (no permanently-stuck entries).
  for (int i = 1; i <= 100; ++i) table.SetBid(a, 10, Seconds(i), 0);
  table.ExpireUntil(Seconds(200));
  EXPECT_EQ(table.expiry_heap_size(), 0u);
  EXPECT_EQ(table.active_sum_micros(), 0);
}

TEST(BidTableTest, ForEachOccupiedVisitsInSlotOrder) {
  BidTable table;
  table.Add("a", "v");
  const auto b = table.Add("b", "v");
  table.Add("c", "v");
  table.Remove(b);
  std::string visited;
  table.ForEachOccupied(
      [&](BidTable::Slot s) { visited += table.cold(s).user; });
  EXPECT_EQ(visited, "ac");
}

}  // namespace
}  // namespace gm::market
