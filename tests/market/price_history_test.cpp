#include "market/price_history.hpp"

#include <gtest/gtest.h>

namespace gm::market {
namespace {

using sim::Seconds;

TEST(PriceHistoryTest, RecordsInOrder) {
  PriceHistory history;
  history.Record(Seconds(10), 1.0);
  history.Record(Seconds(20), 2.0);
  EXPECT_EQ(history.size(), 2u);
  EXPECT_DOUBLE_EQ(history.at(0).price, 1.0);
  EXPECT_DOUBLE_EQ(history.back().price, 2.0);
}

TEST(PriceHistoryTest, RingBufferEvictsOldest) {
  PriceHistory history(4);
  for (int i = 0; i < 10; ++i)
    history.Record(Seconds(i), static_cast<double>(i));
  EXPECT_EQ(history.size(), 4u);
  EXPECT_DOUBLE_EQ(history.at(0).price, 6.0);
  EXPECT_DOUBLE_EQ(history.back().price, 9.0);
}

TEST(PriceHistoryTest, PricesBetweenHalfOpenInterval) {
  PriceHistory history;
  for (int i = 0; i < 10; ++i)
    history.Record(Seconds(i * 10), static_cast<double>(i));
  const auto prices = history.PricesBetween(Seconds(20), Seconds(50));
  ASSERT_EQ(prices.size(), 3u);  // t = 20, 30, 40
  EXPECT_DOUBLE_EQ(prices[0], 2.0);
  EXPECT_DOUBLE_EQ(prices[2], 4.0);
}

TEST(PriceHistoryTest, LastPricesShorterThanRequested) {
  PriceHistory history;
  history.Record(0, 1.0);
  history.Record(1, 2.0);
  const auto prices = history.LastPrices(10);
  ASSERT_EQ(prices.size(), 2u);
  EXPECT_DOUBLE_EQ(prices[0], 1.0);
  EXPECT_DOUBLE_EQ(prices[1], 2.0);
}

TEST(PriceHistoryTest, LastPricesExactCount) {
  PriceHistory history;
  for (int i = 0; i < 5; ++i) history.Record(i, static_cast<double>(i));
  const auto prices = history.LastPrices(3);
  ASSERT_EQ(prices.size(), 3u);
  EXPECT_DOUBLE_EQ(prices[0], 2.0);
  EXPECT_DOUBLE_EQ(prices[2], 4.0);
}

TEST(PriceHistoryTest, WindowPricesIncludesNow) {
  PriceHistory history;
  history.Record(Seconds(0), 1.0);
  history.Record(Seconds(10), 2.0);
  history.Record(Seconds(20), 3.0);
  const auto prices = history.WindowPrices(Seconds(20), Seconds(10));
  ASSERT_EQ(prices.size(), 2u);  // t = 10 and t = 20
  EXPECT_DOUBLE_EQ(prices[0], 2.0);
  EXPECT_DOUBLE_EQ(prices[1], 3.0);
}

TEST(PriceHistoryTest, WindowPricesBoundariesAreInclusive) {
  // WindowPrices(now, w) covers the closed interval [now - w, now]: a
  // sample exactly at the window start and one exactly at `now` are both
  // in; samples one microsecond outside either edge are not.
  PriceHistory history;
  history.Record(Seconds(10) - 1, 0.5);  // just before the window
  history.Record(Seconds(10), 1.0);      // exactly now - window
  history.Record(Seconds(15), 2.0);
  history.Record(Seconds(20), 3.0);      // exactly now
  history.Record(Seconds(20) + 1, 4.0);  // just after now
  const auto prices = history.WindowPrices(Seconds(20), Seconds(10));
  ASSERT_EQ(prices.size(), 3u);
  EXPECT_DOUBLE_EQ(prices[0], 1.0);
  EXPECT_DOUBLE_EQ(prices[1], 2.0);
  EXPECT_DOUBLE_EQ(prices[2], 3.0);
}

TEST(PriceHistoryTest, PricesBetweenInclusiveIncludesBothEndpoints) {
  PriceHistory history;
  for (int i = 0; i < 10; ++i)
    history.Record(Seconds(i * 10), static_cast<double>(i));
  const auto prices =
      history.PricesBetweenInclusive(Seconds(20), Seconds(50));
  ASSERT_EQ(prices.size(), 4u);  // t = 20, 30, 40, 50
  EXPECT_DOUBLE_EQ(prices[0], 2.0);
  EXPECT_DOUBLE_EQ(prices[3], 5.0);
}

TEST(PriceHistoryTest, EmptyQueries) {
  PriceHistory history;
  EXPECT_TRUE(history.empty());
  EXPECT_TRUE(history.PricesBetween(0, 100).empty());
  EXPECT_TRUE(history.LastPrices(5).empty());
}

}  // namespace
}  // namespace gm::market
