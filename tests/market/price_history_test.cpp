#include "market/price_history.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace gm::market {
namespace {

namespace fs = std::filesystem;

using sim::Seconds;

fs::path FreshDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("gm_ph_" + name);
  fs::remove_all(dir);
  return dir;
}

TEST(PriceHistoryTest, RecordsInOrder) {
  PriceHistory history;
  history.Record(Seconds(10), 1.0);
  history.Record(Seconds(20), 2.0);
  EXPECT_EQ(history.size(), 2u);
  EXPECT_DOUBLE_EQ(history.at(0).price, 1.0);
  EXPECT_DOUBLE_EQ(history.back().price, 2.0);
}

TEST(PriceHistoryTest, RingBufferEvictsOldest) {
  PriceHistory history(4);
  for (int i = 0; i < 10; ++i)
    history.Record(Seconds(i), static_cast<double>(i));
  EXPECT_EQ(history.size(), 4u);
  EXPECT_DOUBLE_EQ(history.at(0).price, 6.0);
  EXPECT_DOUBLE_EQ(history.back().price, 9.0);
}

TEST(PriceHistoryTest, PricesBetweenHalfOpenInterval) {
  PriceHistory history;
  for (int i = 0; i < 10; ++i)
    history.Record(Seconds(i * 10), static_cast<double>(i));
  const auto prices = history.PricesBetween(Seconds(20), Seconds(50));
  ASSERT_EQ(prices.size(), 3u);  // t = 20, 30, 40
  EXPECT_DOUBLE_EQ(prices[0], 2.0);
  EXPECT_DOUBLE_EQ(prices[2], 4.0);
}

TEST(PriceHistoryTest, LastPricesShorterThanRequested) {
  PriceHistory history;
  history.Record(0, 1.0);
  history.Record(1, 2.0);
  const auto prices = history.LastPrices(10);
  ASSERT_EQ(prices.size(), 2u);
  EXPECT_DOUBLE_EQ(prices[0], 1.0);
  EXPECT_DOUBLE_EQ(prices[1], 2.0);
}

TEST(PriceHistoryTest, LastPricesExactCount) {
  PriceHistory history;
  for (int i = 0; i < 5; ++i) history.Record(i, static_cast<double>(i));
  const auto prices = history.LastPrices(3);
  ASSERT_EQ(prices.size(), 3u);
  EXPECT_DOUBLE_EQ(prices[0], 2.0);
  EXPECT_DOUBLE_EQ(prices[2], 4.0);
}

TEST(PriceHistoryTest, WindowPricesIncludesNow) {
  PriceHistory history;
  history.Record(Seconds(0), 1.0);
  history.Record(Seconds(10), 2.0);
  history.Record(Seconds(20), 3.0);
  const auto prices = history.WindowPrices(Seconds(20), Seconds(10));
  ASSERT_EQ(prices.size(), 2u);  // t = 10 and t = 20
  EXPECT_DOUBLE_EQ(prices[0], 2.0);
  EXPECT_DOUBLE_EQ(prices[1], 3.0);
}

TEST(PriceHistoryTest, WindowPricesBoundariesAreInclusive) {
  // WindowPrices(now, w) covers the closed interval [now - w, now]: a
  // sample exactly at the window start and one exactly at `now` are both
  // in; samples one microsecond outside either edge are not.
  PriceHistory history;
  history.Record(Seconds(10) - 1, 0.5);  // just before the window
  history.Record(Seconds(10), 1.0);      // exactly now - window
  history.Record(Seconds(15), 2.0);
  history.Record(Seconds(20), 3.0);      // exactly now
  history.Record(Seconds(20) + 1, 4.0);  // just after now
  const auto prices = history.WindowPrices(Seconds(20), Seconds(10));
  ASSERT_EQ(prices.size(), 3u);
  EXPECT_DOUBLE_EQ(prices[0], 1.0);
  EXPECT_DOUBLE_EQ(prices[1], 2.0);
  EXPECT_DOUBLE_EQ(prices[2], 3.0);
}

TEST(PriceHistoryTest, PricesBetweenInclusiveIncludesBothEndpoints) {
  PriceHistory history;
  for (int i = 0; i < 10; ++i)
    history.Record(Seconds(i * 10), static_cast<double>(i));
  const auto prices =
      history.PricesBetweenInclusive(Seconds(20), Seconds(50));
  ASSERT_EQ(prices.size(), 4u);  // t = 20, 30, 40, 50
  EXPECT_DOUBLE_EQ(prices[0], 2.0);
  EXPECT_DOUBLE_EQ(prices[3], 5.0);
}

TEST(PriceHistoryTest, EmptyQueries) {
  PriceHistory history;
  EXPECT_TRUE(history.empty());
  EXPECT_TRUE(history.PricesBetween(0, 100).empty());
  EXPECT_TRUE(history.LastPrices(5).empty());
}

TEST(PriceHistoryTest, RetentionEvictsOnlyOlderThanHorizon) {
  PriceHistory history;
  history.SetRetention(Seconds(30));
  for (int i = 0; i <= 10; ++i)
    history.Record(Seconds(i * 10), static_cast<double>(i));
  // Newest is t=100; the horizon keeps the closed window [70, 100].
  ASSERT_EQ(history.size(), 4u);
  EXPECT_EQ(history.at(0).at, Seconds(70));
  EXPECT_EQ(history.back().at, Seconds(100));
}

TEST(PriceHistoryTest, RetentionBoundaryIsClosed) {
  // A point exactly `horizon` old must survive: prediction windows are
  // closed intervals, so evicting it would shorten the oldest window by
  // one sample.
  PriceHistory history;
  history.SetRetention(Seconds(10));
  history.Record(Seconds(10), 1.0);
  history.Record(Seconds(20), 2.0);  // t=10 is exactly 10s old: retained
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history.at(0).at, Seconds(10));
  history.Record(Seconds(20) + 1, 3.0);  // now 10s + 1us old: evicted
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history.at(0).at, Seconds(20));
}

TEST(PriceHistoryTest, RetentionZeroDisablesTimeEviction) {
  PriceHistory history;
  for (int i = 0; i < 100; ++i)
    history.Record(sim::Hours(i), static_cast<double>(i));
  EXPECT_EQ(history.size(), 100u);
}

TEST(PriceHistoryTest, SetRetentionAppliesOnNextRecord) {
  PriceHistory history;
  for (int i = 0; i < 10; ++i)
    history.Record(Seconds(i), static_cast<double>(i));
  history.SetRetention(Seconds(2));
  history.Record(Seconds(10), 10.0);
  // Closed window [8, 10] survives.
  ASSERT_EQ(history.size(), 3u);
  EXPECT_EQ(history.at(0).at, Seconds(8));
}

TEST(PriceHistoryTest, CapacityAndRetentionCompose) {
  PriceHistory history(3);  // capacity tighter than the horizon
  history.SetRetention(Seconds(100));
  for (int i = 0; i < 8; ++i)
    history.Record(Seconds(i), static_cast<double>(i));
  EXPECT_EQ(history.size(), 3u);
  EXPECT_EQ(history.at(0).at, Seconds(5));
}

TEST(PriceHistoryTest, JournalAndRecoverRoundTrip) {
  const fs::path dir = FreshDir("roundtrip");
  auto store = store::DurableStore::Open(dir.string());
  ASSERT_TRUE(store.ok());
  PriceHistory history;
  history.AttachStore(store->get());
  for (int i = 0; i < 5; ++i)
    history.Record(Seconds(i * 10), 0.5 + i);

  PriceHistory recovered;
  recovered.AttachStore(store->get());
  auto stats = recovered.RecoverFromStore();
  ASSERT_TRUE(stats.ok()) << stats.status().message();
  EXPECT_EQ(stats->replayed_records, 5u);
  ASSERT_EQ(recovered.size(), history.size());
  for (std::size_t i = 0; i < history.size(); ++i) {
    EXPECT_EQ(recovered.at(i).at, history.at(i).at);
    EXPECT_DOUBLE_EQ(recovered.at(i).price, history.at(i).price);
  }
}

TEST(PriceHistoryTest, RecoveryRespectsRetention) {
  const fs::path dir = FreshDir("retention");
  auto store = store::DurableStore::Open(dir.string());
  ASSERT_TRUE(store.ok());
  {
    PriceHistory history;
    history.AttachStore(store->get());
    for (int i = 0; i <= 10; ++i)
      history.Record(Seconds(i * 10), static_cast<double>(i));
  }
  // The journal holds all 11 points, but a bounded reader only keeps the
  // trailing window.
  PriceHistory recovered;
  recovered.SetRetention(Seconds(20));
  recovered.AttachStore(store->get());
  ASSERT_TRUE(recovered.RecoverFromStore().ok());
  ASSERT_EQ(recovered.size(), 3u);  // closed window [80, 100]
  EXPECT_EQ(recovered.at(0).at, Seconds(80));
}

TEST(PriceHistoryTest, CrashLosesWindowUntilRecovered) {
  const fs::path dir = FreshDir("crash");
  auto store = store::DurableStore::Open(dir.string());
  ASSERT_TRUE(store.ok());
  PriceHistory history;
  history.AttachStore(store->get());
  history.Record(Seconds(10), 1.25);
  history.Record(Seconds(20), 2.5);
  history.Clear();
  EXPECT_TRUE(history.empty());
  ASSERT_TRUE(history.RecoverFromStore().ok());
  ASSERT_EQ(history.size(), 2u);
  EXPECT_DOUBLE_EQ(history.back().price, 2.5);
  // Journaling continues seamlessly after recovery.
  history.Record(Seconds(30), 3.75);
  PriceHistory again;
  again.AttachStore(store->get());
  ASSERT_TRUE(again.RecoverFromStore().ok());
  EXPECT_EQ(again.size(), 3u);
}

}  // namespace
}  // namespace gm::market
