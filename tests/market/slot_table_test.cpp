#include "market/slot_table.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "math/distributions.hpp"

namespace gm::market {
namespace {

double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(SlotTableTest, SingleSampleInRightSlot) {
  SlotTable table(10, 10, 1.0);  // slots of width 0.1
  table.Add(0.55);
  const auto proportions = table.Proportions();
  EXPECT_DOUBLE_EQ(proportions[5], 1.0);
  EXPECT_DOUBLE_EQ(Sum(proportions), 1.0);
}

TEST(SlotTableTest, ProportionsSumToOne) {
  Rng rng(3);
  SlotTable table(20, 10, 1.0);
  for (int i = 0; i < 137; ++i) table.Add(rng.NextDouble());
  EXPECT_NEAR(Sum(table.Proportions()), 1.0, 1e-12);
}

TEST(SlotTableTest, DualArrayLagAndWeights) {
  SlotTable table(10, 10, 1.0);
  // First n snapshots go only to array 0.
  for (int i = 0; i < 10; ++i) table.Add(0.05);
  EXPECT_EQ(table.array_count(0), 10u);
  EXPECT_EQ(table.array_count(1), 0u);
  EXPECT_DOUBLE_EQ(table.Weight1(), 1.0);  // exactly n snapshots
  // Next n snapshots go to both.
  for (int i = 0; i < 10; ++i) table.Add(0.05);
  EXPECT_EQ(table.array_count(0), 20u);
  EXPECT_EQ(table.array_count(1), 10u);
  // Array 0 is at 2n (weight 0), array 1 at n (weight 1).
  EXPECT_DOUBLE_EQ(table.Weight1(), 0.0);
}

TEST(SlotTableTest, ArraysResetAtTwiceWindow) {
  SlotTable table(5, 10, 1.0);
  for (int i = 0; i < 11; ++i) table.Add(0.5);
  // Array 0 reached 10 = 2n and restarted on snapshot 11.
  EXPECT_EQ(table.array_count(0), 1u);
  EXPECT_EQ(table.array_count(1), 6u);
}

TEST(SlotTableTest, CountsDifferByWindowInSteadyState) {
  SlotTable table(7, 10, 1.0);
  for (int i = 0; i < 100; ++i) {
    table.Add(0.3);
    if (i >= 14) {
      const long diff = static_cast<long>(table.array_count(0)) -
                        static_cast<long>(table.array_count(1));
      EXPECT_EQ(std::abs(diff), 7) << "at snapshot " << i;
    }
  }
}

TEST(SlotTableTest, WindowedDistributionForgetsOldRegime) {
  // Feed one window of low prices, then two windows of high prices: the
  // reported distribution should be dominated by the new regime.
  SlotTable table(20, 10, 1.0);
  for (int i = 0; i < 20; ++i) table.Add(0.05);   // slot 0
  for (int i = 0; i < 40; ++i) table.Add(0.95);   // slot 9
  const auto proportions = table.Proportions();
  EXPECT_GT(proportions[9], 0.9);
  EXPECT_LT(proportions[0], 0.1);
}

TEST(SlotTableTest, SelfAdjustingRangeExpansion) {
  SlotTable table(10, 10, 1.0);
  table.Add(0.95);  // last slot of [0, 1)
  EXPECT_DOUBLE_EQ(table.slot_width(), 0.1);
  table.Add(3.7);  // forces expansion to [0, 4)
  EXPECT_DOUBLE_EQ(table.slot_width(), 0.4);
  EXPECT_DOUBLE_EQ(table.max_value(), 4.0);
  const auto proportions = table.Proportions();
  // 0.95 now falls in slot 2 ([0.8, 1.2)), 3.7 in slot 9.
  EXPECT_DOUBLE_EQ(proportions[2], 0.5);
  EXPECT_DOUBLE_EQ(proportions[9], 0.5);
}

TEST(SlotTableTest, ExpansionPreservesTotalMass) {
  Rng rng(5);
  SlotTable table(50, 20, 0.1);
  for (int i = 0; i < 200; ++i) table.Add(rng.NextDouble() * 10.0);
  EXPECT_NEAR(Sum(table.Proportions()), 1.0, 1e-12);
  EXPECT_GE(table.max_value(), 10.0);
}

TEST(SlotTableTest, ApproximatesStationaryDistribution) {
  // Paper Figure 7: window approximation tracks the true distribution.
  Rng rng(11);
  math::BetaSampler sampler(5.0, 1.0);  // left-skewed on [0, 1]
  SlotTable table(200, 10, 1.0);
  std::vector<double> exact(10, 0.0);
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double x = sampler.Sample(rng);
    table.Add(x);
    exact[std::min(static_cast<std::size_t>(x / table.slot_width()),
                   std::size_t{9})] += 1.0;
  }
  const auto approx = table.Proportions();
  for (std::size_t j = 0; j < 10; ++j) {
    EXPECT_NEAR(approx[j], exact[j] / n, 0.08) << "slot " << j;
  }
  // Beta(5,1) mass concentrates near 1.
  EXPECT_GT(approx[9], 0.3);
}

TEST(SlotTableTest, EmptyTableReportsZeros) {
  SlotTable table(10, 10, 1.0);
  EXPECT_DOUBLE_EQ(Sum(table.Proportions()), 0.0);
}

}  // namespace
}  // namespace gm::market
