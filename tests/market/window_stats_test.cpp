#include "market/window_stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "math/distributions.hpp"

namespace gm::market {
namespace {

TEST(WindowMomentsTest, AlphaFromWindowSize) {
  EXPECT_DOUBLE_EQ(WindowMoments(1).alpha(), 0.0);
  EXPECT_DOUBLE_EQ(WindowMoments(4).alpha(), 0.75);
  EXPECT_DOUBLE_EQ(WindowMoments(100).alpha(), 0.99);
}

TEST(WindowMomentsTest, FirstSampleSeedsMoments) {
  WindowMoments m(10);
  m.Add(2.0);
  EXPECT_DOUBLE_EQ(m.mean(), 2.0);
  EXPECT_DOUBLE_EQ(m.RawMoment(2), 4.0);
  EXPECT_DOUBLE_EQ(m.RawMoment(3), 8.0);
  EXPECT_DOUBLE_EQ(m.RawMoment(4), 16.0);
  EXPECT_DOUBLE_EQ(m.stddev(), 0.0);
}

TEST(WindowMomentsTest, WindowOneIgnoresHistory) {
  // alpha = 0: each sample fully replaces the state (paper: "for window
  // size 1, the previously calculated moments are ignored").
  WindowMoments m(1);
  m.Add(10.0);
  m.Add(3.0);
  EXPECT_DOUBLE_EQ(m.mean(), 3.0);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
}

TEST(WindowMomentsTest, ConstantStreamHasZeroSpread) {
  WindowMoments m(50);
  for (int i = 0; i < 500; ++i) m.Add(7.5);
  EXPECT_DOUBLE_EQ(m.mean(), 7.5);
  EXPECT_NEAR(m.variance(), 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.skewness(), 0.0);
  EXPECT_DOUBLE_EQ(m.kurtosis(), 0.0);
}

TEST(WindowMomentsTest, ConvergesToDistributionMoments) {
  Rng rng(42);
  math::NormalSampler sampler(5.0, 2.0);
  WindowMoments m(2000);
  for (int i = 0; i < 60000; ++i) m.Add(sampler.Sample(rng));
  EXPECT_NEAR(m.mean(), 5.0, 0.15);
  EXPECT_NEAR(m.stddev(), 2.0, 0.15);
  EXPECT_NEAR(m.skewness(), 0.0, 0.2);
  EXPECT_NEAR(m.kurtosis(), 0.0, 0.4);
}

TEST(WindowMomentsTest, ExponentialStreamIsRightSkewed) {
  Rng rng(7);
  math::ExponentialSampler sampler(1.0);
  WindowMoments m(2000);
  for (int i = 0; i < 60000; ++i) m.Add(sampler.Sample(rng));
  // Exponential: skewness 2, excess kurtosis 6.
  EXPECT_NEAR(m.mean(), 1.0, 0.1);
  EXPECT_NEAR(m.skewness(), 2.0, 0.5);
  EXPECT_GT(m.kurtosis(), 2.0);
}

TEST(WindowMomentsTest, SmallWindowTracksLevelShiftFaster) {
  WindowMoments fast(10);
  WindowMoments slow(1000);
  for (int i = 0; i < 200; ++i) {
    fast.Add(1.0);
    slow.Add(1.0);
  }
  for (int i = 0; i < 50; ++i) {
    fast.Add(10.0);
    slow.Add(10.0);
  }
  // The small window should be much closer to the new level.
  EXPECT_GT(fast.mean(), 9.0);
  EXPECT_LT(slow.mean(), 2.0);
}

TEST(WindowMomentsTest, PriceSpikesRaiseKurtosis) {
  // Paper: "a high value of kurtosis indicates that a large portion of the
  // standard deviation is due to a few very high price peaks."
  WindowMoments m(500);
  for (int i = 0; i < 5000; ++i) m.Add(i % 100 == 0 ? 50.0 : 1.0);
  EXPECT_GT(m.kurtosis(), 10.0);
  EXPECT_GT(m.skewness(), 3.0);
}

TEST(WindowMomentsTest, ResetClearsState) {
  WindowMoments m(10);
  m.Add(5.0);
  m.Reset();
  EXPECT_EQ(m.count(), 0u);
  m.Add(1.0);
  EXPECT_DOUBLE_EQ(m.mean(), 1.0);
}

}  // namespace
}  // namespace gm::market
