#include "market/auctioneer.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace gm::market {
namespace {

using sim::Seconds;

host::HostSpec SmallHost() {
  host::HostSpec spec;
  spec.id = "h1";
  spec.cpus = 2;
  spec.cycles_per_cpu = 100.0;
  spec.virtualization_overhead = 0.0;
  spec.vm_boot_time = 0;
  spec.max_vms = 10;
  return spec;
}

class AuctioneerTest : public ::testing::Test {
 protected:
  AuctioneerTest() : host_(SmallHost()), auctioneer_(host_, kernel_) {}

  /// Open + fund + bid + enqueue work for a user in one step.
  host::VirtualMachine* Join(const std::string& user, Money funds,
                             Rate rate, sim::SimTime deadline,
                             Cycles work = 1e12) {
    EXPECT_TRUE(auctioneer_.OpenAccount(user).ok());
    EXPECT_TRUE(auctioneer_.Fund(user, funds).ok());
    EXPECT_TRUE(auctioneer_.SetBid(user, rate, deadline).ok());
    auto vm = auctioneer_.AcquireVm(user);
    EXPECT_TRUE(vm.ok());
    if (work > 0) (*vm)->Enqueue({next_work_id_++, work, nullptr});
    return *vm;
  }

  sim::Kernel kernel_;
  host::PhysicalHost host_;
  Auctioneer auctioneer_;
  std::uint64_t next_work_id_ = 1;
};

TEST_F(AuctioneerTest, AccountLifecycle) {
  EXPECT_TRUE(auctioneer_.OpenAccount("alice").ok());
  EXPECT_EQ(auctioneer_.OpenAccount("alice").code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(auctioneer_.Fund("alice", Money::FromMicros(100)).ok());
  EXPECT_EQ(auctioneer_.Balance("alice").value(), Money::FromMicros(100));
  EXPECT_FALSE(auctioneer_.Fund("bob", Money::FromMicros(100)).ok());
  EXPECT_FALSE(auctioneer_.Fund("alice", Money::Zero()).ok());
  const auto refund = auctioneer_.CloseAccount("alice");
  ASSERT_TRUE(refund.ok());
  EXPECT_EQ(*refund, Money::FromMicros(100));
  EXPECT_FALSE(auctioneer_.HasAccount("alice"));
}

TEST_F(AuctioneerTest, VmRequiresAccount) {
  EXPECT_EQ(auctioneer_.AcquireVm("ghost").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(AuctioneerTest, AcquireVmIsIdempotent) {
  ASSERT_TRUE(auctioneer_.OpenAccount("alice").ok());
  const auto a = auctioneer_.AcquireVm("alice");
  const auto b = auctioneer_.AcquireVm("alice");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);  // one VM per user per host
}

TEST_F(AuctioneerTest, SpotPriceSumsActiveBids) {
  Join("alice", Money::Dollars(100), Rate::MicrosPerSec(500), Seconds(1000));
  Join("bob", Money::Dollars(100), Rate::MicrosPerSec(300), Seconds(1000));
  EXPECT_EQ(auctioneer_.SpotPriceRate().micros_per_sec(), 800);
  // Price per capacity: $8e-4/s over 200 cycles/s... in micro terms.
  EXPECT_DOUBLE_EQ(auctioneer_.PricePerCapacity(),
                   MicrosToDollars(800) / 200.0);
}

TEST_F(AuctioneerTest, ExpiredAndUnfundedBidsExcludedFromPrice) {
  Join("alice", Money::Dollars(100), Rate::MicrosPerSec(500), Seconds(5));
  kernel_.RunUntil(Seconds(10));
  EXPECT_TRUE(auctioneer_.SpotPriceRate().is_zero());  // deadline passed
  ASSERT_TRUE(auctioneer_.OpenAccount("bob").ok());
  ASSERT_TRUE(
      auctioneer_.SetBid("bob", Rate::MicrosPerSec(300), Seconds(1000)).ok());
  EXPECT_TRUE(auctioneer_.SpotPriceRate().is_zero());  // no funds
}

TEST_F(AuctioneerTest, TickChargesProportionallyToUse) {
  Join("alice", Money::Dollars(100), Rate::MicrosPerSec(1000), Seconds(1000));
  auctioneer_.Start();
  kernel_.RunUntil(Seconds(10));  // one interval
  // Fully used share: pays rate * 10 s.
  EXPECT_EQ(auctioneer_.Spent("alice").value(), Money::FromMicros(10000));
  EXPECT_EQ(auctioneer_.Balance("alice").value(),
            Money::Dollars(100) - Money::FromMicros(10000));
  EXPECT_EQ(auctioneer_.total_revenue(), Money::FromMicros(10000));
}

TEST_F(AuctioneerTest, IdleVmIsNotCharged) {
  Join("alice", Money::Dollars(100), Rate::MicrosPerSec(1000), Seconds(1000),
       /*work=*/0);
  auctioneer_.Start();
  kernel_.RunUntil(Seconds(30));
  EXPECT_EQ(auctioneer_.Spent("alice").value(), Money::Zero());
  EXPECT_EQ(auctioneer_.Balance("alice").value(), Money::Dollars(100));
}

TEST_F(AuctioneerTest, PartialUseChargesFraction) {
  // 100 cycles of work, host grants 200 cycles/s for 10 s => uses 5% of
  // the granted capacity => pays 5% of rate * dt... with a 2-CPU host and
  // single vCPU cap 100/s the VM gets 100/s => uses 1% of 10 s.
  host::VirtualMachine* vm = Join("alice", Money::Dollars(100),
                                  Rate::MicrosPerSec(1000), Seconds(1000),
                                  /*work=*/0);
  vm->Enqueue({99, 100.0, nullptr});
  auctioneer_.Start();
  kernel_.RunUntil(Seconds(10));
  // granted = 100 cycles/s (vCPU cap), offered = 1000 cycles, used = 100
  // -> fraction 0.1 -> cost = 1000 µ$/s * 10 s * 0.1 = 1000 µ$.
  EXPECT_EQ(auctioneer_.Spent("alice").value(), Money::FromMicros(1000));
}

TEST_F(AuctioneerTest, HigherBidGetsProportionallyMoreCpu) {
  host::VirtualMachine* alice =
      Join("alice", Money::Dollars(100), Rate::MicrosPerSec(3000),
           Seconds(1000));
  host::VirtualMachine* bob =
      Join("bob", Money::Dollars(100), Rate::MicrosPerSec(1000),
           Seconds(1000));
  host::VirtualMachine* carol =
      Join("carol", Money::Dollars(100), Rate::MicrosPerSec(1000),
           Seconds(1000));
  auctioneer_.Start();
  kernel_.RunUntil(Seconds(100));
  // Weights 3:1:1 on 200 cycles/s with a 100 cap: alice capped at 100,
  // bob and carol share the rest 50/50.
  EXPECT_NEAR(alice->delivered_cycles(), 100.0 * 100, 1.0);
  EXPECT_NEAR(bob->delivered_cycles(), 50.0 * 100, 1.0);
  EXPECT_NEAR(carol->delivered_cycles(), 50.0 * 100, 1.0);
}

TEST_F(AuctioneerTest, BalanceExhaustionStopsService) {
  // Funds for exactly 5 intervals at full use.
  host::VirtualMachine* vm =
      Join("alice", Money::FromMicros(50'000), Rate::MicrosPerSec(1000),
           Seconds(100000));
  auctioneer_.Start();
  kernel_.RunUntil(Seconds(200));
  EXPECT_EQ(auctioneer_.Balance("alice").value(), Money::Zero());
  EXPECT_EQ(auctioneer_.Spent("alice").value(), Money::FromMicros(50'000));
  // Work stops once the account drains: 50 s of CPU at 100 cycles/s.
  EXPECT_NEAR(vm->delivered_cycles(), 5000.0, 1.0);
}

TEST_F(AuctioneerTest, PriceHistoryRecordedEveryTick) {
  Join("alice", Money::Dollars(100), Rate::MicrosPerSec(800), Seconds(1000));
  auctioneer_.Start();
  kernel_.RunUntil(Seconds(50));
  EXPECT_EQ(auctioneer_.history().size(), 5u);
  EXPECT_DOUBLE_EQ(auctioneer_.history().back().price,
                   MicrosToDollars(800) / 200.0);
}

TEST_F(AuctioneerTest, WindowStatsAndDistributionsFed) {
  Join("alice", Money::Dollars(100), Rate::MicrosPerSec(800), Seconds(1000));
  auctioneer_.Start();
  kernel_.RunUntil(Seconds(100));
  const auto moments = auctioneer_.Moments("hour");
  ASSERT_TRUE(moments.ok());
  EXPECT_GT((*moments)->mean(), 0.0);
  const auto table = auctioneer_.Distribution("hour");
  ASSERT_TRUE(table.ok());
  EXPECT_GT(table.value()->slot_count(), 0u);
  EXPECT_FALSE(auctioneer_.Moments("decade").ok());
}

TEST_F(AuctioneerTest, CloseAccountRefundsUnusedBalance) {
  Join("alice", Money::Dollars(100), Rate::MicrosPerSec(1000), Seconds(1000));
  auctioneer_.Start();
  kernel_.RunUntil(Seconds(20));
  const Money spent = auctioneer_.Spent("alice").value();
  const auto refund = auctioneer_.CloseAccount("alice");
  ASSERT_TRUE(refund.ok());
  EXPECT_EQ(*refund + spent, Money::Dollars(100));
  // The VM is gone too.
  EXPECT_EQ(host_.vm_count(), 0u);
}

TEST_F(AuctioneerTest, WorkCompletionDuringTicks) {
  host::VirtualMachine* vm = Join("alice", Money::Dollars(100),
                                  Rate::MicrosPerSec(1000), Seconds(1000),
                                  /*work=*/0);
  sim::SimTime completed_at = -1;
  // 250 cycles at 100 cycles/s = 2.5 s into the first interval.
  vm->Enqueue({1, 250.0, [&](sim::SimTime t) { completed_at = t; }});
  auctioneer_.Start();
  kernel_.RunUntil(Seconds(10));
  EXPECT_EQ(completed_at, sim::Seconds(2.5));
}

TEST_F(AuctioneerTest, CrashedHostWarmStartsForecasterWindowFromJournal) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / "gm_auct_warm";
  std::filesystem::remove_all(dir);
  auto store = store::DurableStore::Open(dir.string());
  ASSERT_TRUE(store.ok());
  auctioneer_.AttachStore(store->get());

  Join("alice", Money::Dollars(100), Rate::MicrosPerSec(1000), sim::Hours(2));
  auctioneer_.Start();
  kernel_.RunUntil(sim::Minutes(30));
  const std::size_t points_before = auctioneer_.history().size();
  ASSERT_GT(points_before, 0u);
  const auto moments_before = auctioneer_.Moments("hour");
  ASSERT_TRUE(moments_before.ok());
  const double mean_before = (*moments_before)->mean();
  ASSERT_GT(mean_before, 0.0);

  // Crash: the in-memory window and the window statistics built from it
  // are gone.
  auctioneer_.CrashStorageState();
  EXPECT_TRUE(auctioneer_.history().empty());
  EXPECT_DOUBLE_EQ((*auctioneer_.Moments("hour"))->mean(), 0.0);

  // Restart: the journal replays the window, and re-feeding it into the
  // statistics warm-starts the forecasters at their pre-crash view.
  auto stats = auctioneer_.RecoverHistory();
  ASSERT_TRUE(stats.ok()) << stats.status().message();
  EXPECT_EQ(auctioneer_.history().size(), points_before);
  const auto moments_after = auctioneer_.Moments("hour");
  ASSERT_TRUE(moments_after.ok());
  EXPECT_DOUBLE_EQ((*moments_after)->mean(), mean_before);
}

TEST_F(AuctioneerTest, ExcludedSpotPriceTracksSameTickRemovals) {
  // Regression guard for the incremental spot-price maintenance: the
  // excluded price (the y_j a Best Response agent bids against) must
  // track bid removals, re-bids and deadline lapses the instant they
  // happen — between ticks, with no Tick() re-sum to repair the total.
  Join("alice", Money::Dollars(100), Rate::MicrosPerSec(500), Seconds(1000));
  Join("bob", Money::Dollars(100), Rate::MicrosPerSec(300), Seconds(1000));
  Join("carol", Money::Dollars(100), Rate::MicrosPerSec(200), Seconds(600));
  EXPECT_EQ(auctioneer_.SpotPriceRateExcluding("alice").micros_per_sec(), 500);

  // Same-tick removal: bob's account closes (escrow reclaimed); the
  // excluded price drops immediately.
  ASSERT_TRUE(auctioneer_.CloseAccount("bob").ok());
  EXPECT_EQ(auctioneer_.SpotPriceRate().micros_per_sec(), 700);
  EXPECT_EQ(auctioneer_.SpotPriceRateExcluding("alice").micros_per_sec(), 200);

  // Same-tick re-bid: the exclusion must use the replacement rate, not
  // the stale one.
  ASSERT_TRUE(auctioneer_
                  .SetBid("alice", Rate::MicrosPerSec(250), Seconds(1000))
                  .ok());
  EXPECT_EQ(auctioneer_.SpotPriceRateExcluding("carol").micros_per_sec(), 250);

  // Deadline lapse with no intervening Tick: advancing the clock alone
  // must expire carol's bid from both the total and the exclusion.
  kernel_.RunUntil(Seconds(700));
  EXPECT_EQ(auctioneer_.SpotPriceRate().micros_per_sec(), 250);
  EXPECT_EQ(auctioneer_.SpotPriceRateExcluding("carol").micros_per_sec(), 250);
  EXPECT_EQ(auctioneer_.SpotPriceRateExcluding("alice").micros_per_sec(), 0);

  // And an expired bidder who re-bids past the lapse comes back.
  ASSERT_TRUE(auctioneer_
                  .SetBid("carol", Rate::MicrosPerSec(200), Seconds(2000))
                  .ok());
  EXPECT_EQ(auctioneer_.SpotPriceRate().micros_per_sec(), 450);
  EXPECT_EQ(auctioneer_.SpotPriceRateExcluding("alice").micros_per_sec(), 200);
}

TEST_F(AuctioneerTest, HistoryRetentionDefaultsToLongestWindow) {
  // With no explicit override, the retention horizon must cover the
  // longest prediction window ("week") so warm-started statistics see a
  // full window.
  EXPECT_GE(auctioneer_.history().retention(), 7 * sim::kDay);
}

}  // namespace
}  // namespace gm::market
