#include "market/sls.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <optional>

namespace gm::market {
namespace {

using sim::Minutes;
using sim::Seconds;

HostRecord MakeRecord(const std::string& id, double price,
                      double cycles = 100.0, std::size_t vms = 0,
                      int max_vms = 10) {
  HostRecord record;
  record.host_id = id;
  record.site = "test-site";
  record.cpus = 2;
  record.cycles_per_cpu = cycles;
  record.price_per_capacity = price;
  record.vm_count = vms;
  record.max_vms = max_vms;
  return record;
}

class SlsTest : public ::testing::Test {
 protected:
  sim::Kernel kernel_;
  ServiceLocationService sls_{kernel_, Minutes(5)};
};

TEST_F(SlsTest, PublishAndLookup) {
  sls_.Publish(MakeRecord("h1", 0.5));
  const auto record = sls_.Lookup("h1");
  ASSERT_TRUE(record.ok());
  EXPECT_DOUBLE_EQ(record->price_per_capacity, 0.5);
  EXPECT_FALSE(sls_.Lookup("h2").ok());
}

TEST_F(SlsTest, PublishUpserts) {
  sls_.Publish(MakeRecord("h1", 0.5));
  sls_.Publish(MakeRecord("h1", 0.9));
  EXPECT_DOUBLE_EQ(sls_.Lookup("h1")->price_per_capacity, 0.9);
  EXPECT_EQ(sls_.live_count(), 1u);
}

TEST_F(SlsTest, QuerySortsByPrice) {
  sls_.Publish(MakeRecord("expensive", 0.9));
  sls_.Publish(MakeRecord("cheap", 0.1));
  sls_.Publish(MakeRecord("middle", 0.5));
  const auto records = sls_.Query({});
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].host_id, "cheap");
  EXPECT_EQ(records[1].host_id, "middle");
  EXPECT_EQ(records[2].host_id, "expensive");
}

TEST_F(SlsTest, QueryFilters) {
  sls_.Publish(MakeRecord("slow", 0.1, /*cycles=*/50.0));
  sls_.Publish(MakeRecord("fast", 0.5, /*cycles=*/200.0));
  sls_.Publish(MakeRecord("full", 0.2, /*cycles=*/200.0, /*vms=*/10,
                          /*max_vms=*/10));

  HostQuery query;
  query.min_cycles_per_cpu = 100.0;
  query.require_vm_slot = true;
  const auto records = sls_.Query(query);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].host_id, "fast");

  HostQuery price_query;
  price_query.max_price_per_capacity = 0.3;
  EXPECT_EQ(sls_.Query(price_query).size(), 2u);  // slow + full

  HostQuery limited;
  limited.limit = 2;
  EXPECT_EQ(sls_.Query(limited).size(), 2u);
}

TEST_F(SlsTest, RecordsExpireWithoutHeartbeat) {
  sls_.Publish(MakeRecord("h1", 0.5));
  kernel_.RunUntil(Minutes(4));
  EXPECT_EQ(sls_.live_count(), 1u);
  kernel_.RunUntil(Minutes(6));
  EXPECT_EQ(sls_.live_count(), 0u);
  EXPECT_FALSE(sls_.Lookup("h1").ok());
  EXPECT_TRUE(sls_.Query({}).empty());
}

TEST_F(SlsTest, RemoveDeletesRecord) {
  sls_.Publish(MakeRecord("h1", 0.5));
  EXPECT_TRUE(sls_.Remove("h1").ok());
  EXPECT_FALSE(sls_.Remove("h1").ok());
  EXPECT_FALSE(sls_.Lookup("h1").ok());
}

TEST_F(SlsTest, PublisherHeartbeatsAuctioneerState) {
  host::HostSpec spec;
  spec.id = "h9";
  spec.cpus = 2;
  spec.cycles_per_cpu = 100.0;
  spec.virtualization_overhead = 0.0;
  spec.vm_boot_time = 0;
  host::PhysicalHost host(spec);
  Auctioneer auctioneer(host, kernel_);
  ASSERT_TRUE(auctioneer.OpenAccount("alice").ok());
  ASSERT_TRUE(auctioneer.Fund("alice", Money::FromMicros(1000000)).ok());
  ASSERT_TRUE(
      auctioneer.SetBid("alice", Rate::MicrosPerSec(400), sim::Hours(10)).ok());

  SlsPublisher publisher(auctioneer, sls_, "hp-palo-alto", kernel_,
                         Minutes(1));
  // Published immediately at construction.
  const auto record = sls_.Lookup("h9");
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->site, "hp-palo-alto");
  EXPECT_DOUBLE_EQ(record->price_per_capacity,
                   MicrosToDollars(400) / 200.0);

  // Heartbeats keep the record alive well past the TTL.
  kernel_.RunUntil(Minutes(20));
  EXPECT_TRUE(sls_.Lookup("h9").ok());
}

TEST(SlsWireTest, HostRecordRoundTrip) {
  HostRecord record = MakeRecord("h1", 0.25, 123.0, 3, 15);
  record.mean_price = 0.2;
  record.stddev_price = 0.05;
  record.updated_at = 999;
  net::Writer writer;
  WriteHostRecord(writer, record);
  net::Reader reader(writer.data());
  const auto decoded = ReadHostRecord(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->host_id, "h1");
  EXPECT_EQ(decoded->site, "test-site");
  EXPECT_DOUBLE_EQ(decoded->price_per_capacity, 0.25);
  EXPECT_DOUBLE_EQ(decoded->mean_price, 0.2);
  EXPECT_EQ(decoded->vm_count, 3u);
  EXPECT_EQ(decoded->max_vms, 15);
  EXPECT_EQ(decoded->updated_at, 999);
}


namespace fs = std::filesystem;

fs::path SlsFreshDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("gm_sls_" + name);
  fs::remove_all(dir);
  return dir;
}

TEST(SlsDurabilityTest, DirectorySurvivesRecovery) {
  const fs::path dir = SlsFreshDir("survive");
  auto store = store::DurableStore::Open(dir.string());
  ASSERT_TRUE(store.ok());
  sim::Kernel kernel;
  {
    ServiceLocationService sls(kernel);
    sls.AttachStore(store->get());
    sls.Publish(MakeRecord("h1", 0.5));
    sls.Publish(MakeRecord("h2", 0.1));
    ASSERT_TRUE(sls.Remove("h1").ok());
  }
  ServiceLocationService recovered(kernel);
  recovered.AttachStore(store->get());
  auto stats = recovered.RecoverFromStore();
  ASSERT_TRUE(stats.ok()) << stats.status().message();
  EXPECT_EQ(stats->replayed_records, 3u);
  EXPECT_EQ(recovered.live_count(), 1u);
  EXPECT_FALSE(recovered.Lookup("h1").ok());
  EXPECT_DOUBLE_EQ(recovered.Lookup("h2")->price_per_capacity, 0.1);
}

TEST(SlsDurabilityTest, RecoveryRevalidatesLiveness) {
  const fs::path dir = SlsFreshDir("liveness");
  auto store = store::DurableStore::Open(dir.string());
  ASSERT_TRUE(store.ok());
  sim::Kernel kernel;
  ServiceLocationService sls(kernel, sim::Minutes(5));
  sls.AttachStore(store->get());
  sls.Publish(MakeRecord("stale-host", 0.5));  // heartbeat at t=0
  kernel.RunUntil(sim::Minutes(10));
  sls.Publish(MakeRecord("fresh-host", 0.2));  // heartbeat at t=10min

  // The host directory a recovering SLS replays contains both
  // registrations, but stale-host's TTL lapsed while it was down: it
  // must not be resurrected as a live allocation target.
  ServiceLocationService recovered(kernel, sim::Minutes(5));
  recovered.AttachStore(store->get());
  ASSERT_TRUE(recovered.RecoverFromStore().ok());
  EXPECT_EQ(recovered.stale_dropped(), 1u);
  EXPECT_FALSE(recovered.Lookup("stale-host").ok());
  EXPECT_TRUE(recovered.Lookup("fresh-host").ok());
  EXPECT_EQ(recovered.live_count(), 1u);
}

TEST(SlsDurabilityTest, CrashAndRecoverInPlace) {
  const fs::path dir = SlsFreshDir("crash");
  auto store = store::DurableStore::Open(dir.string());
  ASSERT_TRUE(store.ok());
  sim::Kernel kernel;
  ServiceLocationService sls(kernel);
  sls.AttachStore(store->get());
  sls.Publish(MakeRecord("h1", 0.4));
  sls.Clear();  // crash: directory gone
  EXPECT_EQ(sls.live_count(), 0u);
  ASSERT_TRUE(sls.RecoverFromStore().ok());
  EXPECT_EQ(sls.live_count(), 1u);
  // Journaling continues after recovery; a second recovery sees both.
  sls.Publish(MakeRecord("h2", 0.6));
  sls.Clear();
  ASSERT_TRUE(sls.RecoverFromStore().ok());
  EXPECT_EQ(sls.live_count(), 2u);
}

TEST(SlsRpcTest, QueryOverNetwork) {
  sim::Kernel kernel;
  net::MessageBus bus(kernel, net::LatencyModel::Lan(), 17);
  ServiceLocationService sls(kernel);
  SlsService service(sls, bus);
  sls.Publish(MakeRecord("h1", 0.5));
  sls.Publish(MakeRecord("h2", 0.1));

  SlsClient client(bus, "agent-1");
  std::optional<std::vector<HostRecord>> result;
  HostQuery query;
  query.limit = 5;
  client.Query(query, [&](Result<std::vector<HostRecord>> r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    result = std::move(*r);
  });
  kernel.Run();
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0].host_id, "h2");  // cheapest first
}

TEST(SlsRpcTest, PublishOverNetwork) {
  sim::Kernel kernel;
  net::MessageBus bus(kernel, net::LatencyModel::Lan(), 18);
  ServiceLocationService sls(kernel);
  SlsService service(sls, bus);
  SlsClient client(bus, "agent-1");
  std::optional<Status> status;
  client.Publish(MakeRecord("h7", 0.3), [&](Status s) { status = s; });
  kernel.Run();
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->ok());
  EXPECT_TRUE(sls.Lookup("h7").ok());
}

}  // namespace
}  // namespace gm::market
