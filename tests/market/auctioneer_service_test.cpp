#include "market/auctioneer_service.hpp"

#include <gtest/gtest.h>

#include <optional>

namespace gm::market {
namespace {

class AuctioneerServiceTest : public ::testing::Test {
 protected:
  AuctioneerServiceTest()
      : bus_(kernel_, net::LatencyModel::Lan(), 7),
        host_([] {
          host::HostSpec spec;
          spec.id = "h1";
          spec.cpus = 2;
          spec.cycles_per_cpu = 100.0;
          spec.virtualization_overhead = 0.0;
          spec.vm_boot_time = 0;
          return spec;
        }()),
        auctioneer_(host_, kernel_),
        service_(auctioneer_, bus_),
        client_(bus_, "agent-1") {}

  sim::Kernel kernel_;
  net::MessageBus bus_;
  host::PhysicalHost host_;
  Auctioneer auctioneer_;
  AuctioneerService service_;
  AuctioneerClient client_;
};

TEST_F(AuctioneerServiceTest, EndpointDerivedFromHostId) {
  EXPECT_EQ(service_.endpoint(), "auctioneer/h1");
}

TEST_F(AuctioneerServiceTest, FullAccountLifecycleOverRpc) {
  std::optional<Status> opened;
  client_.OpenAccount("auctioneer/h1", "alice",
                      [&](Status s) { opened = s; });
  kernel_.Run();
  ASSERT_TRUE(opened.has_value());
  ASSERT_TRUE(opened->ok());

  std::optional<Status> funded;
  client_.Fund("auctioneer/h1", "alice", Money::FromMicros(5000),
               [&](Status s) { funded = s; });
  kernel_.Run();
  ASSERT_TRUE(funded.has_value() && funded->ok());

  std::optional<Status> bid;
  client_.SetBid("auctioneer/h1", "alice", Rate::MicrosPerSec(40),
                 sim::Hours(1), [&](Status s) { bid = s; });
  kernel_.Run();
  ASSERT_TRUE(bid.has_value() && bid->ok());
  EXPECT_EQ(auctioneer_.SpotPriceRate().micros_per_sec(), 40);

  std::optional<Result<Money>> balance;
  client_.Balance("auctioneer/h1", "alice",
                  [&](Result<Money> r) { balance = r; });
  kernel_.Run();
  ASSERT_TRUE(balance.has_value());
  ASSERT_TRUE(balance->ok());
  EXPECT_EQ(balance->value(), Money::FromMicros(5000));

  std::optional<Result<Money>> refund;
  client_.CloseAccount("auctioneer/h1", "alice",
                       [&](Result<Money> r) { refund = r; });
  kernel_.Run();
  ASSERT_TRUE(refund.has_value());
  ASSERT_TRUE(refund->ok());
  EXPECT_EQ(refund->value(), Money::FromMicros(5000));
  EXPECT_FALSE(auctioneer_.HasAccount("alice"));
}

TEST_F(AuctioneerServiceTest, ErrorsPropagateOverRpc) {
  std::optional<Status> fund_status;
  client_.Fund("auctioneer/h1", "ghost", Money::FromMicros(100),
               [&](Status s) { fund_status = s; });
  kernel_.Run();
  ASSERT_TRUE(fund_status.has_value());
  EXPECT_EQ(fund_status->code(), StatusCode::kNotFound);

  std::optional<Result<Money>> balance;
  client_.Balance("auctioneer/h1", "ghost",
                  [&](Result<Money> r) { balance = r; });
  kernel_.Run();
  ASSERT_TRUE(balance.has_value());
  EXPECT_FALSE(balance->ok());
}

TEST_F(AuctioneerServiceTest, PriceStatsSnapshot) {
  ASSERT_TRUE(auctioneer_.OpenAccount("alice").ok());
  ASSERT_TRUE(auctioneer_.Fund("alice", Money::FromMicros(100000)).ok());
  ASSERT_TRUE(
      auctioneer_.SetBid("alice", Rate::MicrosPerSec(60), sim::Hours(10)).ok());
  auctioneer_.Start();
  kernel_.RunUntil(sim::Minutes(2));

  std::optional<Result<PriceStatsSnapshot>> stats;
  client_.PriceStats("auctioneer/h1",
                     [&](Result<PriceStatsSnapshot> r) { stats = r; });
  kernel_.RunUntil(kernel_.now() + sim::Seconds(5));
  ASSERT_TRUE(stats.has_value());
  ASSERT_TRUE(stats->ok());
  EXPECT_EQ((*stats)->spot_rate.micros_per_sec(), 60);
  EXPECT_DOUBLE_EQ((*stats)->price_per_capacity,
                   MicrosToDollars(60) / 200.0);
  EXPECT_GE((*stats)->mean_day, 0.0);
}

TEST_F(AuctioneerServiceTest, UnreachableAuctioneerTimesOut) {
  std::optional<Status> status;
  client_.OpenAccount("auctioneer/ghost-host", "alice",
                      [&](Status s) { status = s; });
  kernel_.Run();
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->code(), StatusCode::kDeadlineExceeded);
}

TEST_F(AuctioneerServiceTest, SurvivesLossyNetworkWithRetries) {
  sim::Kernel kernel;
  net::MessageBus lossy(kernel, net::LatencyModel::Lossy(0.4), 99);
  host::HostSpec spec;
  spec.id = "h2";
  spec.cpus = 1;
  spec.cycles_per_cpu = 100.0;
  spec.vm_boot_time = 0;
  host::PhysicalHost host(spec);
  Auctioneer auctioneer(host, kernel);
  AuctioneerService service(auctioneer, lossy);
  net::CallOptions options;
  options.timeout = sim::Seconds(1);
  options.max_attempts = 12;
  AuctioneerClient client(lossy, "agent-x", options);
  std::optional<Status> status;
  client.OpenAccount("auctioneer/h2", "alice", [&](Status s) { status = s; });
  kernel.Run();
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->ok()) << status->ToString();
}

}  // namespace
}  // namespace gm::market
