#include "grid/auth.hpp"

#include <gtest/gtest.h>

#include "sim/time.hpp"

namespace gm::grid {
namespace {

class AuthTest : public ::testing::Test {
 protected:
  AuthTest()
      : bank_(crypto::TestGroup(), 11),
        ca_(crypto::DistinguishedName{"SE", "SweGrid", "CA", "Root"},
            crypto::TestGroup(), rng_),
        alice_keys_(crypto::KeyPair::Generate(crypto::TestGroup(), rng_)) {
    EXPECT_TRUE(bank_.CreateAccount("alice", alice_keys_.public_key()).ok());
    EXPECT_TRUE(bank_.CreateAccount("broker", {}).ok());
    EXPECT_TRUE(bank_.Mint("alice", Money::Dollars(1000), 0).ok());
    authorizer_ = std::make_unique<TokenAuthorizer>(bank_, "broker");

    alice_cert_ = ca_.Issue(alice_dn_, alice_keys_.public_key(), 0,
                            sim::Hours(1000), rng_);
    EXPECT_TRUE(authorizer_->RegisterIdentity(alice_cert_, ca_, 0).ok());
  }

  crypto::TransferToken PayBroker(Money amount) {
    const auto nonce = bank_.TransferNonce("alice");
    EXPECT_TRUE(nonce.ok());
    const auto auth = alice_keys_.Sign(
        bank::TransferAuthPayload("alice", "broker", amount, *nonce), rng_);
    const auto receipt = bank_.Transfer("alice", "broker", amount, auth, 0);
    EXPECT_TRUE(receipt.ok());
    return crypto::MintToken(*receipt, alice_dn_.ToString(), alice_keys_,
                             rng_);
  }

  Rng rng_{21};
  bank::Bank bank_;
  crypto::CertificateAuthority ca_;
  crypto::KeyPair alice_keys_;
  crypto::DistinguishedName alice_dn_{"SE", "KTH", "PDC", "alice"};
  crypto::Certificate alice_cert_;
  std::unique_ptr<TokenAuthorizer> authorizer_;
};

TEST_F(AuthTest, HappyPathCreatesFundedSubAccount) {
  const auto token = PayBroker(Money::Dollars(500));
  const auto funds = authorizer_->Authorize(token, 100);
  ASSERT_TRUE(funds.ok()) << funds.status().ToString();
  EXPECT_EQ(funds->amount, Money::Dollars(500));
  EXPECT_EQ(funds->grid_dn, alice_dn_.ToString());
  EXPECT_TRUE(bank_.HasAccount(funds->sub_account));
  EXPECT_EQ(bank_.Balance(funds->sub_account).value(), Money::Dollars(500));
  EXPECT_EQ(bank_.Balance("broker").value(),
            Money::Zero());  // moved to sub-account
  EXPECT_TRUE(bank_.CheckInvariants().ok());
}

TEST_F(AuthTest, DoubleSpendRejected) {
  const auto token = PayBroker(Money::Dollars(100));
  ASSERT_TRUE(authorizer_->Authorize(token, 0).ok());
  const auto replay = authorizer_->Authorize(token, 1);
  EXPECT_EQ(replay.status().code(), StatusCode::kAlreadyClaimed);
  // Only one sub-account was funded.
  EXPECT_EQ(authorizer_->spent_tokens(), 1u);
}

TEST_F(AuthTest, UnknownIdentityRejected) {
  auto token = PayBroker(Money::Dollars(100));
  token.grid_dn = "/C=SE/O=KTH/CN=stranger";
  const auto funds = authorizer_->Authorize(token, 0);
  EXPECT_EQ(funds.status().code(), StatusCode::kUnauthenticated);
}

TEST_F(AuthTest, MiddlemanDnSwapRejected) {
  // Mallory is a registered user but did not pay: she swaps the DN on
  // alice's token to hijack the funds.
  const auto mallory_keys =
      crypto::KeyPair::Generate(crypto::TestGroup(), rng_);
  const crypto::DistinguishedName mallory_dn{"SE", "KTH", "PDC", "mallory"};
  const auto mallory_cert =
      ca_.Issue(mallory_dn, mallory_keys.public_key(), 0, sim::Hours(10),
                rng_);
  ASSERT_TRUE(authorizer_->RegisterIdentity(mallory_cert, ca_, 0).ok());

  auto token = PayBroker(Money::Dollars(100));
  token.grid_dn = mallory_dn.ToString();
  // Re-signing with mallory's key must also fail: the payer key (alice's,
  // registered at the bank for the source account) has to match.
  token.owner_signature =
      mallory_keys.Sign(token.MappingPayload(), rng_);
  const auto funds = authorizer_->Authorize(token, 0);
  EXPECT_EQ(funds.status().code(), StatusCode::kUnauthenticated);
}

TEST_F(AuthTest, PaymentToWrongAccountRejected) {
  ASSERT_TRUE(bank_.CreateAccount("other-broker", {}).ok());
  const auto nonce = bank_.TransferNonce("alice");
  const auto auth = alice_keys_.Sign(
      bank::TransferAuthPayload("alice", "other-broker",
                                Money::Dollars(100), *nonce),
      rng_);
  const auto receipt =
      bank_.Transfer("alice", "other-broker", Money::Dollars(100), auth, 0);
  ASSERT_TRUE(receipt.ok());
  const auto token =
      crypto::MintToken(*receipt, alice_dn_.ToString(), alice_keys_, rng_);
  const auto funds = authorizer_->Authorize(token, 0);
  EXPECT_EQ(funds.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(AuthTest, FabricatedReceiptRejected) {
  auto token = PayBroker(Money::Dollars(100));
  // Inflate the amount and re-sign the mapping with alice's key; the
  // bank's signature and ledger entry no longer match.
  token.receipt.amount = Money::Dollars(10000);
  token.owner_signature = alice_keys_.Sign(token.MappingPayload(), rng_);
  const auto funds = authorizer_->Authorize(token, 0);
  EXPECT_FALSE(funds.ok());
}

TEST_F(AuthTest, ExpiredCertificateNotRegistered) {
  const auto bob_keys = crypto::KeyPair::Generate(crypto::TestGroup(), rng_);
  const crypto::DistinguishedName bob_dn{"SE", "KTH", "PDC", "bob"};
  const auto expired_cert =
      ca_.Issue(bob_dn, bob_keys.public_key(), 0, 100, rng_);
  const Status status =
      authorizer_->RegisterIdentity(expired_cert, ca_, sim::Hours(1));
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(authorizer_->KnowsIdentity(bob_dn.ToString()));
}

TEST_F(AuthTest, GiftCertificateForAnotherIdentity) {
  // The paper's conclusion: transfer tokens double as gift certificates —
  // alice pays but binds the receipt to bob's Grid DN, so bob's jobs can
  // spend it without any Tycoon client of his own.
  const auto bob_keys = crypto::KeyPair::Generate(crypto::TestGroup(), rng_);
  const crypto::DistinguishedName bob_dn{"SE", "KTH", "Biotech", "bob"};
  const auto bob_cert =
      ca_.Issue(bob_dn, bob_keys.public_key(), 0, sim::Hours(100), rng_);
  ASSERT_TRUE(authorizer_->RegisterIdentity(bob_cert, ca_, 0).ok());

  const auto nonce = bank_.TransferNonce("alice");
  const auto auth = alice_keys_.Sign(
      bank::TransferAuthPayload("alice", "broker", Money::Dollars(75),
                                *nonce),
      rng_);
  const auto receipt =
      bank_.Transfer("alice", "broker", Money::Dollars(75), auth, 0);
  ASSERT_TRUE(receipt.ok());
  // Alice (the payer) signs the mapping to *bob's* DN.
  const auto gift =
      crypto::MintToken(*receipt, bob_dn.ToString(), alice_keys_, rng_);
  const auto funds = authorizer_->Authorize(gift, 0);
  ASSERT_TRUE(funds.ok()) << funds.status().ToString();
  EXPECT_EQ(funds->grid_dn, bob_dn.ToString());
  EXPECT_EQ(funds->amount, Money::Dollars(75));
}

TEST_F(AuthTest, SubAccountNamesAreUnique) {
  const auto funds1 =
      authorizer_->Authorize(PayBroker(Money::Dollars(10)), 0);
  const auto funds2 =
      authorizer_->Authorize(PayBroker(Money::Dollars(20)), 0);
  ASSERT_TRUE(funds1.ok());
  ASSERT_TRUE(funds2.ok());
  EXPECT_NE(funds1->sub_account, funds2->sub_account);
}

}  // namespace
}  // namespace gm::grid
