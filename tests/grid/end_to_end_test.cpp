// End-to-end Grid market flow: bank + PKI + tokens + SLS + auctioneers +
// best-response scheduling + VM provisioning + execution + refunds.
#include <gtest/gtest.h>

#include "grid/broker.hpp"
#include "grid/monitor.hpp"
#include "market/sls.hpp"

namespace gm::grid {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static constexpr Money kUserFunds = Money::Dollars(1000);

  EndToEndTest()
      : bank_(crypto::TestGroup(), 3),
        ca_(crypto::DistinguishedName{"SE", "SweGrid", "CA", "Root"},
            crypto::TestGroup(), rng_),
        alice_keys_(crypto::KeyPair::Generate(crypto::TestGroup(), rng_)),
        sls_(kernel_) {
    EXPECT_TRUE(bank_.CreateAccount("alice", alice_keys_.public_key()).ok());
    EXPECT_TRUE(bank_.CreateAccount("broker", {}).ok());
    EXPECT_TRUE(bank_.Mint("alice", kUserFunds, 0).ok());

    authorizer_ = std::make_unique<TokenAuthorizer>(bank_, "broker");
    const auto cert = ca_.Issue(alice_dn_, alice_keys_.public_key(), 0,
                                sim::Hours(10000), rng_);
    EXPECT_TRUE(authorizer_->RegisterIdentity(cert, ca_, 0).ok());

    PluginConfig config;
    config.reference_capacity = 100.0;  // 1 cpu-minute == 6000 cycles
    config.stage_bandwidth_mb_per_s = 50.0;
    plugin_ = std::make_unique<TycoonSchedulerPlugin>(
        kernel_, sls_, bank_, host::PackageCatalog::Default(), config);
    broker_ = std::make_unique<GridBroker>(kernel_, bank_, *authorizer_,
                                           *plugin_);
  }

  void AddHosts(int count, int cpus = 2) {
    for (int i = 0; i < count; ++i) {
      host::HostSpec spec;
      spec.id = "h" + std::to_string(i);
      spec.cpus = cpus;
      spec.cycles_per_cpu = 100.0;
      spec.virtualization_overhead = 0.0;
      spec.vm_boot_time = sim::Seconds(5);
      spec.max_vms = 15;
      hosts_.push_back(std::make_unique<host::PhysicalHost>(spec));
      auctioneers_.push_back(
          std::make_unique<market::Auctioneer>(*hosts_.back(), kernel_));
      auctioneers_.back()->Start();
      publishers_.push_back(std::make_unique<market::SlsPublisher>(
          *auctioneers_.back(), sls_, "test-site", kernel_,
          sim::Seconds(30)));
      EXPECT_TRUE(plugin_
                      ->RegisterAuctioneer(*auctioneers_.back(),
                                           "auctioneer:" + spec.id)
                      .ok());
    }
  }

  crypto::TransferToken PayBroker(Money amount) {
    const auto nonce = bank_.TransferNonce("alice");
    EXPECT_TRUE(nonce.ok());
    const auto auth = alice_keys_.Sign(
        bank::TransferAuthPayload("alice", "broker", amount, *nonce), rng_);
    const auto receipt =
        bank_.Transfer("alice", "broker", amount, auth, kernel_.now());
    EXPECT_TRUE(receipt.ok());
    return crypto::MintToken(*receipt, alice_dn_.ToString(), alice_keys_,
                             rng_);
  }

  static std::string ScanXrsl(int count, int chunks,
                              double cpu_minutes = 1.0,
                              double wall_minutes = 60.0) {
    JobDescription description;
    description.executable = "/bin/proteome-scan";
    description.job_name = "scan";
    description.count = count;
    description.chunks = chunks;
    description.cpu_time_minutes = cpu_minutes;
    description.wall_time_minutes = wall_minutes;
    description.runtime_environments = {"blast"};
    description.input_files = {{"db.fasta", 50.0}};
    description.output_files = {{"hits.out", 5.0}};
    return description.ToXrsl();
  }

  Rng rng_{77};
  sim::Kernel kernel_;
  bank::Bank bank_;
  crypto::CertificateAuthority ca_;
  crypto::KeyPair alice_keys_;
  crypto::DistinguishedName alice_dn_{"SE", "KTH", "PDC", "alice"};
  market::ServiceLocationService sls_;
  std::vector<std::unique_ptr<host::PhysicalHost>> hosts_;
  std::vector<std::unique_ptr<market::Auctioneer>> auctioneers_;
  std::vector<std::unique_ptr<market::SlsPublisher>> publishers_;
  std::unique_ptr<TokenAuthorizer> authorizer_;
  std::unique_ptr<TycoonSchedulerPlugin> plugin_;
  std::unique_ptr<GridBroker> broker_;
};

TEST_F(EndToEndTest, JobRunsToCompletion) {
  AddHosts(4);
  const auto job_id =
      broker_->Submit(ScanXrsl(/*count=*/2, /*chunks=*/4), PayBroker(Money::Dollars(10)));
  ASSERT_TRUE(job_id.ok()) << job_id.status().ToString();

  kernel_.RunUntil(sim::Minutes(30));
  const auto job = broker_->Job(*job_id);
  ASSERT_TRUE(job.ok());
  EXPECT_EQ((*job)->state, JobState::kFinished)
      << JobStateName((*job)->state) << " failure=" << (*job)->failure;
  EXPECT_TRUE((*job)->AllChunksDone());
  ASSERT_EQ((*job)->subjobs.size(), 4u);
  // Ordinals assigned and two hosts used.
  EXPECT_EQ((*job)->hosts_used.size(), 2u);
  for (int i = 0; i < 4; ++i) {
    const SubJobRecord& subjob = (*job)->subjobs[static_cast<std::size_t>(i)];
    EXPECT_EQ(subjob.ordinal, i);
    EXPECT_TRUE(subjob.completed);
    EXPECT_GE(subjob.started_at, 0);
    EXPECT_GT(subjob.completed_at, subjob.started_at);
  }
  // Charged for use, refunded the rest; everything accounted for.
  EXPECT_TRUE((*job)->spent.is_positive());
  EXPECT_TRUE((*job)->refunded.is_positive());
  EXPECT_EQ(bank_.Balance((*job)->account).value(),
            Money::Dollars(10) - (*job)->spent);
  EXPECT_TRUE(bank_.CheckInvariants().ok());
}

TEST_F(EndToEndTest, ChunkLatencyMatchesCapacity) {
  AddHosts(2);
  // One VM, one chunk of 2 cpu-minutes at reference 100 cycles/s ==
  // 12000 cycles; the vCPU delivers 100 cycles/s -> 120 s of execution.
  const auto job_id = broker_->Submit(ScanXrsl(1, 1, 2.0),
                                      PayBroker(Money::Dollars(10)));
  ASSERT_TRUE(job_id.ok());
  kernel_.RunUntil(sim::Minutes(60));
  const auto job = broker_->Job(*job_id);
  ASSERT_TRUE(job.ok());
  ASSERT_EQ((*job)->state, JobState::kFinished) << (*job)->failure;
  EXPECT_NEAR((*job)->MeanChunkLatencyMinutes(), 2.0, 0.35);
}

TEST_F(EndToEndTest, NoHostsFailsCleanlyWithRefund) {
  const auto job_id = broker_->Submit(ScanXrsl(2, 4),
                                      PayBroker(Money::Dollars(10)));
  ASSERT_TRUE(job_id.ok());
  const auto job = broker_->Job(*job_id);
  ASSERT_TRUE(job.ok());
  EXPECT_EQ((*job)->state, JobState::kFailed);
  EXPECT_FALSE((*job)->failure.empty());
  EXPECT_EQ((*job)->spent, Money::Zero());
  EXPECT_EQ(bank_.Balance((*job)->account).value(), Money::Dollars(10));
  EXPECT_TRUE(bank_.CheckInvariants().ok());
}

TEST_F(EndToEndTest, UnknownRuntimeEnvironmentFailsBeforeFunding) {
  AddHosts(2);
  JobDescription description;
  description.executable = "/bin/x";
  description.count = 1;
  description.cpu_time_minutes = 1.0;
  description.wall_time_minutes = 60.0;
  description.runtime_environments = {"matlab"};  // not in the catalog
  const auto job_id =
      broker_->Submit(description.ToXrsl(), PayBroker(Money::Dollars(5)));
  ASSERT_TRUE(job_id.ok());
  const auto job = broker_->Job(*job_id);
  ASSERT_TRUE(job.ok());
  EXPECT_EQ((*job)->state, JobState::kFailed);
  EXPECT_NE((*job)->failure.find("matlab"), std::string::npos);
  // No money left anywhere but the refunded sub-account.
  EXPECT_EQ((*job)->spent, Money::Zero());
  EXPECT_EQ(bank_.Balance((*job)->account).value(), Money::Dollars(5));
  for (const auto& auctioneer : auctioneers_) {
    EXPECT_FALSE(auctioneer->HasAccount((*job)->account));
  }
  EXPECT_TRUE(bank_.CheckInvariants().ok());
}

TEST_F(EndToEndTest, BadTokenRejectedBeforeScheduling) {
  AddHosts(1);
  auto token = PayBroker(Money::Dollars(10));
  token.grid_dn = "/CN=stranger";
  const auto job_id = broker_->Submit(ScanXrsl(1, 1), token);
  EXPECT_FALSE(job_id.ok());
  EXPECT_EQ(job_id.status().code(), StatusCode::kUnauthenticated);
  EXPECT_TRUE(broker_->Jobs().empty());
}

TEST_F(EndToEndTest, DeadlineExpiryRefundsRemainder) {
  AddHosts(1);
  // 3 cpu-minutes of work with a 3-minute wall clock that also has to
  // cover boot + provisioning + staging: cannot finish.
  const auto job_id = broker_->Submit(ScanXrsl(1, 6, 3.0, /*wall=*/3.0),
                                      PayBroker(Money::Dollars(10)));
  ASSERT_TRUE(job_id.ok());
  kernel_.RunUntil(sim::Minutes(30));
  const auto job = broker_->Job(*job_id);
  ASSERT_TRUE(job.ok());
  EXPECT_EQ((*job)->state, JobState::kExpired) << JobStateName((*job)->state);
  EXPECT_FALSE((*job)->AllChunksDone());
  EXPECT_EQ(bank_.Balance((*job)->account).value(),
            Money::Dollars(10) - (*job)->spent);
  EXPECT_TRUE(bank_.CheckInvariants().ok());
}

TEST_F(EndToEndTest, BoostAddsFundsAndRaisesBid) {
  AddHosts(1);
  const auto job_id = broker_->Submit(ScanXrsl(1, 8, 2.0, 120.0),
                                      PayBroker(Money::Dollars(5)));
  ASSERT_TRUE(job_id.ok());
  kernel_.RunUntil(sim::Minutes(2));
  const Rate rate_before = auctioneers_[0]->SpotPriceRate();
  ASSERT_TRUE(broker_->Boost(*job_id, PayBroker(Money::Dollars(50))).ok());
  EXPECT_GT(auctioneers_[0]->SpotPriceRate(), rate_before);
  const auto job = broker_->Job(*job_id);
  ASSERT_TRUE(job.ok());
  EXPECT_EQ((*job)->budget, Money::Dollars(55));
  kernel_.RunUntil(sim::Hours(3));
  EXPECT_EQ(broker_->Job(*job_id).value()->state, JobState::kFinished);
  EXPECT_TRUE(bank_.CheckInvariants().ok());
}

TEST_F(EndToEndTest, BoostByDifferentUserRejected) {
  AddHosts(1);
  const auto job_id = broker_->Submit(ScanXrsl(1, 4, 2.0, 120.0),
                                      PayBroker(Money::Dollars(5)));
  ASSERT_TRUE(job_id.ok());
  // Bob pays for a boost of alice's job: identity mismatch.
  const auto bob_keys = crypto::KeyPair::Generate(crypto::TestGroup(), rng_);
  const crypto::DistinguishedName bob_dn{"SE", "KTH", "PDC", "bob"};
  ASSERT_TRUE(bank_.CreateAccount("bob", bob_keys.public_key()).ok());
  ASSERT_TRUE(bank_.Mint("bob", Money::Dollars(100), 0).ok());
  const auto cert =
      ca_.Issue(bob_dn, bob_keys.public_key(), 0, sim::Hours(100), rng_);
  ASSERT_TRUE(authorizer_->RegisterIdentity(cert, ca_, 0).ok());
  const auto nonce = bank_.TransferNonce("bob");
  const auto auth = bob_keys.Sign(
      bank::TransferAuthPayload("bob", "broker", Money::Dollars(10), *nonce),
      rng_);
  const auto receipt = bank_.Transfer("bob", "broker", Money::Dollars(10),
                                      auth, kernel_.now());
  ASSERT_TRUE(receipt.ok());
  const auto bob_token =
      crypto::MintToken(*receipt, bob_dn.ToString(), bob_keys, rng_);
  EXPECT_EQ(broker_->Boost(*job_id, bob_token).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(EndToEndTest, CompetingJobsShareByFunding) {
  // One single-CPU host: the two jobs genuinely contend for the CPU (on
  // the paper's dual-processor nodes two users would not). Tight wall
  // times make both agents bid aggressively; only the rich one can afford
  // its target share.
  AddHosts(1, /*cpus=*/1);
  const auto cheap = broker_->Submit(ScanXrsl(1, 4, 2.0, 10.0),
                                     PayBroker(Money::Dollars(2)));
  ASSERT_TRUE(cheap.ok());
  kernel_.RunUntil(sim::Seconds(30));
  const auto rich = broker_->Submit(ScanXrsl(1, 4, 2.0, 10.0),
                                    PayBroker(Money::Dollars(20)));
  ASSERT_TRUE(rich.ok());
  kernel_.RunUntil(sim::Hours(4));
  const auto cheap_job = broker_->Job(*cheap);
  const auto rich_job = broker_->Job(*rich);
  ASSERT_TRUE(cheap_job.ok());
  ASSERT_TRUE(rich_job.ok());
  ASSERT_EQ((*cheap_job)->state, JobState::kFinished) << (*cheap_job)->failure;
  ASSERT_EQ((*rich_job)->state, JobState::kFinished) << (*rich_job)->failure;
  // The richer job pays a higher total for its faster chunks.
  EXPECT_GT((*rich_job)->spent, (*cheap_job)->spent);
  EXPECT_LT((*rich_job)->MeanChunkLatencyMinutes(),
            (*cheap_job)->MeanChunkLatencyMinutes());
}

TEST_F(EndToEndTest, MonitorRendersState) {
  AddHosts(2);
  const auto job_id = broker_->Submit(ScanXrsl(2, 4),
                                      PayBroker(Money::Dollars(10)));
  ASSERT_TRUE(job_id.ok());
  kernel_.RunUntil(sim::Minutes(2));
  std::vector<const market::Auctioneer*> views;
  for (const auto& auctioneer : auctioneers_) views.push_back(auctioneer.get());
  const std::string monitor =
      RenderMonitor(views, broker_->Jobs(), kernel_.now());
  EXPECT_NE(monitor.find("h0"), std::string::npos);
  EXPECT_NE(monitor.find("h1"), std::string::npos);
  EXPECT_NE(monitor.find("scan"), std::string::npos);
  EXPECT_NE(monitor.find("alice"), std::string::npos);
  EXPECT_NE(monitor.find("Tycoon Grid Monitor"), std::string::npos);
}

}  // namespace
}  // namespace gm::grid
