#include "grid/monitor.hpp"

#include <gtest/gtest.h>

namespace gm::grid {
namespace {

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest() {
    host::HostSpec spec;
    spec.id = "h42";
    spec.cpus = 2;
    spec.cycles_per_cpu = 100.0;
    spec.virtualization_overhead = 0.0;
    spec.vm_boot_time = 0;
    host_ = std::make_unique<host::PhysicalHost>(spec);
    auctioneer_ = std::make_unique<market::Auctioneer>(*host_, kernel_);
  }

  sim::Kernel kernel_;
  std::unique_ptr<host::PhysicalHost> host_;
  std::unique_ptr<market::Auctioneer> auctioneer_;
};

TEST_F(MonitorTest, ClusterTableShowsHostAndPrice) {
  ASSERT_TRUE(auctioneer_->OpenAccount("alice").ok());
  ASSERT_TRUE(auctioneer_->Fund("alice", Money::FromMicros(1'000'000)).ok());
  // 1000 u$/s == $3.6/h.
  ASSERT_TRUE(
      auctioneer_->SetBid("alice", Rate::MicrosPerSec(1000), sim::Hours(1))
          .ok());
  const std::string table =
      RenderClusterTable({auctioneer_.get()}, sim::Minutes(1));
  EXPECT_NE(table.find("HOST"), std::string::npos);
  EXPECT_NE(table.find("h42"), std::string::npos);
  EXPECT_NE(table.find("3.6000"), std::string::npos);  // $/h spot price
}

TEST_F(MonitorTest, JobTableShowsStateAndMoney) {
  JobRecord job;
  job.id = 7;
  job.description.job_name = "proteome-scan";
  job.description.chunks = 30;
  job.description.count = 15;
  job.user_dn = "/C=SE/O=KTH/CN=alice";
  job.state = JobState::kRunning;
  job.budget = Money::Dollars(100);
  job.spent = Money::Dollars(12.5);
  job.submitted_at = 0;
  job.subjobs.resize(30);
  for (int i = 0; i < 9; ++i) job.subjobs[static_cast<std::size_t>(i)].completed = true;

  const std::string table = RenderJobTable({&job}, sim::Hours(2));
  EXPECT_NE(table.find("proteome-scan"), std::string::npos);
  EXPECT_NE(table.find("RUNNING"), std::string::npos);
  EXPECT_NE(table.find("9/30"), std::string::npos);
  EXPECT_NE(table.find("12.50"), std::string::npos);
  EXPECT_NE(table.find("100.00"), std::string::npos);
  EXPECT_NE(table.find("02:00:00"), std::string::npos);  // elapsed
}

TEST_F(MonitorTest, JobTableUsesFinishTimeWhenTerminal) {
  JobRecord job;
  job.id = 1;
  job.description.job_name = "done";
  job.state = JobState::kFinished;
  job.submitted_at = 0;
  job.finished_at = sim::Hours(1);
  const std::string table = RenderJobTable({&job}, sim::Hours(5));
  // Elapsed shows 1 h (to completion), not 5 h (now).
  EXPECT_NE(table.find("01:00:00"), std::string::npos);
  EXPECT_EQ(table.find("05:00:00"), std::string::npos);
}

TEST_F(MonitorTest, FullMonitorHasHeaderAndBothTables) {
  const std::string monitor =
      RenderMonitor({auctioneer_.get()}, {}, sim::Minutes(30));
  EXPECT_NE(monitor.find("Tycoon Grid Monitor"), std::string::npos);
  EXPECT_NE(monitor.find("00:30:00"), std::string::npos);
  EXPECT_NE(monitor.find("HOST"), std::string::npos);
  EXPECT_NE(monitor.find("STATE"), std::string::npos);
}

TEST_F(MonitorTest, EmptyTablesStillRenderHeaders) {
  EXPECT_NE(RenderClusterTable({}, 0).find("HOST"), std::string::npos);
  EXPECT_NE(RenderJobTable({}, 0).find("ID"), std::string::npos);
}

}  // namespace
}  // namespace gm::grid
