// Chaos tests: the full grid stack (bank + broker + scheduler plugin +
// auctioneers + RPC health probes) under network faults — message loss,
// burst-loss windows, and auctioneer crashes mid-run. Jobs must still
// complete, money must be conserved to the micro-dollar, and the failure
// detector must report dead hosts while the scheduler re-bids on survivors.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "grid/broker.hpp"
#include "grid/monitor.hpp"
#include "market/auctioneer_service.hpp"
#include "market/sls.hpp"
#include "net/fault.hpp"

namespace gm::grid {
namespace {

class ChaosTest : public ::testing::Test {
 protected:
  static constexpr Money kUserFunds = Money::Dollars(1000);

  ChaosTest()
      : bus_(kernel_, net::LatencyModel::Lossy(0.1), 1913),
        bank_(crypto::TestGroup(), 3),
        ca_(crypto::DistinguishedName{"SE", "SweGrid", "CA", "Root"},
            crypto::TestGroup(), rng_),
        alice_keys_(crypto::KeyPair::Generate(crypto::TestGroup(), rng_)),
        sls_(kernel_) {
    EXPECT_TRUE(bank_.CreateAccount("alice", alice_keys_.public_key()).ok());
    EXPECT_TRUE(bank_.CreateAccount("broker", {}).ok());
    EXPECT_TRUE(bank_.Mint("alice", kUserFunds, 0).ok());

    authorizer_ = std::make_unique<TokenAuthorizer>(bank_, "broker");
    const auto cert = ca_.Issue(alice_dn_, alice_keys_.public_key(), 0,
                                sim::Hours(10000), rng_);
    EXPECT_TRUE(authorizer_->RegisterIdentity(cert, ca_, 0).ok());

    PluginConfig config;
    config.reference_capacity = 100.0;
    config.stage_bandwidth_mb_per_s = 50.0;
    plugin_ = std::make_unique<TycoonSchedulerPlugin>(
        kernel_, sls_, bank_, host::PackageCatalog::Default(), config);
    broker_ = std::make_unique<GridBroker>(kernel_, bank_, *authorizer_,
                                           *plugin_);
  }

  void AddHosts(int count, int cpus = 2) {
    for (int i = 0; i < count; ++i) {
      host::HostSpec spec;
      spec.id = "h" + std::to_string(i);
      spec.cpus = cpus;
      spec.cycles_per_cpu = 100.0;
      spec.virtualization_overhead = 0.0;
      spec.vm_boot_time = sim::Seconds(5);
      spec.max_vms = 15;
      hosts_.push_back(std::make_unique<host::PhysicalHost>(spec));
      auctioneers_.push_back(
          std::make_unique<market::Auctioneer>(*hosts_.back(), kernel_));
      auctioneers_.back()->Start();
      // Each auctioneer answers RPC (including the failure detector's
      // "ping") at "auctioneer/<host_id>" on the lossy bus.
      services_.push_back(std::make_unique<market::AuctioneerService>(
          *auctioneers_.back(), bus_));
      publishers_.push_back(std::make_unique<market::SlsPublisher>(
          *auctioneers_.back(), sls_, "test-site", kernel_,
          sim::Seconds(30)));
      EXPECT_TRUE(plugin_
                      ->RegisterAuctioneer(*auctioneers_.back(),
                                           "auctioneer:" + spec.id)
                      .ok());
    }
  }

  void EnableProbes() {
    HealthOptions options;
    options.probe_period = sim::Seconds(10);
    options.probe_timeout = sim::Seconds(2);
    options.probe_attempts = 3;
    options.suspect_after = 2;
    options.dead_after = 3;
    ASSERT_TRUE(plugin_->EnableHealthProbes(bus_, options).ok());
  }

  market::Auctioneer* AuctioneerFor(const std::string& host_id) {
    for (auto& auctioneer : auctioneers_) {
      if (auctioneer->physical_host().id() == host_id)
        return auctioneer.get();
    }
    return nullptr;
  }

  /// Host crash: the market stops ticking (VMs freeze) and the RPC
  /// endpoint vanishes from the bus, so probes start timing out.
  void CrashHost(const std::string& host_id) {
    market::Auctioneer* auctioneer = AuctioneerFor(host_id);
    ASSERT_NE(auctioneer, nullptr);
    auctioneer->Stop();
    ASSERT_TRUE(bus_.CrashEndpoint("auctioneer/" + host_id).ok());
  }

  crypto::TransferToken PayBroker(Money amount) {
    const auto nonce = bank_.TransferNonce("alice");
    EXPECT_TRUE(nonce.ok());
    const auto auth = alice_keys_.Sign(
        bank::TransferAuthPayload("alice", "broker", amount, *nonce), rng_);
    const auto receipt =
        bank_.Transfer("alice", "broker", amount, auth, kernel_.now());
    EXPECT_TRUE(receipt.ok());
    return crypto::MintToken(*receipt, alice_dn_.ToString(), alice_keys_,
                             rng_);
  }

  static std::string ScanXrsl(int count, int chunks,
                              double cpu_minutes = 1.0,
                              double wall_minutes = 60.0) {
    JobDescription description;
    description.executable = "/bin/proteome-scan";
    description.job_name = "scan";
    description.count = count;
    description.chunks = chunks;
    description.cpu_time_minutes = cpu_minutes;
    description.wall_time_minutes = wall_minutes;
    description.runtime_environments = {"blast"};
    description.input_files = {{"db.fasta", 50.0}};
    description.output_files = {{"hits.out", 5.0}};
    return description.ToXrsl();
  }

  Rng rng_{77};
  sim::Kernel kernel_;
  net::MessageBus bus_;
  bank::Bank bank_;
  crypto::CertificateAuthority ca_;
  crypto::KeyPair alice_keys_;
  crypto::DistinguishedName alice_dn_{"SE", "KTH", "PDC", "alice"};
  market::ServiceLocationService sls_;
  std::vector<std::unique_ptr<host::PhysicalHost>> hosts_;
  std::vector<std::unique_ptr<market::Auctioneer>> auctioneers_;
  std::vector<std::unique_ptr<market::AuctioneerService>> services_;
  std::vector<std::unique_ptr<market::SlsPublisher>> publishers_;
  std::unique_ptr<TokenAuthorizer> authorizer_;
  std::unique_ptr<TycoonSchedulerPlugin> plugin_;
  std::unique_ptr<GridBroker> broker_;
};

TEST_F(ChaosTest, JobCompletesOnLossyNetworkWithCorrectRefunds) {
  AddHosts(4);
  EnableProbes();
  const auto job_id = broker_->Submit(ScanXrsl(2, 4),
                                      PayBroker(Money::Dollars(10)));
  ASSERT_TRUE(job_id.ok()) << job_id.status().ToString();

  kernel_.RunUntil(sim::Minutes(30));
  const auto job = broker_->Job(*job_id);
  ASSERT_TRUE(job.ok());
  EXPECT_EQ((*job)->state, JobState::kFinished) << (*job)->failure;
  EXPECT_TRUE((*job)->AllChunksDone());
  // Refund accounting holds despite 10% message loss on the probe plane.
  EXPECT_TRUE((*job)->spent.is_positive());
  EXPECT_TRUE((*job)->refunded.is_positive());
  EXPECT_EQ(bank_.Balance((*job)->account).value(),
            Money::Dollars(10) - (*job)->spent);
  EXPECT_TRUE(bank_.CheckInvariants().ok());

  // The failure detector probed through the loss without false verdicts:
  // retries absorb drops, so no host was ever declared dead.
  EXPECT_GT(plugin_->probes_sent(), 0u);
  EXPECT_GT(bus_.stats().dropped, 0u);  // the network really was lossy
  for (const HostHealthInfo& health : plugin_->HostHealthReport()) {
    EXPECT_NE(health.state, HostHealthState::kDead) << health.host_id;
    EXPECT_GE(health.last_ok, 0) << health.host_id;
  }
  EXPECT_TRUE(bus_.stats().Reconciles());
}

TEST_F(ChaosTest, AuctioneerCrashMidRunMigratesJobToSurvivors) {
  AddHosts(4);
  EnableProbes();
  // 8 chunks of 2 cpu-minutes on 2 hosts: comfortably still running when
  // the crash hits at t = 3 min.
  const Money budget = Money::Dollars(10);
  const auto job_id =
      broker_->Submit(ScanXrsl(2, 8, 2.0, 60.0), PayBroker(budget));
  ASSERT_TRUE(job_id.ok()) << job_id.status().ToString();

  kernel_.RunUntil(sim::Minutes(3));
  {
    const auto job = broker_->Job(*job_id);
    ASSERT_TRUE(job.ok());
    ASSERT_EQ((*job)->state, JobState::kRunning) << (*job)->failure;
    ASSERT_EQ((*job)->hosts_used.size(), 2u);
  }
  const std::string dead_host = broker_->Job(*job_id).value()->hosts_used[0];
  const std::string survivor = broker_->Job(*job_id).value()->hosts_used[1];
  // Chunks already finished before the crash keep their host binding.
  std::set<int> done_before_crash;
  for (const SubJobRecord& subjob : broker_->Job(*job_id).value()->subjobs) {
    if (subjob.completed) done_before_crash.insert(subjob.ordinal);
  }
  CrashHost(dead_host);

  kernel_.RunUntil(sim::Hours(2));
  const auto job = broker_->Job(*job_id);
  ASSERT_TRUE(job.ok());
  // The job finished on the survivors despite losing a host mid-run.
  EXPECT_EQ((*job)->state, JobState::kFinished)
      << JobStateName((*job)->state) << " failure=" << (*job)->failure;
  EXPECT_TRUE((*job)->AllChunksDone());

  // The failure detector declared the crashed host dead and the scheduler
  // migrated work off it.
  EXPECT_EQ(plugin_->HostHealth(dead_host), HostHealthState::kDead);
  EXPECT_EQ(plugin_->HostHealth(survivor), HostHealthState::kHealthy);
  EXPECT_GT(plugin_->migrations(), 0u);
  EXPECT_GT(plugin_->probe_failures(), 0u);
  // Every chunk still open at the crash finished somewhere alive.
  for (const SubJobRecord& subjob : (*job)->subjobs) {
    EXPECT_TRUE(subjob.completed);
    if (done_before_crash.count(subjob.ordinal) == 0) {
      EXPECT_NE(subjob.host_id, dead_host) << "ordinal " << subjob.ordinal;
    }
  }

  // Money conserved to the micro-dollar: the dead host's unspent deposit
  // was reclaimed through the bank escrow mirror, everything else was
  // either spent or refunded to the job's sub-account.
  EXPECT_EQ(bank_.Balance((*job)->account).value(), budget - (*job)->spent);
  EXPECT_TRUE(bank_.CheckInvariants().ok());
  EXPECT_FALSE(
      AuctioneerFor(dead_host)->HasAccount((*job)->account));

  // The monitor surfaces the verdicts and the fault counters.
  const std::string health_table =
      RenderHealthTable(plugin_->HostHealthReport());
  EXPECT_NE(health_table.find(dead_host), std::string::npos);
  EXPECT_NE(health_table.find("DEAD"), std::string::npos);
  EXPECT_NE(health_table.find("HEALTHY"), std::string::npos);
  const std::string net_table = RenderNetTable(bus_.stats(), plugin_.get());
  EXPECT_NE(net_table.find("probe_failures"), std::string::npos);
  EXPECT_NE(net_table.find("migrations=1"), std::string::npos);
}

TEST_F(ChaosTest, CrashedHostIsExcludedFromNewSchedulingUntilRestart) {
  AddHosts(3);
  EnableProbes();
  kernel_.RunUntil(sim::Minutes(1));  // all hosts probed healthy
  CrashHost("h0");
  kernel_.RunUntil(sim::Minutes(3));  // detector declares h0 dead
  ASSERT_EQ(plugin_->HostHealth("h0"), HostHealthState::kDead);

  const auto job_id = broker_->Submit(ScanXrsl(3, 6),
                                      PayBroker(Money::Dollars(10)));
  ASSERT_TRUE(job_id.ok());
  kernel_.RunUntil(sim::Minutes(40));
  const auto job = broker_->Job(*job_id);
  ASSERT_TRUE(job.ok());
  EXPECT_EQ((*job)->state, JobState::kFinished) << (*job)->failure;
  for (const std::string& host : (*job)->hosts_used) {
    EXPECT_NE(host, "h0");  // dead host never selected
  }

  // Restart: the endpoint comes back, probes succeed, health recovers.
  AuctioneerFor("h0")->Start();
  ASSERT_TRUE(bus_.RestartEndpoint("auctioneer/h0").ok());
  kernel_.RunUntil(kernel_.now() + sim::Minutes(2));
  EXPECT_EQ(plugin_->HostHealth("h0"), HostHealthState::kHealthy);
  EXPECT_TRUE(bank_.CheckInvariants().ok());
}

TEST_F(ChaosTest, BurstLossWindowDoesNotKillHealthyHosts) {
  AddHosts(2);
  EnableProbes();
  // A 30 s burst of 60% loss: individual probe rounds may fail, but the
  // retry budget and the dead_after threshold keep verdicts stable.
  net::FaultPlan plan;
  plan.BurstLoss(sim::Minutes(2), sim::Minutes(2) + sim::Seconds(30), 0.6);
  ApplyFaultPlan(bus_, plan);
  kernel_.RunUntil(sim::Minutes(10));
  for (const HostHealthInfo& health : plugin_->HostHealthReport()) {
    EXPECT_NE(health.state, HostHealthState::kDead) << health.host_id;
  }
  EXPECT_GT(bus_.stats().dropped, 0u);
  EXPECT_TRUE(bus_.stats().Reconciles());
}

}  // namespace
}  // namespace gm::grid
