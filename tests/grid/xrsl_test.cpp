#include "grid/xrsl.hpp"

#include <gtest/gtest.h>

namespace gm::grid {
namespace {

constexpr const char* kFullExample =
    "&(executable=\"/bin/proteome-scan\")"
    "(arguments=\"-w\" \"7\" \"--stepwise\")"
    "(jobName=\"hapgrid-scan\")"
    "(count=15)(chunks=30)"
    "(cpuTime=\"212\")(wallTime=\"330\")"
    "(runTimeEnvironment=\"blast\")"
    "(runTimeEnvironment=\"hapgrid\")"
    "(inputFiles=(\"proteome.fasta\" \"sim://120\")(\"params.cfg\" \"sim://1\"))"
    "(outputFiles=(\"hits.out\" \"sim://20\"))";

TEST(XrslParseTest, RelationsLowLevel) {
  const auto relations = ParseXrsl("&(a=\"1\")(b=2 3)(c=(x y)(z))");
  ASSERT_TRUE(relations.ok());
  ASSERT_EQ(relations->size(), 3u);
  EXPECT_EQ((*relations)[0].attribute, "a");
  EXPECT_EQ((*relations)[0].values, std::vector<std::string>{"1"});
  EXPECT_EQ((*relations)[1].values, (std::vector<std::string>{"2", "3"}));
  ASSERT_EQ((*relations)[2].groups.size(), 2u);
  EXPECT_EQ((*relations)[2].groups[0], (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ((*relations)[2].groups[1], std::vector<std::string>{"z"});
}

TEST(XrslParseTest, AttributeNamesCaseInsensitive) {
  const auto relations = ParseXrsl("(CpuTime=\"10\")");
  ASSERT_TRUE(relations.ok());
  EXPECT_EQ((*relations)[0].attribute, "cputime");
}

TEST(XrslParseTest, QuotedStringsWithEscapes) {
  const auto relations = ParseXrsl("(arguments=\"say \"\"hi\"\"\")");
  ASSERT_TRUE(relations.ok());
  EXPECT_EQ((*relations)[0].values[0], "say \"hi\"");
}

TEST(XrslParseTest, WhitespaceTolerant) {
  const auto relations = ParseXrsl("  &  ( count = 4 )\n ( cpuTime = \"9\" )");
  ASSERT_TRUE(relations.ok());
  EXPECT_EQ((*relations)[0].values[0], "4");
}

TEST(XrslParseTest, Malformed) {
  EXPECT_FALSE(ParseXrsl("").ok());
  EXPECT_FALSE(ParseXrsl("&").ok());
  EXPECT_FALSE(ParseXrsl("(unclosed=1").ok());
  EXPECT_FALSE(ParseXrsl("(=1)").ok());
  EXPECT_FALSE(ParseXrsl("(a 1)").ok());
  EXPECT_FALSE(ParseXrsl("(a=\"unterminated)").ok());
  EXPECT_FALSE(ParseXrsl("(a=(nested (too deep)))").ok());
}

TEST(JobDescriptionTest, FullExample) {
  const auto job = JobDescription::FromXrsl(kFullExample);
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  EXPECT_EQ(job->executable, "/bin/proteome-scan");
  EXPECT_EQ(job->arguments,
            (std::vector<std::string>{"-w", "7", "--stepwise"}));
  EXPECT_EQ(job->job_name, "hapgrid-scan");
  EXPECT_EQ(job->count, 15);
  EXPECT_EQ(job->chunks, 30);
  EXPECT_EQ(job->TotalChunks(), 30);
  EXPECT_DOUBLE_EQ(job->cpu_time_minutes, 212.0);
  EXPECT_DOUBLE_EQ(job->wall_time_minutes, 330.0);
  EXPECT_EQ(job->runtime_environments,
            (std::vector<std::string>{"blast", "hapgrid"}));
  ASSERT_EQ(job->input_files.size(), 2u);
  EXPECT_EQ(job->input_files[0].name, "proteome.fasta");
  EXPECT_DOUBLE_EQ(job->input_files[0].size_mb, 120.0);
  ASSERT_EQ(job->output_files.size(), 1u);
  EXPECT_DOUBLE_EQ(job->output_files[0].size_mb, 20.0);
}

TEST(JobDescriptionTest, ChunksDefaultsToCount) {
  const auto job = JobDescription::FromXrsl(
      "&(executable=\"/bin/x\")(count=8)(cpuTime=\"10\")(wallTime=\"60\")");
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(job->chunks, 0);
  EXPECT_EQ(job->TotalChunks(), 8);
}

TEST(JobDescriptionTest, RequiredAttributesEnforced) {
  EXPECT_FALSE(JobDescription::FromXrsl(
                   "&(count=1)(cpuTime=\"10\")(wallTime=\"60\")")
                   .ok());  // executable missing
  EXPECT_FALSE(JobDescription::FromXrsl(
                   "&(executable=\"/bin/x\")(wallTime=\"60\")")
                   .ok());  // cpuTime missing
  EXPECT_FALSE(JobDescription::FromXrsl(
                   "&(executable=\"/bin/x\")(cpuTime=\"10\")")
                   .ok());  // wallTime missing
}

TEST(JobDescriptionTest, ValidationErrors) {
  EXPECT_FALSE(JobDescription::FromXrsl(
                   "&(executable=\"x\")(cpuTime=\"0\")(wallTime=\"60\")")
                   .ok());
  EXPECT_FALSE(JobDescription::FromXrsl(
                   "&(executable=\"x\")(cpuTime=\"10\")(wallTime=\"60\")"
                   "(count=4)(chunks=2)")
                   .ok());  // chunks < count
  EXPECT_FALSE(JobDescription::FromXrsl(
                   "&(executable=\"x\")(cpuTime=\"10\")(wallTime=\"60\")"
                   "(mystery=1)")
                   .ok());  // unknown attribute
  EXPECT_FALSE(JobDescription::FromXrsl(
                   "&(executable=\"x\")(cpuTime=\"10\")(wallTime=\"60\")"
                   "(inputFiles=(\"f\" \"sim://abc\"))")
                   .ok());  // bad size
}

TEST(JobDescriptionTest, RoundTripThroughToXrsl) {
  const auto original = JobDescription::FromXrsl(kFullExample);
  ASSERT_TRUE(original.ok());
  const auto reparsed = JobDescription::FromXrsl(original->ToXrsl());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->executable, original->executable);
  EXPECT_EQ(reparsed->arguments, original->arguments);
  EXPECT_EQ(reparsed->count, original->count);
  EXPECT_EQ(reparsed->chunks, original->chunks);
  EXPECT_DOUBLE_EQ(reparsed->cpu_time_minutes, original->cpu_time_minutes);
  EXPECT_EQ(reparsed->runtime_environments, original->runtime_environments);
  ASSERT_EQ(reparsed->input_files.size(), original->input_files.size());
  EXPECT_DOUBLE_EQ(reparsed->input_files[0].size_mb,
                   original->input_files[0].size_mb);
}

TEST(JobDescriptionTest, UnknownUrlSchemeGetsNominalSize) {
  const auto job = JobDescription::FromXrsl(
      "&(executable=\"x\")(cpuTime=\"10\")(wallTime=\"60\")"
      "(inputFiles=(\"f\" \"gsiftp://example.org/f\"))");
  ASSERT_TRUE(job.ok());
  EXPECT_DOUBLE_EQ(job->input_files[0].size_mb, 1.0);
}

}  // namespace
}  // namespace gm::grid
