// Tests for the scheduler-agent behaviours that drive the paper's
// evaluation shape: adaptive re-bidding, soft deadlines, speculative
// straggler re-execution, and dynamic chunk dispatch.
#include <gtest/gtest.h>

#include "grid/broker.hpp"
#include "market/sls.hpp"

namespace gm::grid {
namespace {

class AgentBehaviorTest : public ::testing::Test {
 protected:
  AgentBehaviorTest()
      : bank_(crypto::TestGroup(), 3),
        ca_(crypto::DistinguishedName{"SE", "SweGrid", "CA", "Root"},
            crypto::TestGroup(), rng_),
        alice_keys_(crypto::KeyPair::Generate(crypto::TestGroup(), rng_)),
        sls_(kernel_) {
    EXPECT_TRUE(bank_.CreateAccount("alice", alice_keys_.public_key()).ok());
    EXPECT_TRUE(bank_.CreateAccount("broker", {}).ok());
    EXPECT_TRUE(bank_.Mint("alice", Money::Dollars(100000), 0).ok());
    authorizer_ = std::make_unique<TokenAuthorizer>(bank_, "broker");
    const auto cert = ca_.Issue(alice_dn_, alice_keys_.public_key(), 0,
                                sim::Hours(100000), rng_);
    EXPECT_TRUE(authorizer_->RegisterIdentity(cert, ca_, 0).ok());
  }

  void BuildPlugin(PluginConfig config) {
    config.reference_capacity = 100.0;
    plugin_ = std::make_unique<TycoonSchedulerPlugin>(
        kernel_, sls_, bank_, host::PackageCatalog::Default(), config);
    broker_ = std::make_unique<GridBroker>(kernel_, bank_, *authorizer_,
                                           *plugin_);
    for (auto& auctioneer : auctioneers_) {
      EXPECT_TRUE(plugin_
                      ->RegisterAuctioneer(
                          *auctioneer,
                          "auctioneer:" + auctioneer->physical_host().id())
                      .ok());
    }
  }

  market::Auctioneer& AddHost(const std::string& id, int cpus = 1) {
    host::HostSpec spec;
    spec.id = id;
    spec.cpus = cpus;
    spec.cycles_per_cpu = 100.0;
    spec.virtualization_overhead = 0.0;
    spec.vm_boot_time = 0;
    hosts_.push_back(std::make_unique<host::PhysicalHost>(spec));
    auctioneers_.push_back(
        std::make_unique<market::Auctioneer>(*hosts_.back(), kernel_));
    auctioneers_.back()->Start();
    publishers_.push_back(std::make_unique<market::SlsPublisher>(
        *auctioneers_.back(), sls_, "site", kernel_, sim::Seconds(30)));
    return *auctioneers_.back();
  }

  /// Pin a background tenant with an always-busy VM and a standing rate.
  void AddTenant(market::Auctioneer& auctioneer, Micros rate) {
    ASSERT_TRUE(auctioneer.OpenAccount("tenant").ok());
    ASSERT_TRUE(
        auctioneer.Fund("tenant", Money::Dollars(1000000)).ok());
    ASSERT_TRUE(auctioneer
                    .SetBid("tenant", Rate::MicrosPerSec(rate),
                            sim::Hours(1000000))
                    .ok());
    auto vm = auctioneer.AcquireVm("tenant");
    ASSERT_TRUE(vm.ok());
    (*vm)->Enqueue({1, 1e18, nullptr});
  }

  crypto::TransferToken Pay(Money amount) {
    const auto nonce = bank_.TransferNonce("alice");
    const auto auth = alice_keys_.Sign(
        bank::TransferAuthPayload("alice", "broker", amount, *nonce), rng_);
    const auto receipt =
        bank_.Transfer("alice", "broker", amount, auth, kernel_.now());
    return crypto::MintToken(*receipt, alice_dn_.ToString(), alice_keys_,
                             rng_);
  }

  static std::string Xrsl(int count, int chunks, double cpu_min,
                          double wall_min) {
    JobDescription description;
    description.executable = "/bin/x";
    description.job_name = "agent-test";
    description.count = count;
    description.chunks = chunks;
    description.cpu_time_minutes = cpu_min;
    description.wall_time_minutes = wall_min;
    return description.ToXrsl();
  }

  Rng rng_{66};
  sim::Kernel kernel_;
  bank::Bank bank_;
  crypto::CertificateAuthority ca_;
  crypto::KeyPair alice_keys_;
  crypto::DistinguishedName alice_dn_{"SE", "KTH", "PDC", "alice"};
  market::ServiceLocationService sls_;
  std::vector<std::unique_ptr<host::PhysicalHost>> hosts_;
  std::vector<std::unique_ptr<market::Auctioneer>> auctioneers_;
  std::vector<std::unique_ptr<market::SlsPublisher>> publishers_;
  std::unique_ptr<TokenAuthorizer> authorizer_;
  std::unique_ptr<TycoonSchedulerPlugin> plugin_;
  std::unique_ptr<GridBroker> broker_;
};

TEST_F(AgentBehaviorTest, SoftDeadlineJobFinishesAfterWallTime) {
  AddHost("h0");
  BuildPlugin({});
  // 4 chunks x 2 min = 8 min of serial work on one vCPU, wallTime 3 min:
  // cannot meet the target but must still FINISH (reaped only at 4x).
  const auto id = broker_->Submit(Xrsl(1, 4, 2.0, 3.0),
                                  Pay(Money::Dollars(50)));
  ASSERT_TRUE(id.ok());
  kernel_.RunUntil(sim::Minutes(11));
  const JobRecord& job = **broker_->Job(*id);
  EXPECT_EQ(job.state, JobState::kFinished) << job.failure;
  EXPECT_GT(job.finished_at, sim::Minutes(3));  // past the wall target
  EXPECT_LT(job.finished_at, sim::Minutes(12));  // before the reap
}

TEST_F(AgentBehaviorTest, HopelessJobIsReapedAtExpiryFactor) {
  AddHost("h0");
  PluginConfig config;
  config.expiry_factor = 2.0;
  BuildPlugin(config);
  // 60 min of work, wallTime 5 min, reap at 10 min: cannot finish.
  const auto id = broker_->Submit(Xrsl(1, 30, 2.0, 5.0),
                                  Pay(Money::Dollars(50)));
  ASSERT_TRUE(id.ok());
  kernel_.RunUntil(sim::Minutes(30));
  const JobRecord& job = **broker_->Job(*id);
  EXPECT_EQ(job.state, JobState::kExpired);
  EXPECT_EQ(job.finished_at, sim::Minutes(10));
}

TEST_F(AgentBehaviorTest, SpeculationRescuesStragglers) {
  // Both hosts look cheap at submission; shortly after the first chunks
  // are dispatched, a tenant swamps h1 with a bid 10^5x what the job can
  // afford. The chunk running there crawls; a speculative copy on h0
  // must rescue it.
  AddHost("h0");
  market::Auctioneer& contested = AddHost("h1");
  AddTenant(contested, /*rate=*/10);
  BuildPlugin({});
  const auto id = broker_->Submit(Xrsl(2, 4, 1.0, 20.0),
                                  Pay(Money::Dollars(20)));
  ASSERT_TRUE(id.ok());
  kernel_.RunUntil(kernel_.now() + sim::Seconds(30));
  ASSERT_TRUE(contested
                  .SetBid("tenant", Rate::MicrosPerSec(10'000'000),
                          sim::Hours(1000000))
                  .ok());
  kernel_.RunUntil(sim::Hours(1));
  const JobRecord& job = **broker_->Job(*id);
  EXPECT_EQ(job.state, JobState::kFinished) << job.failure;
  EXPECT_TRUE(job.AllChunksDone());
  // At least one chunk was rescued: dispatched to h1 first, completed on
  // h0 by its duplicate.
  int rescued = 0;
  for (const SubJobRecord& subjob : job.subjobs) {
    if (subjob.completed && subjob.host_id == "h0" &&
        subjob.vm_id.find("h0") != std::string::npos) {
      ++rescued;
    }
  }
  EXPECT_GE(rescued, 3);  // h0 ends up doing (nearly) everything
}

TEST_F(AgentBehaviorTest, WithoutSpeculationStragglersBlock) {
  AddHost("h0");
  market::Auctioneer& contested = AddHost("h1");
  AddTenant(contested, /*rate=*/10);
  PluginConfig config;
  config.speculative_execution = false;
  config.expiry_factor = 3.0;
  BuildPlugin(config);
  const auto id = broker_->Submit(Xrsl(2, 4, 1.0, 20.0),
                                  Pay(Money::Dollars(20)));
  ASSERT_TRUE(id.ok());
  kernel_.RunUntil(kernel_.now() + sim::Seconds(30));
  ASSERT_TRUE(contested
                  .SetBid("tenant", Rate::MicrosPerSec(10'000'000),
                          sim::Hours(1000000))
                  .ok());
  kernel_.RunUntil(sim::Hours(2));
  const JobRecord& job = **broker_->Job(*id);
  // The chunk stuck on the swamped host blocks completion until expiry.
  EXPECT_EQ(job.state, JobState::kExpired);
  EXPECT_LT(job.CompletedChunks(), 4);
  EXPECT_GE(job.CompletedChunks(), 2);
}

TEST_F(AgentBehaviorTest, AdaptiveAgentSpendsLessWhenUnpressured) {
  AddHost("h0", /*cpus=*/2);
  // Run the same job with and without adaptive re-bidding; the adaptive
  // agent should finish no later and spend strictly less (it bids pennies
  // on an idle market instead of budget/deadline).
  Money spent_static;
  Money spent_adaptive;
  for (const bool adaptive : {false, true}) {
    PluginConfig config;
    config.rebid_period = adaptive ? sim::Minutes(1) : 0;
    config.reference_capacity = 100.0;
    // Fresh plugin/broker over the same market.
    BuildPlugin(config);
    const auto id = broker_->Submit(Xrsl(1, 4, 1.0, 30.0),
                                    Pay(Money::Dollars(30)));
    ASSERT_TRUE(id.ok());
    kernel_.RunUntil(kernel_.now() + sim::Hours(1));
    const JobRecord& job = **broker_->Job(*id);
    ASSERT_EQ(job.state, JobState::kFinished) << job.failure;
    (adaptive ? spent_adaptive : spent_static) = job.spent;
  }
  EXPECT_LT(spent_adaptive, spent_static);
}

TEST_F(AgentBehaviorTest, StarvedJobFinishesAfterRichCompetitorLeaves) {
  // The Table 2 dynamic in miniature: a poor job shares one CPU with a
  // rich, deadline-pressured one. The poor job conserves its funds, slows
  // down, and completes after the rich job exits.
  AddHost("h0", /*cpus=*/1);
  BuildPlugin({});
  const auto poor = broker_->Submit(Xrsl(1, 4, 1.0, 8.0),
                                    Pay(Money::Dollars(1)));
  ASSERT_TRUE(poor.ok());
  kernel_.RunUntil(kernel_.now() + sim::Seconds(30));
  const auto rich = broker_->Submit(Xrsl(1, 4, 1.0, 5.0),
                                    Pay(Money::Dollars(1000)));
  ASSERT_TRUE(rich.ok());
  kernel_.RunUntil(sim::Hours(1));
  const JobRecord& poor_job = **broker_->Job(*poor);
  const JobRecord& rich_job = **broker_->Job(*rich);
  ASSERT_EQ(rich_job.state, JobState::kFinished) << rich_job.failure;
  ASSERT_EQ(poor_job.state, JobState::kFinished) << poor_job.failure;
  EXPECT_LT(rich_job.finished_at, poor_job.finished_at);
  // The rich job pays a higher cost *rate* (it may spend less in total
  // because it finishes so much sooner).
  EXPECT_GT(rich_job.CostPerHour(), poor_job.CostPerHour());
  // The poor job must not have gone broke.
  EXPECT_LE(poor_job.spent, Money::Dollars(1));
}

TEST_F(AgentBehaviorTest, SpotPriceExcludingUser) {
  market::Auctioneer& auctioneer = AddHost("h0");
  ASSERT_TRUE(auctioneer.OpenAccount("a").ok());
  ASSERT_TRUE(auctioneer.OpenAccount("b").ok());
  ASSERT_TRUE(auctioneer.Fund("a", Money::FromMicros(1000)).ok());
  ASSERT_TRUE(auctioneer.Fund("b", Money::FromMicros(1000)).ok());
  ASSERT_TRUE(
      auctioneer.SetBid("a", Rate::MicrosPerSec(300), sim::Hours(1)).ok());
  ASSERT_TRUE(
      auctioneer.SetBid("b", Rate::MicrosPerSec(500), sim::Hours(1)).ok());
  EXPECT_EQ(auctioneer.SpotPriceRate().micros_per_sec(), 800);
  EXPECT_EQ(auctioneer.SpotPriceRateExcluding("a").micros_per_sec(), 500);
  EXPECT_EQ(auctioneer.SpotPriceRateExcluding("b").micros_per_sec(), 300);
  EXPECT_EQ(auctioneer.SpotPriceRateExcluding("ghost").micros_per_sec(), 800);
}

}  // namespace
}  // namespace gm::grid
