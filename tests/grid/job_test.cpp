#include "grid/job.hpp"

#include <gtest/gtest.h>

namespace gm::grid {
namespace {

TEST(JobStateTest, NamesAndTerminality) {
  EXPECT_STREQ(JobStateName(JobState::kSubmitted), "SUBMITTED");
  EXPECT_STREQ(JobStateName(JobState::kFinished), "FINISHED");
  EXPECT_FALSE(IsTerminal(JobState::kRunning));
  EXPECT_TRUE(IsTerminal(JobState::kFinished));
  EXPECT_TRUE(IsTerminal(JobState::kExpired));
  EXPECT_TRUE(IsTerminal(JobState::kFailed));
  EXPECT_TRUE(IsTerminal(JobState::kCancelled));
}

TEST(JobStateTest, HappyPathTransitions) {
  const JobState path[] = {JobState::kSubmitted, JobState::kAuthorized,
                           JobState::kScheduling, JobState::kStagingIn,
                           JobState::kRunning, JobState::kStagingOut,
                           JobState::kFinished};
  for (std::size_t i = 0; i + 1 < std::size(path); ++i) {
    EXPECT_TRUE(CheckTransition(path[i], path[i + 1]).ok())
        << JobStateName(path[i]);
  }
}

TEST(JobStateTest, SkippingStatesRejected) {
  EXPECT_FALSE(CheckTransition(JobState::kSubmitted, JobState::kRunning).ok());
  EXPECT_FALSE(
      CheckTransition(JobState::kAuthorized, JobState::kFinished).ok());
  EXPECT_FALSE(CheckTransition(JobState::kRunning, JobState::kRunning).ok());
}

TEST(JobStateTest, FailureReachableFromAnyLiveState) {
  for (JobState from : {JobState::kSubmitted, JobState::kScheduling,
                        JobState::kRunning, JobState::kStagingOut}) {
    EXPECT_TRUE(CheckTransition(from, JobState::kFailed).ok());
    EXPECT_TRUE(CheckTransition(from, JobState::kCancelled).ok());
    EXPECT_TRUE(CheckTransition(from, JobState::kExpired).ok());
  }
}

TEST(JobStateTest, TerminalStatesAreFinal) {
  for (JobState from : {JobState::kFinished, JobState::kFailed,
                        JobState::kExpired, JobState::kCancelled}) {
    EXPECT_FALSE(CheckTransition(from, JobState::kRunning).ok());
    EXPECT_FALSE(CheckTransition(from, JobState::kFailed).ok());
  }
}

TEST(JobRecordTest, AdvanceStateStampsTimes) {
  JobRecord job;
  job.submitted_at = 0;
  ASSERT_TRUE(AdvanceState(job, JobState::kAuthorized, 10).ok());
  ASSERT_TRUE(AdvanceState(job, JobState::kScheduling, 20).ok());
  ASSERT_TRUE(AdvanceState(job, JobState::kStagingIn, 30).ok());
  ASSERT_TRUE(AdvanceState(job, JobState::kRunning, 40).ok());
  EXPECT_EQ(job.running_at, 40);
  ASSERT_TRUE(AdvanceState(job, JobState::kStagingOut, 50).ok());
  ASSERT_TRUE(AdvanceState(job, JobState::kFinished, 60).ok());
  EXPECT_EQ(job.finished_at, 60);
  EXPECT_FALSE(AdvanceState(job, JobState::kRunning, 70).ok());
}

TEST(JobRecordTest, ChunkAccounting) {
  JobRecord job;
  job.subjobs.resize(4);
  EXPECT_EQ(job.CompletedChunks(), 0);
  EXPECT_FALSE(job.AllChunksDone());
  for (int i = 0; i < 4; ++i) {
    job.subjobs[static_cast<std::size_t>(i)].completed = true;
    job.subjobs[static_cast<std::size_t>(i)].started_at = sim::Minutes(i);
    job.subjobs[static_cast<std::size_t>(i)].completed_at =
        sim::Minutes(i + 10);
  }
  EXPECT_EQ(job.CompletedChunks(), 4);
  EXPECT_TRUE(job.AllChunksDone());
  EXPECT_DOUBLE_EQ(job.MeanChunkLatencyMinutes(), 10.0);
}

TEST(JobRecordTest, EmptySubjobsNeverDone) {
  JobRecord job;
  EXPECT_FALSE(job.AllChunksDone());
  EXPECT_DOUBLE_EQ(job.MeanChunkLatencyMinutes(), 0.0);
}

TEST(JobRecordTest, TurnaroundAndCost) {
  JobRecord job;
  job.submitted_at = 0;
  job.finished_at = sim::Hours(2);
  job.spent = Money::Dollars(10.0);
  EXPECT_DOUBLE_EQ(job.TurnaroundHours(), 2.0);
  EXPECT_DOUBLE_EQ(job.CostPerHour(), 5.0);

  JobRecord unfinished;
  unfinished.submitted_at = 0;
  EXPECT_LT(unfinished.TurnaroundHours(), 0.0);
  EXPECT_DOUBLE_EQ(unfinished.CostPerHour(), 0.0);
}

}  // namespace
}  // namespace gm::grid
