#include "store/store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <vector>

namespace gm::store {
namespace {

namespace fs = std::filesystem;

fs::path FreshDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("gm_store_" + name);
  fs::remove_all(dir);
  return dir;
}

std::vector<fs::path> SnapshotFiles(const fs::path& dir) {
  std::vector<fs::path> snaps;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.path().extension() == ".snap") snaps.push_back(entry.path());
  std::sort(snaps.begin(), snaps.end());
  return snaps;
}

// Minimal Recoverable: an append-only register of integers.
class ToyRegister : public Recoverable {
 public:
  Status Add(DurableStore& store, std::int64_t value) {
    net::Writer writer;
    writer.WriteI64(value);
    GM_RETURN_IF_ERROR(store.Append(writer.data()));
    values_.push_back(value);
    return store.MaybeSnapshot(*this);
  }

  Status ApplyRecord(const Bytes& record) override {
    net::Reader reader(record);
    GM_ASSIGN_OR_RETURN(const std::int64_t value, reader.ReadI64());
    values_.push_back(value);
    return Status::Ok();
  }

  void WriteSnapshot(net::Writer& writer) const override {
    writer.WriteVarint(values_.size());
    for (std::int64_t value : values_) writer.WriteI64(value);
  }

  Status LoadSnapshot(net::Reader& reader) override {
    values_.clear();
    GM_ASSIGN_OR_RETURN(const std::uint64_t count, reader.ReadVarint());
    for (std::uint64_t i = 0; i < count; ++i) {
      GM_ASSIGN_OR_RETURN(const std::int64_t value, reader.ReadI64());
      values_.push_back(value);
    }
    return Status::Ok();
  }

  const std::vector<std::int64_t>& values() const { return values_; }

 private:
  std::vector<std::int64_t> values_;
};

TEST(DurableStoreTest, RecoverOnEmptyDirectoryIsCleanNoop) {
  const fs::path dir = FreshDir("empty");
  auto store = DurableStore::Open(dir.string());
  ASSERT_TRUE(store.ok()) << store.status().message();
  ToyRegister state;
  auto stats = (*store)->Recover(state);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->snapshot_loaded);
  EXPECT_EQ(stats->replayed_records, 0u);
  EXPECT_TRUE(state.values().empty());
}

TEST(DurableStoreTest, LogOnlyRecovery) {
  const fs::path dir = FreshDir("logonly");
  {
    auto store = DurableStore::Open(dir.string());
    ASSERT_TRUE(store.ok());
    ToyRegister state;
    for (std::int64_t v : {10, -20, 30}) ASSERT_TRUE(state.Add(**store, v).ok());
  }
  auto store = DurableStore::Open(dir.string());
  ASSERT_TRUE(store.ok());
  ToyRegister recovered;
  auto stats = (*store)->Recover(recovered);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->snapshot_loaded);
  EXPECT_EQ(stats->replayed_records, 3u);
  EXPECT_EQ(recovered.values(), (std::vector<std::int64_t>{10, -20, 30}));
}

TEST(DurableStoreTest, SnapshotPlusLogTailRecovery) {
  const fs::path dir = FreshDir("snaptail");
  {
    auto store = DurableStore::Open(dir.string());
    ASSERT_TRUE(store.ok());
    ToyRegister state;
    for (std::int64_t v : {1, 2, 3, 4, 5}) ASSERT_TRUE(state.Add(**store, v).ok());
    ASSERT_TRUE((*store)->WriteSnapshot(state).ok());
    for (std::int64_t v : {6, 7, 8}) ASSERT_TRUE(state.Add(**store, v).ok());
  }
  auto store = DurableStore::Open(dir.string());
  ASSERT_TRUE(store.ok());
  ToyRegister recovered;
  auto stats = (*store)->Recover(recovered);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->snapshot_loaded);
  EXPECT_EQ(stats->snapshot_seq, 5u);
  EXPECT_EQ(stats->replayed_records, 3u);
  EXPECT_EQ(recovered.values(),
            (std::vector<std::int64_t>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(DurableStoreTest, SnapshotCompactsSegmentsAndOlderSnapshots) {
  const fs::path dir = FreshDir("compact");
  StoreOptions options;
  options.segment_max_bytes = 32;  // many tiny segments
  auto store = DurableStore::Open(dir.string(), options);
  ASSERT_TRUE(store.ok());
  ToyRegister state;
  for (std::int64_t v = 0; v < 16; ++v) ASSERT_TRUE(state.Add(**store, v).ok());
  ASSERT_GT((*store)->wal().SegmentFiles().size(), 1u);
  ASSERT_TRUE((*store)->WriteSnapshot(state).ok());
  ASSERT_TRUE((*store)->WriteSnapshot(state).ok());  // supersedes the first
  EXPECT_EQ((*store)->wal().SegmentFiles().size(), 1u);
  EXPECT_EQ(SnapshotFiles(dir).size(), 1u);
  EXPECT_EQ((*store)->stats().snapshots_written, 2u);

  ToyRegister recovered;
  auto stats = (*store)->Recover(recovered);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->snapshot_loaded);
  EXPECT_EQ(recovered.values(), state.values());
}

TEST(DurableStoreTest, MaybeSnapshotHonorsThreshold) {
  const fs::path dir = FreshDir("threshold");
  StoreOptions options;
  options.snapshot_every_records = 4;
  auto store = DurableStore::Open(dir.string(), options);
  ASSERT_TRUE(store.ok());
  ToyRegister state;
  for (std::int64_t v = 0; v < 3; ++v) ASSERT_TRUE(state.Add(**store, v).ok());
  EXPECT_EQ((*store)->stats().snapshots_written, 0u);
  ASSERT_TRUE(state.Add(**store, 3).ok());  // 4th append trips the checkpoint
  EXPECT_EQ((*store)->stats().snapshots_written, 1u);
  for (std::int64_t v = 4; v < 8; ++v) ASSERT_TRUE(state.Add(**store, v).ok());
  EXPECT_EQ((*store)->stats().snapshots_written, 2u);
}

TEST(DurableStoreTest, CorruptSnapshotFallsBackToOlderOne) {
  const fs::path dir = FreshDir("fallback");
  const fs::path stash = FreshDir("fallback_stash");
  fs::create_directories(stash);
  {
    auto store = DurableStore::Open(dir.string());
    ASSERT_TRUE(store.ok());
    ToyRegister state;
    for (std::int64_t v : {1, 2}) ASSERT_TRUE(state.Add(**store, v).ok());
    ASSERT_TRUE((*store)->WriteSnapshot(state).ok());
    // Stash the first snapshot before the next one deletes it.
    auto snaps = SnapshotFiles(dir);
    ASSERT_EQ(snaps.size(), 1u);
    fs::copy_file(snaps[0], stash / snaps[0].filename());
    for (std::int64_t v : {3, 4}) ASSERT_TRUE(state.Add(**store, v).ok());
    ASSERT_TRUE((*store)->WriteSnapshot(state).ok());
  }
  // Restore the old snapshot and corrupt the newest one's payload.
  for (const auto& entry : fs::directory_iterator(stash))
    fs::copy_file(entry.path(), dir / entry.path().filename());
  auto snaps = SnapshotFiles(dir);
  ASSERT_EQ(snaps.size(), 2u);
  {
    const fs::path newest = snaps.back();
    const auto size = fs::file_size(newest);
    std::fstream f(newest, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(size - 1));
    const char junk = 0x5A;
    f.write(&junk, 1);
  }

  auto store = DurableStore::Open(dir.string());
  ASSERT_TRUE(store.ok());
  ToyRegister recovered;
  auto stats = (*store)->Recover(recovered);
  ASSERT_TRUE(stats.ok()) << stats.status().message();
  EXPECT_TRUE(stats->snapshot_loaded);
  EXPECT_EQ(stats->snapshot_seq, 2u);
  // Records 3/4 were compacted away behind the (now corrupt) newest
  // snapshot; recovery restores the longest consistent prefix.
  EXPECT_EQ(recovered.values(), (std::vector<std::int64_t>{1, 2}));
}

TEST(DurableStoreTest, RecoveryIsDeterministic) {
  const fs::path dir = FreshDir("determinism");
  {
    auto store = DurableStore::Open(dir.string());
    ASSERT_TRUE(store.ok());
    ToyRegister state;
    for (std::int64_t v = 0; v < 50; ++v)
      ASSERT_TRUE(state.Add(**store, v * 7 - 3).ok());
    ASSERT_TRUE((*store)->WriteSnapshot(state).ok());
    for (std::int64_t v = 0; v < 9; ++v)
      ASSERT_TRUE(state.Add(**store, -v).ok());
  }
  std::vector<std::int64_t> first;
  for (int round = 0; round < 3; ++round) {
    auto store = DurableStore::Open(dir.string());
    ASSERT_TRUE(store.ok());
    ToyRegister recovered;
    ASSERT_TRUE((*store)->Recover(recovered).ok());
    if (round == 0) {
      first = recovered.values();
      ASSERT_EQ(first.size(), 59u);
    } else {
      EXPECT_EQ(recovered.values(), first);
    }
  }
}

TEST(DurableStoreTest, StatsAccumulate) {
  const fs::path dir = FreshDir("stats");
  auto store = DurableStore::Open(dir.string());
  ASSERT_TRUE(store.ok());
  ToyRegister state;
  for (std::int64_t v : {5, 6}) ASSERT_TRUE(state.Add(**store, v).ok());
  // stats() returns a value snapshot taken under the store lock, so it
  // must be re-fetched to observe later mutations.
  const StoreStats before = (*store)->stats();
  EXPECT_EQ(before.appended_records, 2u);
  EXPECT_GT(before.appended_bytes, 0u);
  ToyRegister recovered;
  ASSERT_TRUE((*store)->Recover(recovered).ok());
  const StoreStats after = (*store)->stats();
  EXPECT_EQ(after.recoveries, 1u);
  EXPECT_EQ(after.replayed_records, 2u);
}

}  // namespace
}  // namespace gm::store
