#include "store/wal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "store/crc32.hpp"

namespace gm::store {
namespace {

namespace fs = std::filesystem;

fs::path FreshDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("gm_wal_" + name);
  fs::remove_all(dir);
  return dir;
}

Bytes Payload(const std::string& text) {
  return Bytes(text.begin(), text.end());
}

std::vector<std::string> ReplayAll(WriteAheadLog& wal,
                                   RecoveryStats* stats_out = nullptr) {
  std::vector<std::string> seen;
  auto stats = wal.Replay(0, [&](std::uint64_t, const Bytes& payload) {
    seen.emplace_back(payload.begin(), payload.end());
    return Status::Ok();
  });
  EXPECT_TRUE(stats.ok()) << stats.status().message();
  if (stats_out != nullptr && stats.ok()) *stats_out = *stats;
  return seen;
}

TEST(Crc32Test, MatchesKnownVector) {
  const std::string check = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const std::uint8_t*>(check.data()),
                  check.size()),
            0xCBF43926u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const Bytes data = Payload("hello, write-ahead world");
  const std::uint32_t one_shot = Crc32(data);
  const std::uint32_t first = Crc32(data.data(), 5);
  const std::uint32_t chained = Crc32(data.data() + 5, data.size() - 5, first);
  EXPECT_EQ(chained, one_shot);
}

TEST(WalTest, EmptyDirectoryRecoversCleanly) {
  const fs::path dir = FreshDir("empty");
  auto wal = WriteAheadLog::Open(dir.string());
  ASSERT_TRUE(wal.ok()) << wal.status().message();
  RecoveryStats stats;
  EXPECT_TRUE(ReplayAll(**wal, &stats).empty());
  EXPECT_EQ(stats.replayed_records, 0u);
  EXPECT_EQ(stats.truncated_bytes, 0u);
  EXPECT_EQ((*wal)->next_seq(), 1u);
  // The empty log is immediately usable.
  EXPECT_TRUE((*wal)->Append(Payload("first")).ok());
}

TEST(WalTest, AppendReplayRoundTrip) {
  const fs::path dir = FreshDir("roundtrip");
  auto wal = WriteAheadLog::Open(dir.string());
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(Payload("alpha")).ok());
  ASSERT_TRUE((*wal)->Append(Payload("beta")).ok());
  ASSERT_TRUE((*wal)->Append(Payload("gamma")).ok());

  std::vector<std::uint64_t> seqs;
  std::vector<std::string> seen;
  auto stats = (*wal)->Replay(0, [&](std::uint64_t seq, const Bytes& payload) {
    seqs.push_back(seq);
    seen.emplace_back(payload.begin(), payload.end());
    return Status::Ok();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(seen, (std::vector<std::string>{"alpha", "beta", "gamma"}));
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(stats->replayed_records, 3u);
}

TEST(WalTest, SequenceContinuesAcrossReopen) {
  const fs::path dir = FreshDir("reopen");
  {
    auto wal = WriteAheadLog::Open(dir.string());
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(Payload("one")).ok());
    ASSERT_TRUE((*wal)->Append(Payload("two")).ok());
  }
  auto wal = WriteAheadLog::Open(dir.string());
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ((*wal)->next_seq(), 3u);
  ASSERT_TRUE((*wal)->Append(Payload("three")).ok());
  EXPECT_EQ(ReplayAll(**wal),
            (std::vector<std::string>{"one", "two", "three"}));
}

TEST(WalTest, ReplayAfterSeqSkipsPrefix) {
  const fs::path dir = FreshDir("after");
  auto wal = WriteAheadLog::Open(dir.string());
  ASSERT_TRUE(wal.ok());
  for (const char* p : {"a", "b", "c", "d"})
    ASSERT_TRUE((*wal)->Append(Payload(p)).ok());
  std::vector<std::string> seen;
  auto stats = (*wal)->Replay(2, [&](std::uint64_t, const Bytes& payload) {
    seen.emplace_back(payload.begin(), payload.end());
    return Status::Ok();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(seen, (std::vector<std::string>{"c", "d"}));
  EXPECT_EQ(stats->skipped_duplicates, 2u);
}

TEST(WalTest, TruncatedFinalRecordIsDroppedNotFatal) {
  const fs::path dir = FreshDir("torn");
  std::string segment;
  {
    auto wal = WriteAheadLog::Open(dir.string());
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(Payload("intact-record-1")).ok());
    ASSERT_TRUE((*wal)->Append(Payload("intact-record-2")).ok());
    ASSERT_TRUE((*wal)->Append(Payload("torn-record-3")).ok());
    ASSERT_EQ((*wal)->SegmentFiles().size(), 1u);
    segment = (*wal)->SegmentFiles()[0];
  }
  // Simulate a crash mid-write: cut 4 bytes out of the final payload.
  const fs::path file = dir / segment;
  const auto full = fs::file_size(file);
  fs::resize_file(file, full - 4);

  auto wal = WriteAheadLog::Open(dir.string());
  ASSERT_TRUE(wal.ok()) << wal.status().message();
  EXPECT_GT((*wal)->open_truncated_bytes(), 0u);
  EXPECT_EQ(ReplayAll(**wal),
            (std::vector<std::string>{"intact-record-1", "intact-record-2"}));
  // The torn seq was never durable, so it is reused.
  EXPECT_EQ((*wal)->next_seq(), 3u);
  ASSERT_TRUE((*wal)->Append(Payload("rewritten-3")).ok());
  EXPECT_EQ(ReplayAll(**wal),
            (std::vector<std::string>{"intact-record-1", "intact-record-2",
                                      "rewritten-3"}));
}

TEST(WalTest, FlippedBitFailsChecksumAndTruncates) {
  const fs::path dir = FreshDir("bitflip");
  std::string segment;
  {
    auto wal = WriteAheadLog::Open(dir.string());
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(Payload("good")).ok());
    ASSERT_TRUE((*wal)->Append(Payload("corrupted-later")).ok());
    segment = (*wal)->SegmentFiles()[0];
  }
  // Flip one bit in the final record's payload (last byte of the file).
  const fs::path file = dir / segment;
  const auto size = fs::file_size(file);
  {
    std::fstream f(file, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(size - 1));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(size - 1));
    f.write(&byte, 1);
  }

  auto wal = WriteAheadLog::Open(dir.string());
  ASSERT_TRUE(wal.ok()) << wal.status().message();
  EXPECT_GT((*wal)->open_truncated_bytes(), 0u);
  EXPECT_EQ(ReplayAll(**wal), (std::vector<std::string>{"good"}));
}

TEST(WalTest, GarbageLengthFieldIsTreatedAsTornTail) {
  const fs::path dir = FreshDir("garbage");
  std::string segment;
  {
    auto wal = WriteAheadLog::Open(dir.string());
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(Payload("valid")).ok());
    segment = (*wal)->SegmentFiles()[0];
  }
  {
    // Append a bogus record header claiming a huge payload.
    std::ofstream f(dir / segment, std::ios::binary | std::ios::app);
    const std::uint32_t huge = 0xFFFFFFFFu;
    f.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
    f.write("junkjunkjunk", 12);
  }
  auto wal = WriteAheadLog::Open(dir.string());
  ASSERT_TRUE(wal.ok());
  EXPECT_GT((*wal)->open_truncated_bytes(), 0u);
  EXPECT_EQ(ReplayAll(**wal), (std::vector<std::string>{"valid"}));
}

TEST(WalTest, RotationSplitsSegmentsAndReplaysAll) {
  const fs::path dir = FreshDir("rotate");
  WalOptions options;
  options.segment_max_bytes = 64;  // force frequent rotation
  auto wal = WriteAheadLog::Open(dir.string(), options);
  ASSERT_TRUE(wal.ok());
  std::vector<std::string> expected;
  for (int i = 0; i < 20; ++i) {
    expected.push_back("record-" + std::to_string(i));
    ASSERT_TRUE((*wal)->Append(Payload(expected.back())).ok());
  }
  EXPECT_GT((*wal)->SegmentFiles().size(), 1u);
  EXPECT_EQ(ReplayAll(**wal), expected);

  // Reopen still sees every segment.
  wal = WriteAheadLog::Open(dir.string(), options);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(ReplayAll(**wal), expected);
}

TEST(WalTest, DuplicateSegmentRecordsAreSkippedOnce) {
  const fs::path dir = FreshDir("dup");
  std::vector<std::string> segments;
  {
    auto wal = WriteAheadLog::Open(dir.string());
    ASSERT_TRUE(wal.ok());
    for (const char* p : {"s1-a", "s1-b", "s1-c"})
      ASSERT_TRUE((*wal)->Append(Payload(p)).ok());
    ASSERT_TRUE((*wal)->Rotate().ok());
    for (const char* p : {"s2-d", "s2-e"})
      ASSERT_TRUE((*wal)->Append(Payload(p)).ok());
    segments = (*wal)->SegmentFiles();
    ASSERT_EQ(segments.size(), 2u);
  }
  // An operator restores a backup of the first segment under a name that
  // sorts after everything else: its records are duplicates.
  fs::copy_file(dir / segments[0], dir / "wal-00000000000000000099.log");

  auto wal = WriteAheadLog::Open(dir.string());
  ASSERT_TRUE(wal.ok());
  RecoveryStats stats;
  EXPECT_EQ(ReplayAll(**wal, &stats),
            (std::vector<std::string>{"s1-a", "s1-b", "s1-c", "s2-d", "s2-e"}));
  EXPECT_EQ(stats.skipped_duplicates, 3u);
  EXPECT_EQ(stats.replayed_records, 5u);
}

TEST(WalTest, DropSegmentsExceptActiveCompacts) {
  const fs::path dir = FreshDir("drop");
  WalOptions options;
  options.segment_max_bytes = 48;
  auto wal = WriteAheadLog::Open(dir.string(), options);
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 12; ++i)
    ASSERT_TRUE((*wal)->Append(Payload("payload-" + std::to_string(i))).ok());
  ASSERT_GT((*wal)->SegmentFiles().size(), 1u);
  ASSERT_TRUE((*wal)->Rotate().ok());
  ASSERT_TRUE((*wal)->DropSegmentsExceptActive().ok());
  EXPECT_EQ((*wal)->SegmentFiles().size(), 1u);
  // Old records are gone; the sequence counter is preserved.
  EXPECT_TRUE(ReplayAll(**wal).empty());
  EXPECT_EQ((*wal)->next_seq(), 13u);
}

TEST(WalTest, ApplyFailureAbortsReplay) {
  const fs::path dir = FreshDir("abort");
  auto wal = WriteAheadLog::Open(dir.string());
  ASSERT_TRUE(wal.ok());
  for (const char* p : {"ok", "bad", "never-reached"})
    ASSERT_TRUE((*wal)->Append(Payload(p)).ok());
  int applied = 0;
  auto stats = (*wal)->Replay(0, [&](std::uint64_t seq, const Bytes&) {
    if (seq == 2) return Status::Internal("poisoned record");
    ++applied;
    return Status::Ok();
  });
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(applied, 1);
}

}  // namespace
}  // namespace gm::store
