// Market-dynamics tests: iterated best response converges to the fair,
// efficient equilibrium Feldman et al. prove (and the paper relies on).
#include <gtest/gtest.h>

#include <cmath>

#include "bestresponse/best_response.hpp"
#include "common/rng.hpp"

namespace gm::br {
namespace {

/// One round: every user in turn best-responds to the others' current bids.
/// Returns the largest bid change seen in the round.
double BestResponseRound(const std::vector<double>& weights,
                         const std::vector<double>& budgets,
                         std::vector<std::vector<double>>& bids) {
  const std::size_t users = budgets.size();
  const std::size_t hosts = weights.size();
  BestResponseSolver solver;
  double max_change = 0.0;
  for (std::size_t u = 0; u < users; ++u) {
    std::vector<HostBidInput> inputs;
    for (std::size_t j = 0; j < hosts; ++j) {
      double others = 0.0;
      for (std::size_t v = 0; v < users; ++v) {
        if (v != u) others += bids[v][j];
      }
      inputs.push_back({"h" + std::to_string(j), weights[j],
                        Rate::DollarsPerSec(others)});
    }
    const auto result = solver.Solve(inputs, Rate::DollarsPerSec(budgets[u]));
    EXPECT_TRUE(result.ok());
    for (std::size_t j = 0; j < hosts; ++j) {
      const double bid = result->bids[j].bid.dollars_per_sec();
      max_change = std::max(max_change, std::fabs(bid - bids[u][j]));
      bids[u][j] = bid;
    }
  }
  return max_change;
}

double UserUtility(const std::vector<double>& weights,
                   const std::vector<std::vector<double>>& bids,
                   std::size_t user) {
  double utility = 0.0;
  for (std::size_t j = 0; j < weights.size(); ++j) {
    double total = 0.0;
    for (const auto& user_bids : bids) total += user_bids[j];
    if (total > 0.0) utility += weights[j] * bids[user][j] / total;
  }
  return utility;
}

TEST(EquilibriumTest, IteratedBestResponseConverges) {
  const std::vector<double> weights{3.0, 2.0, 1.0, 2.5};
  const std::vector<double> budgets{1.0, 1.0, 1.0};
  std::vector<std::vector<double>> bids(
      budgets.size(), std::vector<double>(weights.size(), 0.0));
  // Arbitrary unequal start.
  bids[0] = {0.7, 0.1, 0.1, 0.1};
  bids[1] = {0.1, 0.7, 0.1, 0.1};
  bids[2] = {0.25, 0.25, 0.25, 0.25};

  double change = 1.0;
  int rounds = 0;
  while (change > 1e-10 && rounds < 500) {
    change = BestResponseRound(weights, budgets, bids);
    ++rounds;
  }
  EXPECT_LT(change, 1e-10) << "no convergence in " << rounds << " rounds";
  EXPECT_LT(rounds, 500);
}

TEST(EquilibriumTest, EqualBudgetsReachEqualUtilitiesAndShares) {
  // Fairness in the equilibrium: users with equal budgets end with equal
  // utilities and equal per-host bids.
  const std::vector<double> weights{4.0, 1.0, 2.0};
  const std::vector<double> budgets{2.0, 2.0, 2.0, 2.0};
  Rng rng(3);
  std::vector<std::vector<double>> bids(
      budgets.size(), std::vector<double>(weights.size()));
  for (auto& user_bids : bids) {
    double sum = 0.0;
    for (double& bid : user_bids) {
      bid = rng.Uniform(0.1, 1.0);
      sum += bid;
    }
    for (double& bid : user_bids) bid *= budgets[0] / sum;
  }
  for (int round = 0; round < 300; ++round)
    BestResponseRound(weights, budgets, bids);

  const double reference = UserUtility(weights, bids, 0);
  for (std::size_t u = 1; u < budgets.size(); ++u) {
    EXPECT_NEAR(UserUtility(weights, bids, u), reference, 1e-6 * reference);
    for (std::size_t j = 0; j < weights.size(); ++j) {
      EXPECT_NEAR(bids[u][j], bids[0][j], 1e-6 * budgets[0]);
    }
  }
  // Everyone gets an equal slice of the total weight.
  EXPECT_NEAR(reference, (4.0 + 1.0 + 2.0) / 4.0, 1e-6);
}

TEST(EquilibriumTest, BiggerBudgetEarnsMoreUtility) {
  // Incentive compatibility: in equilibrium, utility grows with budget.
  const std::vector<double> weights{3.0, 3.0, 3.0, 3.0, 3.0};
  const std::vector<double> budgets{1.0, 2.0, 4.0};
  std::vector<std::vector<double>> bids(
      budgets.size(), std::vector<double>(weights.size(), 0.2));
  for (int round = 0; round < 300; ++round)
    BestResponseRound(weights, budgets, bids);
  const double u0 = UserUtility(weights, bids, 0);
  const double u1 = UserUtility(weights, bids, 1);
  const double u2 = UserUtility(weights, bids, 2);
  EXPECT_LT(u0, u1);
  EXPECT_LT(u1, u2);
  // With symmetric hosts, equilibrium shares are proportional to budget.
  EXPECT_NEAR(u1 / u0, 2.0, 0.01);
  EXPECT_NEAR(u2 / u0, 4.0, 0.01);
}

TEST(EquilibriumTest, EquilibriumIsEfficient) {
  // The whole capacity is allocated: utilities sum to the total weight.
  const std::vector<double> weights{5.0, 1.5, 2.5};
  const std::vector<double> budgets{1.0, 3.0};
  std::vector<std::vector<double>> bids(
      budgets.size(), std::vector<double>(weights.size(), 0.3));
  for (int round = 0; round < 300; ++round)
    BestResponseRound(weights, budgets, bids);
  double total_utility = 0.0;
  for (std::size_t u = 0; u < budgets.size(); ++u)
    total_utility += UserUtility(weights, bids, u);
  EXPECT_NEAR(total_utility, 5.0 + 1.5 + 2.5, 1e-6);
}

}  // namespace
}  // namespace gm::br
