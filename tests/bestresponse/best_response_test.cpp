#include "bestresponse/best_response.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.hpp"

namespace gm::br {
namespace {

double TotalBid(const BestResponseResult& result) {
  double total = 0.0;
  for (const auto& allocation : result.bids)
    total += allocation.bid.dollars_per_sec();
  return total;
}

TEST(BestResponseTest, SingleHostTakesWholeBudget) {
  BestResponseSolver solver;
  const auto result = solver.Solve({{"h1", 100.0, Rate::DollarsPerSec(2.0)}},
                                   Rate::DollarsPerSec(10.0));
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->bids[0].bid.dollars_per_sec(), 10.0, 1e-12);
  EXPECT_NEAR(result->bids[0].expected_share, 10.0 / 12.0, 1e-12);
  EXPECT_NEAR(result->utility, 100.0 * 10.0 / 12.0, 1e-9);
}

TEST(BestResponseTest, SymmetricHostsSplitEqually) {
  BestResponseSolver solver;
  const std::vector<HostBidInput> hosts{
      {"a", 50.0, Rate::DollarsPerSec(1.0)},
      {"b", 50.0, Rate::DollarsPerSec(1.0)}};
  const auto result = solver.Solve(hosts, Rate::DollarsPerSec(8.0));
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->bids[0].bid.dollars_per_sec(), 4.0, 1e-9);
  EXPECT_NEAR(result->bids[1].bid.dollars_per_sec(), 4.0, 1e-9);
}

TEST(BestResponseTest, BudgetAlwaysBinds) {
  BestResponseSolver solver;
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<HostBidInput> hosts;
    const int n = 1 + static_cast<int>(rng.NextBelow(10));
    for (int j = 0; j < n; ++j) {
      hosts.push_back({"h" + std::to_string(j), rng.Uniform(1.0, 200.0),
                       Rate::DollarsPerSec(rng.Uniform(0.0, 5.0))});
    }
    const double budget = rng.Uniform(0.1, 50.0);
    const auto result = solver.Solve(hosts, Rate::DollarsPerSec(budget));
    ASSERT_TRUE(result.ok());
    EXPECT_NEAR(TotalBid(*result), budget, 1e-9 * budget);
    for (const auto& allocation : result->bids)
      EXPECT_GE(allocation.bid.dollars_per_sec(), 0.0);
  }
}

TEST(BestResponseTest, MatchesBisectionReference) {
  BestResponseSolver solver;
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<HostBidInput> hosts;
    const int n = 2 + static_cast<int>(rng.NextBelow(8));
    for (int j = 0; j < n; ++j) {
      hosts.push_back({"h" + std::to_string(j), rng.Uniform(10.0, 300.0),
                       Rate::DollarsPerSec(rng.Uniform(0.01, 10.0))});
    }
    const Rate budget = Rate::DollarsPerSec(rng.Uniform(0.5, 40.0));
    const auto exact = solver.Solve(hosts, budget);
    const auto reference = solver.SolveBisection(hosts, budget);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(reference.ok());
    EXPECT_NEAR(exact->utility, reference->utility,
                1e-6 * reference->utility);
    for (std::size_t j = 0; j < hosts.size(); ++j) {
      EXPECT_NEAR(exact->bids[j].bid.dollars_per_sec(),
                  reference->bids[j].bid.dollars_per_sec(),
                  1e-5 * budget.dollars_per_sec())
          << "trial " << trial << " host " << j;
    }
  }
}

TEST(BestResponseTest, KktConditionsHoldAtOptimum) {
  BestResponseSolver solver;
  const std::vector<HostBidInput> hosts{
      {"a", 120.0, Rate::DollarsPerSec(2.0)},
      {"b", 80.0, Rate::DollarsPerSec(1.0)},
      {"c", 20.0, Rate::DollarsPerSec(4.0)}};
  const auto result = solver.Solve(hosts, Rate::DollarsPerSec(6.0));
  ASSERT_TRUE(result.ok());
  // Active hosts: w_j y_j / (x_j + y_j)^2 == lambda; inactive: w_j/y_j <= lambda.
  for (std::size_t j = 0; j < hosts.size(); ++j) {
    const double y =
        std::max(hosts[j].price, solver.reserve_price()).dollars_per_sec();
    const double x = result->bids[j].bid.dollars_per_sec();
    if (x > 1e-9) {
      const double marginal = hosts[j].weight * y / ((x + y) * (x + y));
      EXPECT_NEAR(marginal, result->lambda, 1e-6 * result->lambda)
          << "host " << j;
    } else {
      EXPECT_LE(hosts[j].weight / y, result->lambda * (1 + 1e-9));
    }
  }
}

TEST(BestResponseTest, OptimalBeatsPerturbations) {
  BestResponseSolver solver;
  Rng rng(99);
  const std::vector<HostBidInput> hosts{{"a", 100.0, Rate::DollarsPerSec(1.5)},
                                        {"b", 60.0, Rate::DollarsPerSec(0.5)},
                                        {"c", 200.0, Rate::DollarsPerSec(6.0)},
                                        {"d", 10.0, Rate::DollarsPerSec(0.1)}};
  const auto result = solver.Solve(hosts, Rate::DollarsPerSec(12.0));
  ASSERT_TRUE(result.ok());
  std::vector<Rate> optimal;
  for (const auto& allocation : result->bids) optimal.push_back(allocation.bid);

  for (int trial = 0; trial < 200; ++trial) {
    // Move mass between two random hosts, keeping feasibility.
    std::vector<Rate> perturbed = optimal;
    const std::size_t a = rng.NextBelow(hosts.size());
    const std::size_t b = rng.NextBelow(hosts.size());
    if (a == b) continue;
    const Rate delta =
        Rate::DollarsPerSec(rng.Uniform(0.0, perturbed[a].dollars_per_sec()));
    perturbed[a] -= delta;
    perturbed[b] += delta;
    EXPECT_LE(solver.Utility(hosts, perturbed),
              result->utility + 1e-9 * result->utility)
        << "trial " << trial;
  }
}

TEST(BestResponseTest, ExpensiveLowValueHostExcluded) {
  BestResponseSolver solver;
  // Host b has terrible value (low weight, high price): with a small
  // budget the optimizer should not bid on it at all.
  const std::vector<HostBidInput> hosts{{"a", 100.0, Rate::DollarsPerSec(0.5)},
                                        {"b", 1.0, Rate::DollarsPerSec(50.0)}};
  const auto result = solver.Solve(hosts, Rate::DollarsPerSec(1.0));
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->bids[0].bid.dollars_per_sec(), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(result->bids[1].bid.dollars_per_sec(), 0.0);
}

TEST(BestResponseTest, LargerBudgetActivatesMoreHosts) {
  BestResponseSolver solver;
  const std::vector<HostBidInput> hosts{
      {"a", 100.0, Rate::DollarsPerSec(0.2)},
      {"b", 100.0, Rate::DollarsPerSec(2.0)},
      {"c", 100.0, Rate::DollarsPerSec(20.0)}};
  const auto poor = solver.Solve(hosts, Rate::DollarsPerSec(0.05));
  const auto rich = solver.Solve(hosts, Rate::DollarsPerSec(500.0));
  ASSERT_TRUE(poor.ok());
  ASSERT_TRUE(rich.ok());
  const auto active = [](const BestResponseResult& result) {
    int count = 0;
    for (const auto& allocation : result.bids)
      if (allocation.bid.dollars_per_sec() > 1e-12) ++count;
    return count;
  };
  EXPECT_LT(active(*poor), 3);
  EXPECT_EQ(active(*rich), 3);
}

TEST(BestResponseTest, IdleHostsViaReservePrice) {
  BestResponseSolver solver(/*reserve_price=*/Rate::DollarsPerSec(0.001));
  // All hosts idle: equal weights -> equal bids; tiny bids already win
  // nearly full shares.
  const std::vector<HostBidInput> hosts{{"a", 100.0, Rate::Zero()},
                                        {"b", 100.0, Rate::Zero()},
                                        {"c", 100.0, Rate::Zero()}};
  const auto result = solver.Solve(hosts, Rate::DollarsPerSec(3.0));
  ASSERT_TRUE(result.ok());
  for (const auto& allocation : result->bids) {
    EXPECT_NEAR(allocation.bid.dollars_per_sec(), 1.0, 1e-9);
    EXPECT_GT(allocation.expected_share, 0.99);
  }
}

TEST(BestResponseTest, PreferenceWeightSkewsAllocation) {
  BestResponseSolver solver;
  // Same price, 4x the weight: host a gets a larger bid (sqrt scaling).
  const std::vector<HostBidInput> hosts{{"a", 400.0, Rate::DollarsPerSec(1.0)},
                                        {"b", 100.0, Rate::DollarsPerSec(1.0)}};
  const auto result = solver.Solve(hosts, Rate::DollarsPerSec(10.0));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->bids[0].bid, result->bids[1].bid);
  // KKT: (x_a + y)/(x_b + y) = sqrt(w_a/w_b) = 2 when both active.
  EXPECT_NEAR((result->bids[0].bid.dollars_per_sec() + 1.0) /
                  (result->bids[1].bid.dollars_per_sec() + 1.0),
              2.0, 1e-6);
}

TEST(BestResponseTest, InvalidInputsRejected) {
  BestResponseSolver solver;
  const Rate one = Rate::DollarsPerSec(1.0);
  EXPECT_FALSE(solver.Solve({}, one).ok());
  EXPECT_FALSE(solver.Solve({{"a", 1.0, one}}, Rate::Zero()).ok());
  EXPECT_FALSE(solver.Solve({{"a", 1.0, one}}, Rate::DollarsPerSec(-1.0)).ok());
  EXPECT_FALSE(solver.Solve({{"a", 0.0, one}}, one).ok());
  EXPECT_FALSE(solver.Solve({{"a", 1.0, Rate::DollarsPerSec(-0.5)}}, one).ok());
}

TEST(BestResponseTest, UtilityIncreasingInBudget) {
  BestResponseSolver solver;
  const std::vector<HostBidInput> hosts{
      {"a", 100.0, Rate::DollarsPerSec(1.0)},
      {"b", 50.0, Rate::DollarsPerSec(0.5)},
      {"c", 75.0, Rate::DollarsPerSec(2.0)}};
  double previous = 0.0;
  for (double budget = 0.5; budget <= 32.0; budget *= 2.0) {
    const auto result = solver.Solve(hosts, Rate::DollarsPerSec(budget));
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result->utility, previous);
    previous = result->utility;
  }
  // Utility saturates at total weight.
  EXPECT_LT(previous, 225.0);
}

TEST(BestResponseTest, ManyHostsPerformanceAndCorrectness) {
  BestResponseSolver solver;
  Rng rng(1234);
  std::vector<HostBidInput> hosts;
  for (int j = 0; j < 600; ++j) {
    hosts.push_back({"h" + std::to_string(j), rng.Uniform(50.0, 150.0),
                     Rate::DollarsPerSec(rng.Uniform(0.001, 2.0))});
  }
  const auto result = solver.Solve(hosts, Rate::DollarsPerSec(25.0));
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(TotalBid(*result), 25.0, 1e-6);
  const auto reference =
      solver.SolveBisection(hosts, Rate::DollarsPerSec(25.0));
  ASSERT_TRUE(reference.ok());
  EXPECT_NEAR(result->utility, reference->utility, 1e-6 * result->utility);
}

TEST(BestResponsePlanTest, BatchMatchesPerCallSolveExactly) {
  // One plan amortizes the sort/sqrt/prefix work across budgets; its
  // answers must be bit-identical to a fresh Solve per budget (Solve is
  // itself plan-backed, so this is an identity the refactor must keep).
  BestResponseSolver solver;
  Rng rng(555);
  std::vector<HostBidInput> hosts;
  for (int j = 0; j < 40; ++j) {
    hosts.push_back({"h" + std::to_string(j), rng.Uniform(10.0, 200.0),
                     Rate::DollarsPerSec(rng.Uniform(0.0, 3.0))});
  }
  std::vector<Rate> budgets;
  for (double b : {0.001, 0.1, 1.0, 7.5, 120.0})
    budgets.push_back(Rate::DollarsPerSec(b));

  const auto batch = solver.SolveBatch(hosts, budgets);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), budgets.size());
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    const auto single = solver.Solve(hosts, budgets[i]);
    ASSERT_TRUE(single.ok());
    const auto& got = (*batch)[i];
    EXPECT_EQ(got.lambda, single->lambda) << "budget " << i;
    EXPECT_EQ(got.utility, single->utility) << "budget " << i;
    ASSERT_EQ(got.bids.size(), single->bids.size());
    for (std::size_t j = 0; j < got.bids.size(); ++j) {
      EXPECT_EQ(got.bids[j].host_id, single->bids[j].host_id);
      EXPECT_EQ(got.bids[j].bid.micros_per_sec(),
                single->bids[j].bid.micros_per_sec())
          << "budget " << i << " host " << j;
    }
  }
}

TEST(BestResponsePlanTest, PlanReuseAcrossBudgets) {
  BestResponseSolver solver;
  const std::vector<HostBidInput> hosts{
      {"a", 100.0, Rate::DollarsPerSec(1.0)},
      {"b", 50.0, Rate::DollarsPerSec(0.5)},
      {"c", 75.0, Rate::DollarsPerSec(2.0)}};
  const auto plan = solver.MakePlan(hosts);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->host_count(), 3u);
  // The same plan object answers many budgets; each must match Solve.
  for (double budget = 0.25; budget <= 64.0; budget *= 4.0) {
    const auto from_plan = plan->Solve(Rate::DollarsPerSec(budget));
    const auto from_solver = solver.Solve(hosts, Rate::DollarsPerSec(budget));
    ASSERT_TRUE(from_plan.ok());
    ASSERT_TRUE(from_solver.ok());
    EXPECT_EQ(from_plan->utility, from_solver->utility);
    for (std::size_t j = 0; j < hosts.size(); ++j) {
      EXPECT_EQ(from_plan->bids[j].bid.micros_per_sec(),
                from_solver->bids[j].bid.micros_per_sec());
    }
  }
  // A plan still rejects the budgets Solve rejects.
  EXPECT_FALSE(plan->Solve(Rate::Zero()).ok());
  EXPECT_FALSE(plan->Solve(Rate::DollarsPerSec(-1.0)).ok());
}

TEST(BestResponsePlanTest, UtilityAtMatchesMaterializedSolve) {
  // UtilityAt is the allocation-free fast path the budget-inversion
  // bisection leans on; it must agree with the materialized package.
  BestResponseSolver solver;
  Rng rng(777);
  std::vector<HostBidInput> hosts;
  for (int j = 0; j < 25; ++j) {
    hosts.push_back({"h" + std::to_string(j), rng.Uniform(20.0, 80.0),
                     Rate::DollarsPerSec(rng.Uniform(0.01, 1.5))});
  }
  const auto plan = solver.MakePlan(hosts);
  ASSERT_TRUE(plan.ok());
  for (double budget : {0.01, 0.5, 3.0, 40.0}) {
    const auto full = plan->Solve(Rate::DollarsPerSec(budget));
    ASSERT_TRUE(full.ok());
    EXPECT_NEAR(plan->UtilityAt(budget), full->utility,
                1e-12 * full->utility);
  }
}

}  // namespace
}  // namespace gm::br
